//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. buddy inclusion on/off (VO bytes traded against digests);
//! 2. chain-MHT block capacity ρ (via the block size);
//! 3. per-list signatures vs the §3.4 dictionary-MHT;
//! 4. RSA signing with and without the CRT;
//! 5. score-prioritised vs equal-depth polling (the paper's adaptation
//!    of Fagin's algorithms vs the originals), measured in entries read.

use authsearch_core::{verify, AuthConfig, AuthenticatedIndex, Mechanism, Query, VerifierParams};
use authsearch_corpus::{Corpus, SyntheticConfig};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS, TEST_KEY_BITS};
use authsearch_index::{build_index, BlockLayout, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn build(config: AuthConfig, corpus: &Corpus) -> (AuthenticatedIndex, VerifierParams) {
    let key = cached_keypair(config.key_bits);
    let index = build_index(corpus, OkapiParams::default());
    let params = VerifierParams {
        public_key: key.public_key().clone(),
        layout: config.layout,
        mechanism: config.mechanism,
        num_docs: index.num_docs(),
        okapi: index.params(),
    };
    (
        AuthenticatedIndex::build(index, &key, config, corpus),
        params,
    )
}

fn bench_serve_verify(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: BenchmarkId,
    auth: &AuthenticatedIndex,
    params: &VerifierParams,
    corpus: &Corpus,
    queries: &[Query],
) {
    group.bench_function(label, |b| {
        b.iter(|| {
            for q in queries {
                let resp = auth.query(q, 10, corpus);
                verify::verify(params, q, 10, &resp).unwrap();
            }
        })
    });
}

fn ablation_buddy(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate();
    let mut group = c.benchmark_group("ablation_buddy");
    group
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for buddy in [false, true] {
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            buddy,
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        let (auth, params) = build(config, &corpus);
        let queries: Vec<Query> =
            authsearch_corpus::workload::synthetic(auth.index().num_terms(), 8, 3, 4)
                .iter()
                .map(|t| Query::from_term_ids(auth.index(), t))
                .collect();
        // Report the VO-size effect alongside the timing.
        let vo_bytes: usize = queries
            .iter()
            .map(|q| auth.query(q, 10, &corpus).vo.size().total())
            .sum();
        eprintln!("[ablation_buddy] buddy={buddy}: total VO bytes = {vo_bytes}");
        bench_serve_verify(
            &mut group,
            BenchmarkId::new("serve_verify", format!("buddy_{buddy}")),
            &auth,
            &params,
            &corpus,
            &queries,
        );
    }
    group.finish();
}

fn ablation_rho(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate();
    let mut group = c.benchmark_group("ablation_rho");
    group
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // Block size drives ρ′ = (block − 20)/8: 512 B → 61, 1 KB → 125 (the
    // paper), 4 KB → 509.
    for block_bytes in [512usize, 1024, 4096] {
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            layout: BlockLayout {
                block_bytes,
                ..BlockLayout::default()
            },
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        let (auth, params) = build(config, &corpus);
        let queries: Vec<Query> =
            authsearch_corpus::workload::synthetic(auth.index().num_terms(), 8, 3, 4)
                .iter()
                .map(|t| Query::from_term_ids(auth.index(), t))
                .collect();
        bench_serve_verify(
            &mut group,
            BenchmarkId::new("serve_verify", format!("block_{block_bytes}")),
            &auth,
            &params,
            &corpus,
            &queries,
        );
    }
    group.finish();
}

fn ablation_dict_mht(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate();
    let mut group = c.benchmark_group("ablation_dict_mht");
    group
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for dict_mht in [false, true] {
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht,
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        let (auth, params) = build(config, &corpus);
        let queries: Vec<Query> =
            authsearch_corpus::workload::synthetic(auth.index().num_terms(), 8, 3, 4)
                .iter()
                .map(|t| Query::from_term_ids(auth.index(), t))
                .collect();
        bench_serve_verify(
            &mut group,
            BenchmarkId::new("serve_verify", format!("dict_{dict_mht}")),
            &auth,
            &params,
            &corpus,
            &queries,
        );
    }
    group.finish();
}

fn ablation_rsa_crt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rsa_crt");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let key = cached_keypair(PAPER_KEY_BITS);
    let msg = b"list root digest";
    group.bench_function("sign_with_crt", |b| b.iter(|| key.sign(msg).unwrap()));
    group.bench_function("sign_without_crt", |b| {
        b.iter(|| key.sign_no_crt(msg).unwrap())
    });
    group.finish();
}

fn ablation_equal_depth(c: &mut Criterion) {
    // The paper's key adaptation of Fagin's algorithms: pop from the list
    // with the highest term score instead of round-robin equal depth.
    // Measured as entries read (the paper's own metric) and wall time.
    use authsearch_core::access::{IndexLists, ListAccess};
    use authsearch_core::tnra;

    let corpus = SyntheticConfig::wsj(0.02).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let queries: Vec<Query> =
        authsearch_corpus::workload::trec_like(index.document_frequencies(), 10, 0.35, 8)
            .iter()
            .map(|t| Query::from_term_ids(&index, t))
            .collect();

    // Entries read, reported once.
    let mut prioritized = 0usize;
    let mut equal_depth = 0usize;
    for q in &queries {
        let lists = IndexLists::new(&index, q);
        let out = tnra::run(&lists, q, 10).unwrap();
        prioritized += out.prefix_lens.iter().sum::<usize>();
        // Equal depth = every queried list read to the depth of the
        // deepest one (what the original NRA's round-robin would fetch).
        let deepest = out.prefix_lens.iter().copied().max().unwrap_or(0);
        equal_depth += q
            .terms
            .iter()
            .enumerate()
            .map(|(i, _)| deepest.min(lists.list_len(i)))
            .sum::<usize>();
    }
    eprintln!(
        "[ablation_equal_depth] entries read: prioritized = {prioritized}, \
         equal-depth(simulated) = {equal_depth} ({:.1}x)",
        equal_depth as f64 / prioritized.max(1) as f64
    );

    let mut group = c.benchmark_group("ablation_equal_depth");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("tnra_prioritized", |b| {
        b.iter(|| {
            for q in &queries {
                let lists = IndexLists::new(&index, q);
                tnra::run(&lists, q, 10).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_buddy,
    ablation_rho,
    ablation_dict_mht,
    ablation_rsa_crt,
    ablation_equal_depth
);
criterion_main!(benches);
