//! Micro-benchmarks of the cryptographic substrate: the per-operation
//! costs from which every VO construction/verification time is composed.

use authsearch_crypto::bignum::{BigUint, Montgomery};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_crypto::{md5::Md5, sha1::Sha1, sha256::Sha256};
use authsearch_crypto::{ChainMht, Digest, MerkleTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn hash_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_functions");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| Md5::digest(d))
        });
    }
    group.finish();
}

fn merkle_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [128usize, 2048, 32768] {
        let leaves: Vec<Digest> = (0..n as u32)
            .map(|i| Digest::hash(&i.to_le_bytes()))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, l| {
            b.iter(|| MerkleTree::from_leaf_digests(l.clone()))
        });
        let tree = MerkleTree::from_leaf_digests(leaves.clone());
        let prefix: Vec<usize> = (0..(n / 10).max(1)).collect();
        group.bench_with_input(BenchmarkId::new("prove_prefix", n), &tree, |b, t| {
            b.iter(|| t.prove(&prefix))
        });
        // Chain-MHT with the paper's ρ' = 125 blocks.
        group.bench_with_input(
            BenchmarkId::new("chain_build_rho125", n),
            &leaves,
            |b, l| b.iter(|| ChainMht::build(l.clone(), 125)),
        );
        let chain = ChainMht::build(leaves.clone(), 125);
        group.bench_with_input(
            BenchmarkId::new("chain_prove_prefix", n),
            &chain,
            |b, ch| b.iter(|| ch.prove_prefix((n / 10).max(1))),
        );
    }
    group.finish();
}

fn rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_1024");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let key = cached_keypair(PAPER_KEY_BITS);
    let msg = b"root digest of an inverted list's chain-MHT";
    group.bench_function("sign_crt", |b| b.iter(|| key.sign(msg).unwrap()));
    // The pre-Montgomery baseline: same CRT structure, division-based
    // exponentiation. The ratio of these two is the PR's sign speedup.
    group.bench_function("sign_crt_schoolbook_baseline", |b| {
        b.iter(|| key.sign_schoolbook_reference(msg).unwrap())
    });
    let sig = key.sign(msg).unwrap();
    group.bench_function("verify", |b| {
        b.iter(|| key.public_key().verify(msg, &sig).unwrap())
    });
    group.bench_function("verify_schoolbook_baseline", |b| {
        b.iter(|| {
            key.public_key()
                .verify_schoolbook_reference(msg, &sig)
                .unwrap()
        })
    });
    group.finish();
}

/// Montgomery-form windowed exponentiation against the schoolbook
/// (Algorithm-D-per-step) implementation it replaced on the hot path.
fn modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for bits in [512usize, 1024, 2048] {
        let kb = bits / 8;
        let mut m_bytes = vec![0xb7u8; kb];
        m_bytes[kb - 1] |= 1; // odd modulus, full width
        let modulus = BigUint::from_bytes_be(&m_bytes);
        let base = BigUint::from_bytes_be(&vec![0x5a; kb - 1]);
        let exp = BigUint::from_bytes_be(&vec![0x9c; kb]);
        let ctx = Montgomery::new(&modulus).expect("odd modulus");
        group.bench_with_input(BenchmarkId::new("montgomery", bits), &bits, |b, _| {
            b.iter(|| ctx.pow(&base, &exp))
        });
        group.bench_with_input(
            BenchmarkId::new("montgomery_cold_ctx", bits),
            &bits,
            |b, _| b.iter(|| base.mod_pow(&exp, &modulus)),
        );
        group.bench_with_input(BenchmarkId::new("schoolbook", bits), &bits, |b, _| {
            b.iter(|| base.mod_pow_schoolbook(&exp, &modulus))
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    let c = configure(c);
    hash_functions(c);
    merkle_trees(c);
    modpow(c);
    rsa(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
