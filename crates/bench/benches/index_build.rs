//! Benchmarks of the IR substrate: corpus generation, tokenization,
//! index construction, and the document-table transpose.

use authsearch_core::DocTable;
use authsearch_corpus::{CorpusBuilder, SyntheticConfig};
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for docs in [500usize, 2000] {
        group.throughput(Throughput::Elements(docs as u64));
        group.bench_with_input(BenchmarkId::new("synthetic_wsj", docs), &docs, |b, &n| {
            b.iter(|| SyntheticConfig::tiny(n, 7).generate())
        });
    }
    group.finish();
}

fn tokenization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenization");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let text = "The Wall Street Journal reported that the quick brown fox \
                jumps over the lazy dog while markets rallied in afternoon \
                trading, with analysts citing strong quarterly earnings. "
        .repeat(20);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("tokenize_with_stopwords", |b| {
        b.iter(|| authsearch_corpus::tokenizer::tokenize(&text).count())
    });
    group.bench_function("corpus_builder_100_docs", |b| {
        b.iter(|| {
            CorpusBuilder::new()
                .add_texts((0..100).map(|i| format!("{text} doc{i}")))
                .build()
        })
    });
    group.finish();
}

fn index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for docs in [500usize, 2000] {
        let corpus = SyntheticConfig::tiny(docs, 3).generate();
        group.throughput(Throughput::Elements(docs as u64));
        group.bench_with_input(BenchmarkId::new("build_index", docs), &corpus, |b, c| {
            b.iter(|| build_index(c, OkapiParams::default()))
        });
        let index = build_index(&corpus, OkapiParams::default());
        group.bench_with_input(
            BenchmarkId::new("doc_table_transpose", docs),
            &index,
            |b, i| b.iter(|| DocTable::from_index(i)),
        );
    }
    group.finish();
}

criterion_group!(benches, corpus_generation, tokenization, index_construction);
criterion_main!(benches);
