//! Owner-side build scaling: `AuthenticatedIndex::build` across thread
//! counts — the perf-trajectory comparison for the PR 2 work-stealing
//! pool (the `bench_pr2` binary emits the machine-readable companion,
//! `BENCH_PR2.json`).
//!
//! The artifact is bit-identical at every thread count; only wall-clock
//! time changes, and only on machines that actually have the cores (the
//! pool degrades to the sequential paper model on a single-CPU host).

use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn build_scaling(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.005).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(TEST_KEY_BITS);
    let mut group = c.benchmark_group("owner_build_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // TNRA-CMHT: per-term work only. TRA-CMHT adds the per-document
    // digests + MHTs + signatures — the heaviest owner workload.
    for mechanism in [Mechanism::TnraCmht, Mechanism::TraCmht] {
        for threads in [1usize, 2, 4, 8] {
            let config = AuthConfig {
                key_bits: TEST_KEY_BITS,
                threads,
                ..AuthConfig::new(mechanism)
            };
            group.bench_with_input(
                BenchmarkId::new(mechanism.name(), threads),
                &threads,
                |b, _| {
                    // `build` consumes the index, so each iteration pays
                    // one clone (~sub-ms memcpy, <1% of a build at this
                    // scale); the `bench_pr2` binary times builds with
                    // the clone hoisted out for the checked-in numbers.
                    b.iter(|| {
                        criterion::black_box(AuthenticatedIndex::build(
                            index.clone(),
                            &key,
                            config,
                            &corpus,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, build_scaling);
criterion_main!(benches);
