//! PSCAN vs TRA vs TNRA query processing time (the algorithmic
//! counterpart of Figures 13(a)/14(a): how much work early termination
//! saves over full prioritized scanning).

use authsearch_core::access::{IndexLists, TableFreqs};
use authsearch_core::{pscan, tnra, tra, DocTable, Query};
use authsearch_corpus::SyntheticConfig;
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn query_algorithms(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.02).generate(); // ~3.5k docs
    let index = build_index(&corpus, OkapiParams::default());
    let table = DocTable::from_index(&index);

    let mut group = c.benchmark_group("query_algorithms");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for qsize in [2usize, 5, 10] {
        // A fixed batch of 20 queries per size so comparisons share inputs.
        let workloads = authsearch_corpus::workload::synthetic(index.num_terms(), 20, qsize, 9);
        let queries: Vec<Query> = workloads
            .iter()
            .map(|terms| Query::from_term_ids(&index, terms))
            .collect();

        group.bench_with_input(BenchmarkId::new("pscan", qsize), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    let lists = IndexLists::new(&index, q);
                    pscan::run(&lists, q, 10).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("tra", qsize), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    let lists = IndexLists::new(&index, q);
                    let freqs = TableFreqs::new(&table, q);
                    tra::run(&lists, &freqs, q, 10).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("tnra", qsize), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    let lists = IndexLists::new(&index, q);
                    tnra::run(&lists, q, 10).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, query_algorithms);
criterion_main!(benches);
