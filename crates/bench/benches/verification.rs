//! User-side verification time per mechanism — Figure 13(e)'s
//! micro-benchmark counterpart.

use authsearch_core::{
    verify, AuthConfig, AuthenticatedIndex, Mechanism, Query, QueryResponse, VerifierParams,
};
use authsearch_corpus::{Corpus, SyntheticConfig};
use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn setup(mechanism: Mechanism, corpus: &Corpus) -> (AuthenticatedIndex, VerifierParams) {
    let key = cached_keypair(TEST_KEY_BITS);
    let config = AuthConfig {
        key_bits: TEST_KEY_BITS,
        ..AuthConfig::new(mechanism)
    };
    let index = build_index(corpus, OkapiParams::default());
    let params = VerifierParams {
        public_key: key.public_key().clone(),
        layout: config.layout,
        mechanism,
        num_docs: index.num_docs(),
        okapi: index.params(),
    };
    (
        AuthenticatedIndex::build(index, &key, config, corpus),
        params,
    )
}

fn verification(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate();
    let mut group = c.benchmark_group("verification");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for mechanism in Mechanism::ALL {
        let (auth, params) = setup(mechanism, &corpus);
        let workloads = authsearch_corpus::workload::synthetic(auth.index().num_terms(), 10, 3, 6);
        let cases: Vec<(Query, QueryResponse)> = workloads
            .iter()
            .map(|terms| {
                let q = Query::from_term_ids(auth.index(), terms);
                let resp = auth.query(&q, 10, &corpus);
                (q, resp)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("verify_q3_r10", mechanism.name()),
            &cases,
            |b, cs| {
                b.iter(|| {
                    for (q, resp) in cs {
                        verify::verify(&params, q, 10, resp).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, verification);
criterion_main!(benches);
