//! Engine-side cost of serving an authenticated query (processing + VO
//! construction), per mechanism — the CPU companion to Figure 13(c)/(d).

use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism, Query};
use authsearch_corpus::{Corpus, SyntheticConfig};
use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn setup(mechanism: Mechanism, corpus: &Corpus) -> AuthenticatedIndex {
    let key = cached_keypair(TEST_KEY_BITS);
    let config = AuthConfig {
        key_bits: TEST_KEY_BITS,
        ..AuthConfig::new(mechanism)
    };
    let index = build_index(corpus, OkapiParams::default());
    AuthenticatedIndex::build(index, &key, config, corpus)
}

fn vo_construction(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate(); // ~1.7k docs
    let mut group = c.benchmark_group("vo_construction");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for mechanism in Mechanism::ALL {
        let auth = setup(mechanism, &corpus);
        let workloads =
            authsearch_corpus::workload::synthetic(auth.index().num_terms(), 10, 3, 5);
        let queries: Vec<Query> = workloads
            .iter()
            .map(|terms| Query::from_term_ids(auth.index(), terms))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("serve_q3_r10", mechanism.name()),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        criterion::black_box(auth.query(q, 10, &corpus));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, vo_construction);
criterion_main!(benches);
