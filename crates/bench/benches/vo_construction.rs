//! Engine-side cost of serving an authenticated query (processing + VO
//! construction), per mechanism — the CPU companion to Figure 13(c)/(d).
//!
//! The `serve_cached_vs_uncached` group is the perf-trajectory
//! comparison for the engine structure cache: the same repeated workload
//! served with materialized structures (cache warm) against the paper's
//! regenerate-from-leaves storage model.

use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism, Query};
use authsearch_corpus::{Corpus, SyntheticConfig};
use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn setup(mechanism: Mechanism, corpus: &Corpus) -> AuthenticatedIndex {
    setup_with_cache(mechanism, corpus, true)
}

fn setup_with_cache(
    mechanism: Mechanism,
    corpus: &Corpus,
    serve_cache: bool,
) -> AuthenticatedIndex {
    let key = cached_keypair(TEST_KEY_BITS);
    let config = AuthConfig {
        key_bits: TEST_KEY_BITS,
        serve_cache,
        ..AuthConfig::new(mechanism)
    };
    let index = build_index(corpus, OkapiParams::default());
    AuthenticatedIndex::build(index, &key, config, corpus)
}

/// Repeated-workload serving: cached (warm structures) vs the paper's
/// regenerate-from-leaves model. Responses are bit-identical; only CPU
/// differs.
fn serve_cached_vs_uncached(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate();
    let mut group = c.benchmark_group("serve_cached_vs_uncached");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for mechanism in Mechanism::ALL {
        for cached in [true, false] {
            let auth = setup_with_cache(mechanism, &corpus, cached);
            let workloads =
                authsearch_corpus::workload::synthetic(auth.index().num_terms(), 10, 3, 5);
            let queries: Vec<Query> = workloads
                .iter()
                .map(|terms| Query::from_term_ids(auth.index(), terms))
                .collect();
            // Warm the cache so the cached measurement reflects steady
            // state (the warm-up phase of the bencher does this too).
            for q in &queries {
                criterion::black_box(auth.query(q, 10, &corpus));
            }
            let label = if cached { "cached" } else { "uncached" };
            group.bench_with_input(
                BenchmarkId::new(label, mechanism.name()),
                &queries,
                |b, qs| {
                    b.iter(|| {
                        for q in qs {
                            criterion::black_box(auth.query(q, 10, &corpus));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn vo_construction(c: &mut Criterion) {
    let corpus = SyntheticConfig::wsj(0.01).generate(); // ~1.7k docs
    let mut group = c.benchmark_group("vo_construction");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for mechanism in Mechanism::ALL {
        let auth = setup(mechanism, &corpus);
        let workloads = authsearch_corpus::workload::synthetic(auth.index().num_terms(), 10, 3, 5);
        let queries: Vec<Query> = workloads
            .iter()
            .map(|terms| Query::from_term_ids(auth.index(), terms))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("serve_q3_r10", mechanism.name()),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        criterion::black_box(auth.query(q, 10, &corpus));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, vo_construction, serve_cached_vs_uncached);
criterion_main!(benches);
