//! Regenerate every table and figure in one run (shared corpus, index,
//! and signed structures).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::trace::run();
    figures::fig04::run(&wb);
    figures::fig13::run(&mut wb);
    figures::fig14::run(&mut wb);
    figures::fig15::run(&mut wb);
    figures::table2::run(&mut wb);
    figures::space::run(&mut wb);
}
