//! PR 1 perf-trajectory benchmark: Montgomery modular arithmetic and the
//! engine structure cache, measured against the pre-PR implementations
//! (schoolbook exponentiation; regenerate-from-leaves serving).
//!
//! Emits machine-readable `BENCH_PR1.json` (override the path with
//! `--out <path>`; set the corpus with `--scale <frac>`). The JSON is
//! the first point of the repo's performance trajectory; later PRs
//! append `BENCH_PR<n>.json` files of the same shape.
//!
//! Uses plain `std::time` loops rather than criterion so the binary can
//! run in CI without dev-dependencies; the criterion benches
//! (`cargo bench -p authsearch-bench`) cover the same comparisons with
//! fuller statistics.

use authsearch_bench::json::{num, Json};
use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism, Query};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::bignum::{BigUint, Montgomery};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS, TEST_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use std::time::{Duration, Instant};

/// Run `f` repeatedly for at least `budget`, returning mean seconds/call.
fn time_per_call<F: FnMut()>(budget: Duration, mut f: F) -> f64 {
    // Warm-up and calibration pass.
    let start = Instant::now();
    let mut calib = 0u64;
    while start.elapsed() < budget / 4 || calib < 3 {
        f();
        calib += 1;
    }
    let per_call = start.elapsed().as_secs_f64() / calib as f64;
    let iters = ((budget.as_secs_f64() / per_call) as u64).max(3);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR1.json");
    let mut scale_frac = 0.01f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            other => {
                eprintln!("unknown flag {other}; usage: [--out <path>] [--scale <frac>]");
                std::process::exit(2);
            }
        }
    }
    let budget = Duration::from_millis(700);
    let mut json = Json::new();
    json.field(1, "pr", "1", false);
    json.field(
        1,
        "description",
        "\"Montgomery modular arithmetic + cached MHT layers for the query-serving hot path\"",
        false,
    );

    // ---- RSA 1024 (Table 1's |sign| = 1024) -----------------------------
    eprintln!("[bench_pr1] rsa_1024…");
    let key = cached_keypair(PAPER_KEY_BITS);
    let msg = b"root digest of an inverted list's chain-MHT";
    let sig = key.sign(msg).expect("sign");
    let sign_s = time_per_call(budget, || {
        std::hint::black_box(key.sign(msg).unwrap());
    });
    let sign_school_s = time_per_call(budget, || {
        std::hint::black_box(key.sign_schoolbook_reference(msg).unwrap());
    });
    let verify_s = time_per_call(budget, || {
        std::hint::black_box(key.public_key().verify(msg, &sig)).unwrap();
    });
    let verify_school_s = time_per_call(budget, || {
        std::hint::black_box(key.public_key().verify_schoolbook_reference(msg, &sig)).unwrap();
    });
    json.open(1, "rsa_1024");
    json.field(2, "sign_ops_per_s", &num(1.0 / sign_s), false);
    json.field(
        2,
        "sign_ops_per_s_schoolbook",
        &num(1.0 / sign_school_s),
        false,
    );
    json.field(2, "sign_speedup", &num(sign_school_s / sign_s), false);
    json.field(2, "verify_ops_per_s", &num(1.0 / verify_s), false);
    json.field(
        2,
        "verify_ops_per_s_schoolbook",
        &num(1.0 / verify_school_s),
        false,
    );
    json.field(2, "verify_speedup", &num(verify_school_s / verify_s), true);
    json.close(1, false);

    // ---- raw 1024-bit modular exponentiation ----------------------------
    eprintln!("[bench_pr1] modpow_1024…");
    let mut m_bytes = vec![0xb7u8; 128];
    m_bytes[127] |= 1;
    let modulus = BigUint::from_bytes_be(&m_bytes);
    let base = BigUint::from_bytes_be(&[0x5a; 127]);
    let exp = BigUint::from_bytes_be(&[0x9c; 128]);
    let ctx = Montgomery::new(&modulus).expect("odd modulus");
    let mont_s = time_per_call(budget, || {
        std::hint::black_box(ctx.pow(&base, &exp));
    });
    let school_s = time_per_call(budget, || {
        std::hint::black_box(base.mod_pow_schoolbook(&exp, &modulus));
    });
    json.open(1, "modpow_1024");
    json.field(2, "montgomery_us", &num(mont_s * 1e6), false);
    json.field(2, "schoolbook_us", &num(school_s * 1e6), false);
    json.field(2, "speedup", &num(school_s / mont_s), true);
    json.close(1, false);

    // ---- repeated-query VO construction: cached vs uncached -------------
    eprintln!("[bench_pr1] vo_construction at scale {scale_frac} (synthetic WSJ)…");
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let serve_key = cached_keypair(TEST_KEY_BITS);
    json.open(1, "vo_construction");
    json.field(2, "corpus_scale", &format!("{scale_frac}"), false);
    json.field(2, "num_docs", &corpus.num_docs().to_string(), false);
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "queries_per_round", "10", false);
    let mechanisms = Mechanism::ALL;
    for (mi, &mechanism) in mechanisms.iter().enumerate() {
        let mut stats = Vec::new();
        for cached in [true, false] {
            let config = AuthConfig {
                key_bits: TEST_KEY_BITS,
                serve_cache: cached,
                ..AuthConfig::new(mechanism)
            };
            let auth = AuthenticatedIndex::build(index.clone(), &serve_key, config, &corpus);
            let workloads =
                authsearch_corpus::workload::synthetic(auth.index().num_terms(), 10, 3, 5);
            let queries: Vec<Query> = workloads
                .iter()
                .map(|terms| Query::from_term_ids(auth.index(), terms))
                .collect();
            // Warm structures (and branch predictors) before timing.
            for q in &queries {
                std::hint::black_box(auth.query(q, 10, &corpus));
            }
            let per_round = time_per_call(budget, || {
                for q in &queries {
                    std::hint::black_box(auth.query(q, 10, &corpus));
                }
            });
            stats.push((per_round / queries.len() as f64, auth.cache_stats()));
        }
        let (cached_s, cache_stats) = (stats[0].0, stats[0].1);
        let uncached_s = stats[1].0;
        json.open(2, mechanism.name());
        json.field(3, "cached_us_per_query", &num(cached_s * 1e6), false);
        json.field(3, "uncached_us_per_query", &num(uncached_s * 1e6), false);
        json.field(3, "speedup", &num(uncached_s / cached_s), false);
        json.field(3, "cache_hits", &cache_stats.hits.to_string(), false);
        json.field(3, "cache_misses", &cache_stats.misses.to_string(), false);
        json.field(
            3,
            "doc_cache_hits",
            &cache_stats.doc_hits.to_string(),
            false,
        );
        json.field(
            3,
            "doc_cache_misses",
            &cache_stats.doc_misses.to_string(),
            true,
        );
        json.close(2, mi + 1 == mechanisms.len());
    }
    json.close(1, true);

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR1.json");
    eprintln!("[bench_pr1] wrote {out_path}");
    print!("{out}");
}
