//! PR 2 perf-trajectory benchmark: parallel owner-side index
//! construction (`AuthenticatedIndex::build` on the scoped work-stealing
//! pool) measured across thread counts.
//!
//! Emits machine-readable `BENCH_PR2.json` (override the path with
//! `--out <path>`; set the corpus with `--scale <frac>`, the signing key
//! with `--key-bits <n>`). The JSON records the machine's
//! `available_parallelism` alongside the timings: the thread counts are
//! requested pool widths, and speedups above 1x are only physically
//! possible when the host actually has the cores — on a single-CPU
//! container every row degenerates to the sequential paper model, which
//! is itself the bit-compatibility guarantee under test elsewhere.
//!
//! Uses plain `std::time` loops rather than criterion so the binary can
//! run in CI without dev-dependencies; the `parallel_build` criterion
//! bench covers the same comparison with fuller statistics.

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::available_parallelism;
use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for one owner build.
fn time_build(
    reps: usize,
    index: &authsearch_index::InvertedIndex,
    key: &authsearch_crypto::RsaPrivateKey,
    config: AuthConfig,
    corpus: &authsearch_corpus::Corpus,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // Clone outside the timed region: `build` consumes the index,
        // and the sequential copy would otherwise deflate the measured
        // thread-scaling (Amdahl) on multi-core hosts.
        let index = index.clone();
        let start = Instant::now();
        std::hint::black_box(AuthenticatedIndex::build(index, key, config, corpus));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR2.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] [--key-bits <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!("[bench_pr2] corpus scale {scale_frac}, key {key_bits} bits, {cores} core(s)…");
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(key_bits);

    let mut json = Json::new();
    json.field(1, "pr", "2", false);
    json.field(
        1,
        "description",
        "\"Parallel owner-side index construction on a scoped work-stealing thread pool\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), cores >= 4);
    if cores < 4 {
        json.field(
            2,
            "note",
            "\"host lacks the cores for the requested pool widths; speedups necessarily ~1x — re-run on a multi-core machine\"",
            true,
        );
    }
    json.close(1, false);

    json.open(1, "owner_build");
    json.field(2, "corpus_scale", &format!("{scale_frac}"), false);
    json.field(2, "num_docs", &corpus.num_docs().to_string(), false);
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "key_bits", &key_bits.to_string(), false);
    // TNRA-CMHT: per-term roots + signatures only. TRA-CMHT adds the
    // per-document digests, MHTs, and signatures — the heaviest owner
    // preprocessing workload in the paper.
    let mechanisms = [Mechanism::TnraCmht, Mechanism::TraCmht];
    let thread_counts = [1usize, 2, 4, 8];
    for (mi, &mechanism) in mechanisms.iter().enumerate() {
        eprintln!("[bench_pr2] {}…", mechanism.name());
        json.open(2, mechanism.name());
        let mut secs = Vec::new();
        for &threads in &thread_counts {
            let config = AuthConfig {
                key_bits,
                threads,
                ..AuthConfig::new(mechanism)
            };
            let s = time_build(2, &index, &key, config, &corpus);
            eprintln!("[bench_pr2]   threads={threads}: {:.3}s", s);
            secs.push(s);
        }
        for (i, &threads) in thread_counts.iter().enumerate() {
            json.field(3, &format!("threads_{threads}_s"), &num(secs[i]), false);
        }
        for (i, &threads) in thread_counts.iter().enumerate().skip(1) {
            json.field(
                3,
                &format!("speedup_{threads}"),
                &num(secs[0] / secs[i]),
                i + 1 == thread_counts.len(),
            );
        }
        json.close(2, mi + 1 == mechanisms.len());
    }
    json.close(1, true);

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR2.json");
    eprintln!("[bench_pr2] wrote {out_path}");
    print!("{out}");
}
