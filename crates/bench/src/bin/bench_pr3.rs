//! PR 3 perf-trajectory benchmark: concurrent query serving
//! (`AuthenticatedIndex::serve_batch` over the sharded structure caches)
//! and client-side batch RSA verification.
//!
//! Emits machine-readable `BENCH_PR3.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, workload size with `--queries <n>`). Two sections:
//!
//! * **serve**: batch-serving throughput (queries/s) at pool widths
//!   1/2/4/8 over a df-weighted (hot-term-heavy) workload, per
//!   mechanism. As with `BENCH_PR2.json`, speedups above 1x need actual
//!   cores — the JSON records `available_parallelism` so a 1-CPU
//!   container's ~1x rows read as what they are.
//! * **verify**: per-signature latency of individual RSA verification
//!   vs `verify_batch` (exact semantics: dedup + per-distinct-pair
//!   checks in one Montgomery domain) vs `screen_batch` (the sound,
//!   squared randomized-combination endorsement screen), for batches of
//!   distinct messages and for the realistic "hot" shape where most
//!   pairs are duplicates (the dedup amortization). The
//!   distinct-message combination rows are expected to be *slower* than
//!   individual for e = 65537 — the 64-bit combination exponents
//!   out-cost the 17-bit public exponent — and are recorded honestly;
//!   the win lives in the duplicated rows.
//!
//! Plain `std::time` loops, no dev-dependencies, CI-smoke friendly.

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::available_parallelism;
use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism, Query};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR3.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 256usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] \
                     [--key-bits <n>] [--queries <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!(
        "[bench_pr3] corpus scale {scale_frac}, key {key_bits} bits, \
         {num_queries} queries, {cores} core(s)…"
    );
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(key_bits);

    let mut json = Json::new();
    json.field(1, "pr", "3", false);
    json.field(
        1,
        "description",
        "\"Concurrent query serving (sharded term LRU + pool-backed serve_batch) and client-side batch RSA verification\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), cores >= 4);
    if cores < 4 {
        json.field(
            2,
            "note",
            "\"host lacks the cores for the requested pool widths; serve speedups necessarily ~1x — re-run on a multi-core machine\"",
            true,
        );
    }
    json.close(1, false);

    // ---- serve throughput -------------------------------------------------
    // df-weighted workload: hot terms recur, which is both the realistic
    // query distribution and the shape the sharded LRU serves from RAM.
    let df: Vec<u32> = (0..index.num_terms() as u32).map(|t| index.ft(t)).collect();
    let term_sets = authsearch_corpus::workload::trec_like(&df, num_queries, 0.35, 11);

    json.open(1, "serve");
    json.field(2, "corpus_scale", &format!("{scale_frac}"), false);
    json.field(2, "num_docs", &corpus.num_docs().to_string(), false);
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "num_queries", &num_queries.to_string(), false);
    json.field(2, "top_r", "10", false);
    let mechanisms = [Mechanism::TnraCmht, Mechanism::TraCmht];
    let thread_counts = [1usize, 2, 4, 8];
    for (mi, &mechanism) in mechanisms.iter().enumerate() {
        eprintln!("[bench_pr3] serve {}…", mechanism.name());
        let config = AuthConfig {
            key_bits,
            ..AuthConfig::new(mechanism)
        };
        let mut auth = AuthenticatedIndex::build(index.clone(), &key, config, &corpus);
        let queries: Vec<Query> = term_sets
            .iter()
            .map(|t| Query::from_term_ids(auth.index(), t))
            .collect();
        // Warm the structure caches once: steady-state serving is the
        // regime the paper's engine lives in (the cold-start cost is
        // bench_pr1's subject).
        let _ = auth.serve_batch(&queries, 10, &corpus);
        json.open(2, mechanism.name());
        let mut secs = Vec::new();
        for &threads in &thread_counts {
            auth.set_threads(threads);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                std::hint::black_box(auth.serve_batch(&queries, 10, &corpus));
                best = best.min(start.elapsed().as_secs_f64());
            }
            eprintln!(
                "[bench_pr3]   threads={threads}: {:.1} q/s",
                queries.len() as f64 / best
            );
            secs.push(best);
        }
        for (i, &threads) in thread_counts.iter().enumerate() {
            json.field(
                3,
                &format!("threads_{threads}_qps"),
                &num(queries.len() as f64 / secs[i]),
                false,
            );
        }
        for (i, &threads) in thread_counts.iter().enumerate().skip(1) {
            json.field(
                3,
                &format!("speedup_{threads}"),
                &num(secs[0] / secs[i]),
                i + 1 == thread_counts.len(),
            );
        }
        json.close(2, mi + 1 == mechanisms.len());
    }
    json.close(1, false);

    // ---- batch vs individual verification ---------------------------------
    eprintln!("[bench_pr3] verify…");
    let public = key.public_key();
    let batch_size = 64usize;
    let messages: Vec<Vec<u8>> = (0..batch_size)
        .map(|i| format!("bench_pr3 signed root #{i}").into_bytes())
        .collect();
    let sigs: Vec<Vec<u8>> = messages.iter().map(|m| key.sign(m).unwrap()).collect();
    let distinct: Vec<(&[u8], &[u8])> = messages
        .iter()
        .map(|m| m.as_slice())
        .zip(sigs.iter().map(|s| s.as_slice()))
        .collect();
    // The hot shape: the same few (message, signature) pairs over and
    // over — what a batch of responses sharing hot-term signatures
    // actually hands the client.
    let hot_distinct = 4usize;
    let hot: Vec<(&[u8], &[u8])> = (0..batch_size)
        .map(|i| distinct[i % hot_distinct])
        .collect();

    let reps = 20usize;
    let time_us = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best * 1e6
    };
    let individual_us = time_us(&mut || {
        for (m, s) in &distinct {
            public.verify(m, s).unwrap();
        }
    });
    let batch_distinct_us = time_us(&mut || public.verify_batch(&distinct).unwrap());
    let screen_distinct_us = time_us(&mut || public.screen_batch(&distinct).unwrap());
    let individual_hot_us = time_us(&mut || {
        for (m, s) in &hot {
            public.verify(m, s).unwrap();
        }
    });
    let batch_hot_us = time_us(&mut || public.verify_batch(&hot).unwrap());
    let screen_hot_us = time_us(&mut || public.screen_batch(&hot).unwrap());

    json.open(1, "verify");
    json.field(2, "key_bits", &key_bits.to_string(), false);
    json.field(2, "batch_size", &batch_size.to_string(), false);
    json.field(2, "hot_distinct_pairs", &hot_distinct.to_string(), false);
    json.field(
        2,
        "individual_us_per_sig",
        &num(individual_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "batch_distinct_us_per_sig",
        &num(batch_distinct_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "individual_hot_us_per_sig",
        &num(individual_hot_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "batch_hot_us_per_sig",
        &num(batch_hot_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "hot_speedup",
        &num(individual_hot_us / batch_hot_us),
        false,
    );
    json.field(
        2,
        "screen_distinct_us_per_sig",
        &num(screen_distinct_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "screen_hot_us_per_sig",
        &num(screen_hot_us / batch_size as f64),
        false,
    );
    json.field(
        2,
        "note",
        "\"verify_batch = exact per-distinct-pair checks (dedup + one Montgomery domain; the randomized product combination is unsound for exact acceptance: n-s forgeries). screen_batch = the sound squared randomized combination, endorsement-only semantics; at e=65537 its 64-bit exponents out-cost the 17-bit e on distinct pairs, so dedup (hot rows) is where both batch paths win\"",
        true,
    );
    json.close(1, true);

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR3.json");
    eprintln!("[bench_pr3] wrote {out_path}");
    print!("{out}");
}
