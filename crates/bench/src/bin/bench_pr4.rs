//! PR 4 perf-trajectory benchmark: the persistent executor and the
//! long-running authenticated search server.
//!
//! Emits machine-readable `BENCH_PR4.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, workload size with `--queries <n>`). Three
//! sections:
//!
//! * **pool**: per-batch latency of small-batch serving (the server's
//!   steady-state shape) on the **persistent** pool vs the PR 2/3
//!   scoped behavior of spawning and joining a fresh pool per batch —
//!   the spawn/join tax the refactor removes. Also the raw
//!   fixed-overhead comparison on trivial map work.
//! * **warm**: first-query latency on a cold cache vs after
//!   `warm_cache(top_k)` — the stampede `ServerConfig::warm_top_k`
//!   absorbs at startup.
//! * **server**: loopback q/s through the full stack (frame decode →
//!   pool dispatch → cached serve → frame encode → client verify) at
//!   1/2/4/8 concurrent connections.
//!
//! Plain `std::time` loops, no dev-dependencies, CI-smoke friendly. As
//! with earlier trajectory points, wall-clock *speedups* need real
//! cores — the JSON records `available_parallelism` so single-CPU
//! container numbers read as what they are.

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::{available_parallelism, ThreadPool};
use authsearch_core::{
    AuthConfig, AuthenticatedIndex, Connection, Mechanism, Query, SearchEngine, Server,
    ServerConfig,
};
use authsearch_corpus::{SyntheticConfig, TermId};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR4.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 256usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] \
                     [--key-bits <n>] [--queries <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!(
        "[bench_pr4] corpus scale {scale_frac}, key {key_bits} bits, \
         {num_queries} queries, {cores} core(s)…"
    );
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(key_bits);
    let mechanism = Mechanism::TnraCmht;
    let config = AuthConfig {
        key_bits,
        ..AuthConfig::new(mechanism)
    };
    let auth = AuthenticatedIndex::build(index.clone(), &key, config, &corpus);
    let df: Vec<u32> = (0..index.num_terms() as u32).map(|t| index.ft(t)).collect();
    let term_sets = authsearch_corpus::workload::trec_like(&df, num_queries, 0.35, 11);
    let queries: Vec<Query> = term_sets
        .iter()
        .map(|t| Query::from_term_ids(auth.index(), t))
        .collect();

    let mut json = Json::new();
    json.field(1, "pr", "4", false);
    json.field(
        1,
        "description",
        "\"Persistent executor (workers alive across batches) + long-running authenticated search server over the framed wire protocol\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), cores >= 4);
    if cores < 4 {
        json.field(
            2,
            "note",
            "\"host lacks the cores for the requested widths; parallel speedups necessarily ~1x — re-run on a multi-core machine\"",
            true,
        );
    }
    json.close(1, false);

    // ---- persistent vs scoped (fresh-spawn) pool --------------------------
    // The server's steady state is many *small* batches; the scoped pool
    // paid one spawn/join per batch for exactly that shape.
    eprintln!("[bench_pr4] pool: persistent vs per-batch spawn…");
    let batch = 4usize;
    let width = if cores > 1 { cores } else { 2 };
    let small_batches: Vec<&[Query]> = queries.chunks(batch).collect();
    let reps = 3usize;
    // Warm the structure caches so both paths measure dispatch, not
    // first-touch hashing.
    let _ = auth.serve_batch(&queries, 10, &corpus);
    let mut persistent_best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for chunk in &small_batches {
            std::hint::black_box(auth.serve_batch(chunk, 10, &corpus));
        }
        persistent_best = persistent_best.min(start.elapsed().as_secs_f64());
    }
    let mut scoped_best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for chunk in &small_batches {
            // The PR 2/3 behavior: a fresh pool (spawn + join) per batch.
            let pool = ThreadPool::new(width);
            std::hint::black_box(pool.map(chunk.len(), |i| auth.query(&chunk[i], 10, &corpus)));
        }
        scoped_best = scoped_best.min(start.elapsed().as_secs_f64());
    }
    // Raw fixed overhead on trivial work: what one spawn/join round
    // costs by itself.
    let trivial_rounds = 200usize;
    let persistent_pool = ThreadPool::new(width);
    let start = Instant::now();
    for _ in 0..trivial_rounds {
        std::hint::black_box(persistent_pool.map(batch, |i| i as u64 + 1));
    }
    let trivial_persistent_us = start.elapsed().as_secs_f64() * 1e6 / trivial_rounds as f64;
    let start = Instant::now();
    for _ in 0..trivial_rounds {
        let pool = ThreadPool::new(width);
        std::hint::black_box(pool.map(batch, |i| i as u64 + 1));
    }
    let trivial_scoped_us = start.elapsed().as_secs_f64() * 1e6 / trivial_rounds as f64;
    json.open(1, "pool");
    json.field(2, "pool_width", &width.to_string(), false);
    json.field(2, "batch_size", &batch.to_string(), false);
    json.field(2, "num_batches", &small_batches.len().to_string(), false);
    json.field(
        2,
        "persistent_us_per_batch",
        &num(persistent_best * 1e6 / small_batches.len() as f64),
        false,
    );
    json.field(
        2,
        "scoped_us_per_batch",
        &num(scoped_best * 1e6 / small_batches.len() as f64),
        false,
    );
    json.field(
        2,
        "spawn_join_tax_us_per_batch",
        &num((scoped_best - persistent_best) * 1e6 / small_batches.len() as f64),
        false,
    );
    json.field(
        2,
        "trivial_map_persistent_us",
        &num(trivial_persistent_us),
        false,
    );
    json.field(2, "trivial_map_scoped_us", &num(trivial_scoped_us), false);
    json.field(
        2,
        "trivial_overhead_ratio",
        &num(trivial_scoped_us / trivial_persistent_us.max(1e-9)),
        true,
    );
    json.close(1, false);

    // ---- warm vs cold first query -----------------------------------------
    eprintln!("[bench_pr4] warm vs cold first-query latency…");
    let warm_top_k = 4096usize.min(index.num_terms());
    // Hot query: the top-df terms a warmed cache holds by construction.
    let mut by_df: Vec<TermId> = (0..index.num_terms() as TermId).collect();
    by_df.sort_unstable_by_key(|&t| (std::cmp::Reverse(index.ft(t)), t));
    let hot_terms: Vec<TermId> = by_df.iter().copied().take(3).collect();
    let hot_query = Query::from_term_ids(auth.index(), &hot_terms);
    let cold_reps = 5usize;
    let mut cold_best = f64::INFINITY;
    let mut warm_best = f64::INFINITY;
    for _ in 0..cold_reps {
        auth.clear_serve_cache();
        let start = Instant::now();
        std::hint::black_box(auth.query(&hot_query, 10, &corpus));
        cold_best = cold_best.min(start.elapsed().as_secs_f64());

        auth.clear_serve_cache();
        auth.warm_cache(warm_top_k);
        let start = Instant::now();
        std::hint::black_box(auth.query(&hot_query, 10, &corpus));
        warm_best = warm_best.min(start.elapsed().as_secs_f64());
    }
    json.open(1, "warm");
    json.field(2, "warm_top_k", &warm_top_k.to_string(), false);
    json.field(2, "query_terms", &hot_terms.len().to_string(), false);
    json.field(2, "cold_first_query_us", &num(cold_best * 1e6), false);
    json.field(2, "warm_first_query_us", &num(warm_best * 1e6), false);
    json.field(
        2,
        "cold_over_warm",
        &num(cold_best / warm_best.max(1e-12)),
        true,
    );
    json.close(1, false);

    // ---- loopback server throughput ---------------------------------------
    eprintln!("[bench_pr4] loopback server q/s at 1/2/4/8 connections…");
    let engine = Arc::new(SearchEngine::new(auth, corpus));
    let params = {
        // Rebuild the public parameters the owner would broadcast.
        authsearch_core::VerifierParams {
            public_key: key.public_key().clone(),
            layout: config.layout,
            mechanism,
            num_docs: engine.corpus().num_docs(),
            okapi: engine.auth().index().params(),
        }
    };
    let pair_sets: Vec<Vec<(TermId, u32)>> = term_sets
        .iter()
        .map(|terms| {
            let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            pairs.sort_unstable();
            pairs.dedup_by_key(|p| p.0);
            pairs
        })
        .collect();
    let handle = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = handle.addr();
    json.open(1, "server");
    json.field(2, "corpus_scale", &format!("{scale_frac}"), false);
    json.field(
        2,
        "num_docs",
        &engine.corpus().num_docs().to_string(),
        false,
    );
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "mechanism", &format!("\"{}\"", mechanism.name()), false);
    json.field(2, "queries_per_connection", &num_queries.to_string(), false);
    let connection_counts = [1usize, 2, 4, 8];
    for (ci, &conns) in connection_counts.iter().enumerate() {
        let start = Instant::now();
        let mut clients = Vec::new();
        for c in 0..conns {
            let params = params.clone();
            let pair_sets = pair_sets.clone();
            clients.push(std::thread::spawn(move || {
                let mut connection = Connection::connect(addr, params).expect("connect");
                for i in 0..pair_sets.len() {
                    let pairs = &pair_sets[(c + i) % pair_sets.len()];
                    connection
                        .query_terms(pairs, 10)
                        .expect("verified response");
                }
            }));
        }
        for client in clients {
            client.join().expect("client thread");
        }
        let secs = start.elapsed().as_secs_f64();
        let total = (conns * num_queries) as f64;
        eprintln!(
            "[bench_pr4]   {conns} connection(s): {:.1} q/s",
            total / secs
        );
        json.field(
            2,
            &format!("connections_{conns}_qps"),
            &num(total / secs),
            ci + 1 == connection_counts.len(),
        );
    }
    json.close(1, true);
    handle.shutdown();

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR4.json");
    eprintln!("[bench_pr4] wrote {out_path}");
    print!("{out}");
}
