//! PR 5 perf-trajectory benchmark: overload shedding and the
//! digest-mode (contents-free) wire path.
//!
//! Emits machine-readable `BENCH_PR5.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, workload size with `--queries <n>`). Three
//! sections:
//!
//! * **shed**: verified-query throughput under over-admission — six
//!   retrying clients against `max_connections = 2` vs the same six
//!   unlimited. Records completed q/s, the typed-BUSY shed count, and
//!   the live-connection high-water mark: the point is that a capped
//!   server keeps answering (and every answer still verifies) instead
//!   of wedging.
//! * **digest**: full-echo `Reply::Ok` vs `Reply::OkDigest` for a TNRA
//!   deployment — bytes on the wire per reply and q/s, same queries,
//!   same verdicts.
//! * **nodelay**: mean per-query round-trip with `TCP_NODELAY` on (the
//!   default on both ends) vs off — the Nagle/delayed-ACK tax on this
//!   protocol's small frames.
//!
//! Plain `std::time` loops, no dev-dependencies, CI-smoke friendly;
//! absolute numbers are host-dependent (the JSON records
//! `available_parallelism`).

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::available_parallelism;
use authsearch_core::{
    AuthConfig, AuthenticatedIndex, Connection, Mechanism, RetryPolicy, SearchEngine, Server,
    ServerConfig, VerifierParams,
};
use authsearch_corpus::{SyntheticConfig, TermId};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_index::{build_index, OkapiParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR5.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 240usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] \
                     [--key-bits <n>] [--queries <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!(
        "[bench_pr5] corpus scale {scale_frac}, key {key_bits} bits, \
         {num_queries} queries, {cores} core(s)…"
    );
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(key_bits);
    let mechanism = Mechanism::TnraCmht;
    let config = AuthConfig {
        key_bits,
        ..AuthConfig::new(mechanism)
    };
    let auth = AuthenticatedIndex::build(index.clone(), &key, config, &corpus);
    let df: Vec<u32> = (0..index.num_terms() as u32).map(|t| index.ft(t)).collect();
    let term_sets = authsearch_corpus::workload::trec_like(&df, num_queries, 0.35, 17);
    let pair_sets: Vec<Vec<(TermId, u32)>> = term_sets
        .iter()
        .map(|terms| {
            let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            pairs.sort_unstable();
            pairs.dedup_by_key(|p| p.0);
            pairs
        })
        .collect();
    let params = VerifierParams {
        public_key: key.public_key().clone(),
        layout: config.layout,
        mechanism,
        num_docs: corpus.num_docs(),
        okapi: index.params(),
    };
    let engine = Arc::new(SearchEngine::new(auth, corpus));

    let mut json = Json::new();
    json.field(1, "pr", "5", false);
    json.field(
        1,
        "description",
        "\"Connection admission + idle deadlines (shed with a typed BUSY, never a wedge) and the digest-mode VO wire path for TNRA\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), false);
    json.field(
        2,
        "num_docs",
        &engine.corpus().num_docs().to_string(),
        false,
    );
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "mechanism", &format!("\"{}\"", mechanism.name()), true);
    json.close(1, false);

    // ---- shed throughput under over-admission -----------------------------
    const CLIENTS: usize = 6;
    const CAP: usize = 2;
    let queries_per_client = (num_queries / CLIENTS).max(4);
    let run_clients = |server_config: ServerConfig| -> (f64, u64, u64, u64) {
        let handle = Server::start(Arc::clone(&engine), "127.0.0.1:0", server_config)
            .expect("bind loopback");
        let addr = handle.addr();
        let start = Instant::now();
        let mut threads = Vec::new();
        for c in 0..CLIENTS {
            let params = params.clone();
            let pair_sets = pair_sets.clone();
            threads.push(std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 10_000,
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(20),
                    ..RetryPolicy::default()
                };
                let mut connection = Connection::connect(addr, params).expect("connect");
                for i in 0..queries_per_client {
                    let pairs = &pair_sets[(c + i) % pair_sets.len()];
                    connection
                        .query_terms_retrying(pairs, 10, policy)
                        .expect("verified response");
                }
            }));
        }
        for thread in threads {
            thread.join().expect("client thread");
        }
        let secs = start.elapsed().as_secs_f64();
        let stats = handle.shutdown();
        let qps = (CLIENTS * queries_per_client) as f64 / secs;
        (
            qps,
            stats.connections_shed,
            stats.active_highwater,
            stats.requests_ok,
        )
    };
    eprintln!("[bench_pr5] shed: {CLIENTS} clients vs max_connections={CAP}…");
    let capped_config = ServerConfig {
        max_connections: CAP,
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let (capped_qps, shed, highwater, capped_ok) = run_clients(capped_config);
    eprintln!("[bench_pr5] shed: unlimited admission baseline…");
    let unlimited_config = ServerConfig {
        max_connections: 0,
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let (open_qps, _, open_highwater, open_ok) = run_clients(unlimited_config);
    json.open(1, "shed");
    json.field(2, "clients", &CLIENTS.to_string(), false);
    json.field(
        2,
        "queries_per_client",
        &queries_per_client.to_string(),
        false,
    );
    json.field(2, "max_connections", &CAP.to_string(), false);
    json.field(2, "capped_completed_ok", &capped_ok.to_string(), false);
    json.field(2, "capped_verified_qps", &num(capped_qps), false);
    json.field(2, "capped_busy_sheds", &shed.to_string(), false);
    json.field(2, "capped_highwater", &highwater.to_string(), false);
    json.field(2, "unlimited_completed_ok", &open_ok.to_string(), false);
    json.field(2, "unlimited_verified_qps", &num(open_qps), false);
    json.field(2, "unlimited_highwater", &open_highwater.to_string(), true);
    json.close(1, false);

    // ---- digest mode vs full echo -----------------------------------------
    eprintln!("[bench_pr5] digest: OkDigest vs full-echo bytes and q/s…");
    let handle = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let mut connection = Connection::connect(handle.addr(), params.clone()).expect("connect");
    let before = handle.metrics();
    let start = Instant::now();
    for pairs in &pair_sets {
        connection
            .query_terms(pairs, 10)
            .expect("full echo verifies");
    }
    let full_secs = start.elapsed().as_secs_f64();
    let mid = handle.metrics();
    let start = Instant::now();
    for pairs in &pair_sets {
        connection
            .query_terms_digests(pairs, 10)
            .expect("digest mode verifies");
    }
    let slim_secs = start.elapsed().as_secs_f64();
    let after = handle.metrics();
    handle.shutdown();
    let n = pair_sets.len() as f64;
    let full_bytes = (mid.bytes_out - before.bytes_out) as f64 / n;
    let slim_bytes = (after.bytes_out - mid.bytes_out) as f64 / n;
    json.open(1, "digest");
    json.field(2, "queries", &pair_sets.len().to_string(), false);
    json.field(2, "full_echo_bytes_per_reply", &num(full_bytes), false);
    json.field(2, "ok_digest_bytes_per_reply", &num(slim_bytes), false);
    json.field(
        2,
        "wire_bytes_ratio",
        &num(full_bytes / slim_bytes.max(1.0)),
        false,
    );
    json.field(2, "full_echo_qps", &num(n / full_secs), false);
    json.field(2, "ok_digest_qps", &num(n / slim_secs), true);
    json.close(1, false);

    // ---- TCP_NODELAY on vs off --------------------------------------------
    eprintln!("[bench_pr5] nodelay: small-frame round-trip latency on vs off…");
    let latency_queries = pair_sets.len().min(120);
    let run_latency = |nodelay: bool| -> f64 {
        let handle = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                nodelay,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut connection =
            Connection::connect_with_nodelay(handle.addr(), params.clone(), nodelay)
                .expect("connect");
        // Warm the path once, then time per-query round trips.
        connection.query_terms(&pair_sets[0], 3).expect("warmup");
        let start = Instant::now();
        for pairs in pair_sets.iter().take(latency_queries) {
            connection.query_terms(pairs, 3).expect("verified");
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / latency_queries as f64;
        handle.shutdown();
        mean_us
    };
    let on_us = run_latency(true);
    let off_us = run_latency(false);
    json.open(1, "nodelay");
    json.field(2, "queries", &latency_queries.to_string(), false);
    json.field(2, "nodelay_on_us_per_query", &num(on_us), false);
    json.field(2, "nodelay_off_us_per_query", &num(off_us), false);
    json.field(2, "off_over_on", &num(off_us / on_us.max(1e-9)), true);
    json.close(1, true);

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR5.json");
    eprintln!("[bench_pr5] wrote {out_path}");
    print!("{out}");
}
