//! PR 6 perf-trajectory benchmark: crash-safe authenticated snapshots.
//!
//! Emits machine-readable `BENCH_PR6.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, verification workload with `--queries <n>`).
//! Three sections:
//!
//! * **boot**: cold build (index + every RSA signature) vs snapshot
//!   boot (parse + digest checks + boot signature verification) of the
//!   same artifact — the wall-clock ratio is the whole point of the
//!   snapshot subsystem;
//! * **snapshot**: bytes on disk (container + manifest) and save /
//!   load throughput through the crash-safe commit protocol;
//! * **equivalence**: sanity counters showing the booted engine served
//!   the verification workload with VOs byte-identical to the built
//!   engine's.
//!
//! Plain `std::time` loops, no dev-dependencies, CI-smoke friendly;
//! absolute numbers are host-dependent (the JSON records
//! `available_parallelism`).

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::available_parallelism;
use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism, Query};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use authsearch_index::persist::manifest_path;
use authsearch_index::{build_index, OkapiParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR6.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 60usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] \
                     [--key-bits <n>] [--queries <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!(
        "[bench_pr6] corpus scale {scale_frac}, key {key_bits} bits, \
         {num_queries} queries, {cores} core(s)…"
    );
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let index = build_index(&corpus, OkapiParams::default());
    let key = cached_keypair(key_bits);
    let mechanism = Mechanism::TnraCmht;
    let config = AuthConfig {
        key_bits,
        ..AuthConfig::new(mechanism)
    };

    // ---- cold build vs snapshot boot --------------------------------------
    eprintln!("[bench_pr6] boot: cold artifact build…");
    let start = Instant::now();
    let auth = AuthenticatedIndex::build(index.clone(), &key, config, &corpus);
    let cold_build_secs = start.elapsed().as_secs_f64();

    let dir = std::env::temp_dir().join("authsearch-bench-pr6");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("engine.snap");

    eprintln!("[bench_pr6] snapshot: crash-safe save…");
    let start = Instant::now();
    let info = auth.save_snapshot(&path).expect("save snapshot");
    let save_secs = start.elapsed().as_secs_f64();
    let manifest_bytes = std::fs::metadata(manifest_path(&path))
        .map(|m| m.len())
        .unwrap_or(0);

    eprintln!("[bench_pr6] boot: verified snapshot load…");
    let start = Instant::now();
    let booted = AuthenticatedIndex::load_snapshot(&path, &config).expect("load snapshot");
    let snapshot_boot_secs = start.elapsed().as_secs_f64();

    let mut json = Json::new();
    json.field(1, "pr", "6", false);
    json.field(
        1,
        "description",
        "\"Crash-safe authenticated snapshots: checksummed persistence, verified boot, fault-injection hardening\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), false);
    json.field(2, "num_docs", &corpus.num_docs().to_string(), false);
    json.field(2, "num_terms", &index.num_terms().to_string(), false);
    json.field(2, "key_bits", &key_bits.to_string(), false);
    json.field(2, "mechanism", &format!("\"{}\"", mechanism.name()), true);
    json.close(1, false);

    json.open(1, "boot");
    json.field(2, "cold_build_secs", &num(cold_build_secs), false);
    json.field(2, "snapshot_boot_secs", &num(snapshot_boot_secs), false);
    json.field(
        2,
        "build_over_boot",
        &num(cold_build_secs / snapshot_boot_secs.max(1e-9)),
        true,
    );
    json.close(1, false);

    json.open(1, "snapshot");
    json.field(2, "container_bytes", &info.bytes.to_string(), false);
    json.field(2, "manifest_bytes", &manifest_bytes.to_string(), false);
    json.field(2, "generation", &info.generation.to_string(), false);
    json.field(2, "save_secs", &num(save_secs), false);
    json.field(
        2,
        "save_mib_per_sec",
        &num(info.bytes as f64 / (1 << 20) as f64 / save_secs.max(1e-9)),
        false,
    );
    json.field(
        2,
        "load_mib_per_sec",
        &num(info.bytes as f64 / (1 << 20) as f64 / snapshot_boot_secs.max(1e-9)),
        true,
    );
    json.close(1, false);

    // ---- equivalence: booted VOs are the built VOs -------------------------
    eprintln!("[bench_pr6] equivalence: {num_queries} queries, built vs booted…");
    let df: Vec<u32> = (0..index.num_terms() as u32).map(|t| index.ft(t)).collect();
    let term_sets = authsearch_corpus::workload::trec_like(&df, num_queries, 0.35, 17);
    let mut identical = 0usize;
    for terms in &term_sets {
        let query = Query::from_term_ids(auth.index(), terms);
        let a = auth.query(&query, 10, &corpus);
        let b = booted.query(&query, 10, &corpus);
        assert_eq!(a.result, b.result, "booted result diverged");
        assert_eq!(a.vo, b.vo, "booted VO diverged");
        identical += 1;
    }
    json.open(1, "equivalence");
    json.field(2, "queries", &term_sets.len().to_string(), false);
    json.field(2, "identical_vos", &identical.to_string(), true);
    json.close(1, true);

    std::fs::remove_dir_all(&dir).ok();
    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR6.json");
    eprintln!("[bench_pr6] wrote {out_path}");
    print!("{out}");
}
