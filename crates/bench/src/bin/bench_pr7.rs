//! PR 7 perf-trajectory benchmark: authenticated conjunctive queries.
//!
//! Emits machine-readable `BENCH_PR7.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, workload with `--queries <n>`). For each
//! mechanism family it compares, over the same multi-term workload:
//!
//! * **conjunctive**: the server proves the intersection directly
//!   (`search_conjunctive` + `verify_conjunctive`) — one VO per query;
//! * **baseline**: the only sound alternative without the tentpole —
//!   the client fetches each term's *entire* posting list as a
//!   single-term disjunctive query (`r = N`, the collection size),
//!   verifies each list, and intersects client-side — k VOs and k full
//!   result sets per query.
//!
//! Reported per path: served queries/sec, mean verify time, and mean
//! wire-encoded VO bytes; plus the baseline/conjunctive ratios that
//! justify the server-side intersection proof. Plain `std::time`
//! loops, no dev-dependencies, CI-smoke friendly.

use authsearch_bench::json::{num, Json};
use authsearch_core::pool::available_parallelism;
use authsearch_core::{verify, verify_conjunctive, wire, AuthConfig, DataOwner, Mechanism, Query};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::keys::PAPER_KEY_BITS;
use std::time::Instant;

const TOP_R: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR7.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 40usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--out <path>] [--scale <frac>] \
                     [--key-bits <n>] [--queries <n>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cores = available_parallelism();
    eprintln!(
        "[bench_pr7] corpus scale {scale_frac}, key {key_bits} bits, \
         {num_queries} queries, {cores} core(s)…"
    );
    let corpus = SyntheticConfig::wsj(scale_frac).generate();
    let owner = DataOwner::with_cached_key(key_bits);

    let mut json = Json::new();
    json.field(1, "pr", "7", false);
    json.field(
        1,
        "description",
        "\"Authenticated conjunctive queries: server-proved intersection vs \
         fetch-every-list-and-intersect-client-side\"",
        false,
    );
    json.open(1, "machine");
    json.field(2, "available_parallelism", &cores.to_string(), false);
    json.field(2, "num_docs", &corpus.num_docs().to_string(), false);
    json.field(2, "key_bits", &key_bits.to_string(), false);
    json.field(2, "top_r", &TOP_R.to_string(), true);
    json.close(1, false);

    let mechanisms = [Mechanism::TraMht, Mechanism::TnraCmht];
    for (mi, &mechanism) in mechanisms.iter().enumerate() {
        eprintln!("[bench_pr7] {}: publish…", mechanism.name());
        let config = AuthConfig {
            key_bits,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        let auth = &publication.auth;
        let params = &publication.verifier_params;
        let num_docs = corpus.num_docs();
        let num_terms = auth.index().num_terms();
        let term_sets = authsearch_corpus::workload::synthetic(num_terms, num_queries, 2, 17);
        let queries: Vec<Query> = term_sets
            .iter()
            .map(|terms| Query::from_term_ids(auth.index(), terms))
            .collect();

        // ---- conjunctive: one proved-intersection VO per query -------
        eprintln!("[bench_pr7] {}: conjunctive path…", mechanism.name());
        let start = Instant::now();
        let conj_responses: Vec<_> = queries
            .iter()
            .map(|q| auth.query_conjunctive(q, TOP_R, &corpus))
            .collect();
        let conj_serve_secs = start.elapsed().as_secs_f64();
        let conj_vo_bytes: usize = conj_responses
            .iter()
            .map(|r| wire::encode(&r.vo).unwrap().len())
            .sum();
        let start = Instant::now();
        for (q, r) in queries.iter().zip(conj_responses.iter()) {
            verify_conjunctive(params, q, TOP_R, r).expect("honest conjunctive VO verifies");
        }
        let conj_verify_secs = start.elapsed().as_secs_f64();

        // ---- baseline: fetch each full list, intersect client-side ---
        eprintln!(
            "[bench_pr7] {}: fetch-and-intersect baseline…",
            mechanism.name()
        );
        let singles: Vec<Vec<Query>> = queries
            .iter()
            .map(|q| {
                q.terms
                    .iter()
                    .map(|qt| Query::from_term_pairs(auth.index(), &[(qt.term, qt.f_qt)]))
                    .collect()
            })
            .collect();
        let start = Instant::now();
        let base_responses: Vec<Vec<_>> = singles
            .iter()
            .map(|qs| {
                qs.iter()
                    .map(|q| auth.query(q, num_docs, &corpus))
                    .collect()
            })
            .collect();
        let base_serve_secs = start.elapsed().as_secs_f64();
        let base_vo_bytes: usize = base_responses
            .iter()
            .flatten()
            .map(|r| wire::encode(&r.vo).unwrap().len())
            .sum();
        let start = Instant::now();
        let mut intersected = 0usize;
        for (qs, rs) in singles.iter().zip(base_responses.iter()) {
            let mut docs: Option<Vec<u32>> = None;
            for (q, r) in qs.iter().zip(rs.iter()) {
                let verified = verify::verify(params, q, num_docs, r).expect("honest list");
                let set: Vec<u32> = verified.result.entries.iter().map(|e| e.doc).collect();
                docs = Some(match docs {
                    None => set,
                    Some(prev) => prev.into_iter().filter(|d| set.contains(d)).collect(),
                });
            }
            intersected += docs.map(|d| d.len()).unwrap_or(0);
        }
        let base_verify_secs = start.elapsed().as_secs_f64();

        let n = queries.len().max(1) as f64;
        json.open(1, mechanism.name());
        json.open(2, "conjunctive");
        json.field(3, "serve_qps", &num(n / conj_serve_secs.max(1e-9)), false);
        json.field(3, "verify_ms_mean", &num(conj_verify_secs * 1e3 / n), false);
        json.field(3, "vo_bytes_mean", &num(conj_vo_bytes as f64 / n), true);
        json.close(2, false);
        json.open(2, "fetch_and_intersect");
        json.field(3, "serve_qps", &num(n / base_serve_secs.max(1e-9)), false);
        json.field(3, "verify_ms_mean", &num(base_verify_secs * 1e3 / n), false);
        json.field(3, "vo_bytes_mean", &num(base_vo_bytes as f64 / n), false);
        json.field(3, "intersection_docs", &intersected.to_string(), true);
        json.close(2, false);
        json.open(2, "baseline_over_conjunctive");
        json.field(
            3,
            "vo_bytes",
            &num(base_vo_bytes as f64 / (conj_vo_bytes as f64).max(1e-9)),
            false,
        );
        json.field(
            3,
            "verify_time",
            &num(base_verify_secs / conj_verify_secs.max(1e-9)),
            true,
        );
        json.close(2, true);
        json.close(1, mi + 1 == mechanisms.len());
    }

    let out = json.finish();
    std::fs::write(&out_path, &out).expect("write BENCH_PR7.json");
    eprintln!("[bench_pr7] wrote {out_path}");
    print!("{out}");
}
