//! PR 9 perf-trajectory benchmark: the event-driven server core and
//! the fixed-width / fused-squaring Montgomery kernels.
//!
//! Emits machine-readable `BENCH_PR9.json` (override the path with
//! `--out <path>`; corpus with `--scale <frac>`, key with
//! `--key-bits <n>`, workload with `--queries <n>`, parked crowd with
//! `--idle-conns <n>`). Three sections:
//!
//! * **transport** — the same verified `query_terms` workload against
//!   the threaded core and the epoll reactor, reporting syscalls per
//!   query (accepts + reads + writes + polls from
//!   [`authsearch_core::TransportStats`], divided by `requests_ok`),
//!   allocations and allocated bytes per reply (counting global
//!   allocator; process-wide, so the client's share is included on
//!   both sides — the *cross-core delta* is the signal), and reply
//!   bytes on the wire (`bytes_out / requests_ok`);
//! * **idle capacity** — the reactor parks `--idle-conns` raw
//!   connections, serves verified traffic past them, and proves a
//!   sample still answers. Honest caveats: both endpoints are
//!   in-process on loopback, CI gives ~1 CPU, and each parked
//!   connection costs two fds in-process, so the ceiling here is the
//!   fd limit, not the reactor (9,900 parked connections verified
//!   locally under `ulimit -n` 20000);
//! * **crypto kernels** — chained-REDC microbenchmarks at the paper's
//!   two widths (k = 8 limbs / 512-bit, k = 16 / 1024-bit) comparing
//!   the PR-1 generic CIOS path against the PR-9 fixed-width kernels
//!   and the fused squaring kernel, plus end-to-end sign/verify rows
//!   at both key sizes.
//!
//! Plain `std::time` loops, no dev-dependencies, CI-smoke friendly.

use authsearch_bench::json::{num, Json};
use authsearch_core::{AuthConfig, DataOwner, Mechanism, SearchEngine, VerifierParams};
use authsearch_core::{
    Connection, Server, ServerConfig, ServerCore, ServerMetricsSnapshot, TransportStatsSnapshot,
};
use authsearch_corpus::SyntheticConfig;
use authsearch_crypto::bignum::bench_kernels::{redc_reps, BenchKernel};
use authsearch_crypto::bignum::{BigUint, Montgomery};
use authsearch_crypto::keys::{cached_keypair, PAPER_KEY_BITS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `System` allocator wrapped with relaxed alloc/byte counters, so the
/// transport section can report allocations per reply without any
/// profiler dependency.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` with the caller's own
// layout/pointer arguments unchanged, so `System`'s contract is the
// one the caller already promised; the counters are atomics and add
// no unsafety of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System.alloc` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwards the caller's pointer and layout to
    // `System.dealloc` untouched.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwards the caller's pointer, layout, and size to
    // `System.realloc` untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

const TOP_R: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_PR9.json");
    let mut scale_frac = 0.01f64;
    let mut key_bits = PAPER_KEY_BITS;
    let mut num_queries = 60usize;
    let mut idle_conns = 512usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--scale" => {
                scale_frac = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale value")
            }
            "--key-bits" => {
                key_bits = it
                    .next()
                    .expect("--key-bits needs a value")
                    .parse()
                    .expect("bad --key-bits value")
            }
            "--queries" => {
                num_queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("bad --queries value")
            }
            "--idle-conns" => {
                idle_conns = it
                    .next()
                    .expect("--idle-conns needs a value")
                    .parse()
                    .expect("bad --idle-conns value")
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    eprintln!(
        "bench_pr9: scale={scale_frac} key_bits={key_bits} queries={num_queries} \
         idle_conns={idle_conns}"
    );

    let (engine, params, workloads) = fixture(scale_frac, key_bits);

    eprintln!("bench_pr9: transport workload on the threaded core...");
    let threaded = transport_run(
        ServerCore::Threaded,
        &engine,
        params.clone(),
        &workloads,
        num_queries,
    );
    eprintln!("bench_pr9: transport workload on the reactor core...");
    let reactor = transport_run(
        ServerCore::Reactor,
        &engine,
        params.clone(),
        &workloads,
        num_queries,
    );

    eprintln!("bench_pr9: parking {idle_conns} idle connections on the reactor...");
    let idle = idle_run(&engine, params, &workloads, idle_conns);

    eprintln!("bench_pr9: crypto kernel rows (k = 8 and k = 16)...");
    let kernels: Vec<KernelRow> = [8usize, 16].iter().map(|&k| kernel_run(k)).collect();

    eprintln!("bench_pr9: sign/verify rows (512- and 1024-bit keys)...");
    let signatures: Vec<SignRow> = [512usize, 1024]
        .iter()
        .map(|&bits| sign_run(bits))
        .collect();

    let json = render(
        scale_frac,
        key_bits,
        num_queries,
        &threaded,
        &reactor,
        &idle,
        &kernels,
        &signatures,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("{json}");
    eprintln!("bench_pr9: wrote {out_path}");
}

/// Engine, broadcast verifier parameters, and `(term, f_qt)` workloads.
type Fixture = (Arc<SearchEngine>, VerifierParams, Vec<Vec<(u32, u32)>>);

fn fixture(scale_frac: f64, key_bits: usize) -> Fixture {
    let docs = ((172_961.0 * scale_frac) as usize).max(120);
    let corpus = SyntheticConfig::tiny(docs, 41).generate();
    let owner = DataOwner::with_cached_key(key_bits);
    let config = AuthConfig {
        key_bits,
        ..AuthConfig::new(Mechanism::TnraCmht)
    };
    let publication = owner.publish(&corpus, config);
    let num_terms = publication.auth.index().num_terms();
    let workloads: Vec<Vec<(u32, u32)>> =
        authsearch_corpus::workload::synthetic(num_terms, 6, 2, 9)
            .into_iter()
            .map(|terms| {
                let mut pairs: Vec<(u32, u32)> = terms.iter().map(|&t| (t, 1)).collect();
                pairs.sort_unstable();
                pairs.dedup_by_key(|p| p.0);
                pairs
            })
            .collect();
    (
        Arc::new(SearchEngine::new(publication.auth, corpus)),
        publication.verifier_params,
        workloads,
    )
}

/// One transport measurement: syscall, allocation, and wire-byte costs
/// of `queries` verified roundtrips against the given core.
struct TransportRow {
    core: &'static str,
    queries: u64,
    elapsed: Duration,
    transport: TransportStatsSnapshot,
    metrics: ServerMetricsSnapshot,
    allocs: u64,
    alloc_bytes: u64,
}

fn transport_run(
    core: ServerCore,
    engine: &Arc<SearchEngine>,
    params: VerifierParams,
    workloads: &[Vec<(u32, u32)>],
    queries: usize,
) -> TransportRow {
    let handle = Server::start(
        Arc::clone(engine),
        "127.0.0.1:0",
        ServerConfig {
            core,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut connection = Connection::connect(handle.addr(), params).expect("connect");

    // Warm both sides (cache fills, lazy buffers) outside the window.
    let warm = &workloads[0];
    connection.query_terms(warm, TOP_R).expect("warm query");

    let transport_before = handle.transport_stats();
    let (allocs_before, bytes_before) = alloc_snapshot();
    let started = Instant::now();
    for i in 0..queries {
        let pairs = &workloads[i % workloads.len()];
        let (verified, response) = connection.query_terms(pairs, TOP_R).expect("verified");
        assert_eq!(verified.result, response.result);
    }
    let elapsed = started.elapsed();
    let (allocs_after, bytes_after) = alloc_snapshot();
    let transport_after = handle.transport_stats();

    drop(connection);
    let metrics = handle.shutdown();
    TransportRow {
        core: match core {
            ServerCore::Reactor => "reactor",
            ServerCore::Threaded => "threaded",
        },
        queries: queries as u64,
        elapsed,
        transport: TransportStatsSnapshot {
            accepts: transport_after.accepts - transport_before.accepts,
            reads: transport_after.reads - transport_before.reads,
            writes: transport_after.writes - transport_before.writes,
            polls: transport_after.polls - transport_before.polls,
        },
        metrics,
        allocs: allocs_after - allocs_before,
        alloc_bytes: bytes_after - bytes_before,
    }
}

/// Idle-capacity measurement on the reactor: park `target` raw
/// connections, serve verified traffic past them, prove a sample still
/// answers.
struct IdleRow {
    target: usize,
    establish: Duration,
    serviced_after_idle: usize,
    total: Duration,
}

fn idle_run(
    engine: &Arc<SearchEngine>,
    params: VerifierParams,
    workloads: &[Vec<(u32, u32)>],
    target: usize,
) -> IdleRow {
    let handle = Server::start(
        Arc::clone(engine),
        "127.0.0.1:0",
        ServerConfig {
            core: ServerCore::Reactor,
            max_connections: target + 16,
            idle_deadline: Duration::ZERO, // parked forever is legal here
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let started = Instant::now();
    let mut parked: Vec<TcpStream> = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(handle.addr()) {
            Ok(stream) => parked.push(stream),
            Err(e) => panic!("dial {i}/{target} failed: {e} (raise ulimit -n?)"),
        }
    }
    let establish = started.elapsed();

    let mut connection = Connection::connect(handle.addr(), params).expect("connect");
    for pairs in workloads {
        let (verified, response) = connection.query_terms(pairs, TOP_R).expect("verified");
        assert_eq!(verified.result, response.result);
    }

    let sample = [0, target / 2, target - 1];
    for &idx in &sample {
        let (kind, _) = raw_roundtrip(&mut parked[idx], &workloads[0]);
        assert_eq!(
            kind,
            authsearch_core::wire::kind::REPLY_OK,
            "parked conn {idx} must answer"
        );
    }
    let total = started.elapsed();

    drop(parked);
    drop(connection);
    let stats = handle.shutdown();
    assert_eq!(stats.connections as usize, target + 1);
    assert_eq!(stats.connections_shed, 0);
    IdleRow {
        target,
        establish,
        serviced_after_idle: sample.len(),
        total,
    }
}

/// Write one `REQ_TERMS` frame on a raw stream and read back exactly
/// one reply frame, returning `(kind, payload)`.
fn raw_roundtrip(stream: &mut TcpStream, pairs: &[(u32, u32)]) -> (u8, Vec<u8>) {
    use authsearch_core::wire;
    let frame = wire::Request::Terms {
        terms: pairs.to_vec(),
        r: TOP_R as u32,
        want_digests: false,
    }
    .encode_frame()
    .expect("encodable request");
    stream.write_all(&frame).expect("request written");
    let mut header = [0u8; wire::FRAME_HEADER_LEN];
    stream.read_exact(&mut header).expect("reply header");
    let (kind, len) = wire::decode_frame_header(&header).expect("reply header decodes");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("reply payload");
    (kind, payload)
}

/// Chained-REDC nanoseconds per op for every kernel variant at one
/// width, from the same deterministic modulus and operand.
struct KernelRow {
    k: usize,
    mul_generic_ns: f64,
    mul_fixed_ns: f64,
    sqr_via_mul_ns: f64,
    sqr_fused_generic_ns: f64,
    sqr_fused_fixed_ns: f64,
}

/// xorshift64* — deterministic operand material for the kernel rows.
fn limb_stream(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn kernel_run(k: usize) -> KernelRow {
    let mut next = limb_stream(0x9E37_79B9_7F4A_7C15 ^ k as u64);
    // Odd modulus with the top bit set: a valid Montgomery width-k
    // modulus shaped like an RSA-n of the same size.
    let mut modulus_limbs: Vec<u64> = (0..k).map(|_| next()).collect();
    modulus_limbs[0] |= 1;
    modulus_limbs[k - 1] |= 1 << 63;
    let modulus = biguint_from_limbs(&modulus_limbs);
    let ctx = Montgomery::new(&modulus).expect("odd modulus");
    let seed_limbs: Vec<u64> = (0..k - 1).map(|_| next()).collect();
    let seed = biguint_from_limbs(&seed_limbs);

    let reps = 200_000 / k; // same total limb work per width
    let time = |kernel: BenchKernel| -> f64 {
        // Best-of-3 to shrug off scheduler noise on shared CI.
        let mut best = f64::INFINITY;
        let mut sink = 0u64;
        for _ in 0..3 {
            let started = Instant::now();
            sink ^= redc_reps(&ctx, &seed, reps, kernel);
            let ns = started.elapsed().as_nanos() as f64 / reps as f64;
            best = best.min(ns);
        }
        assert_ne!(sink, u64::MAX, "keep the chain alive");
        best
    };

    KernelRow {
        k,
        mul_generic_ns: time(BenchKernel::MulGeneric),
        mul_fixed_ns: time(BenchKernel::MulDispatch),
        sqr_via_mul_ns: time(BenchKernel::SqrViaGenericMul),
        sqr_fused_generic_ns: time(BenchKernel::SqrGenericFused),
        sqr_fused_fixed_ns: time(BenchKernel::SqrDispatch),
    }
}

/// Big-endian bytes from little-endian limbs, then through the public
/// [`BigUint`] constructor (its `limbs` field is crate-private).
fn biguint_from_limbs(limbs: &[u64]) -> BigUint {
    let mut bytes = Vec::with_capacity(limbs.len() * 8);
    for limb in limbs.iter().rev() {
        bytes.extend_from_slice(&limb.to_be_bytes());
    }
    BigUint::from_bytes_be(&bytes)
}

/// End-to-end sign/verify wall times at one key size.
struct SignRow {
    bits: usize,
    sign_us: f64,
    verify_us: f64,
}

fn sign_run(bits: usize) -> SignRow {
    let key = cached_keypair(bits);
    let reps = if bits >= 1024 { 40 } else { 120 };
    let message = b"bench_pr9 sign/verify row";
    let signature = key.sign(message).expect("sign");

    let started = Instant::now();
    for _ in 0..reps {
        key.sign(message).expect("sign");
    }
    let sign_us = started.elapsed().as_micros() as f64 / reps as f64;

    let public = key.public_key();
    let started = Instant::now();
    for _ in 0..reps {
        public.verify(message, &signature).expect("verify");
    }
    let verify_us = started.elapsed().as_micros() as f64 / reps as f64;

    SignRow {
        bits,
        sign_us,
        verify_us,
    }
}

fn per_query(total: u64, queries: u64) -> f64 {
    total as f64 / queries.max(1) as f64
}

#[allow(clippy::too_many_arguments)]
fn render(
    scale_frac: f64,
    key_bits: usize,
    num_queries: usize,
    threaded: &TransportRow,
    reactor: &TransportRow,
    idle: &IdleRow,
    kernels: &[KernelRow],
    signatures: &[SignRow],
) -> String {
    let mut json = Json::new();
    json.open(1, "config");
    json.field(2, "scale", &num(scale_frac), false);
    json.field(2, "key_bits", &key_bits.to_string(), false);
    json.field(2, "queries", &num_queries.to_string(), false);
    json.field(2, "mechanism", "\"tnra_cmht\"", true);
    json.close(1, false);

    json.open(1, "transport");
    for (row, last) in [(threaded, false), (reactor, true)] {
        json.open(2, row.core);
        let q = row.queries;
        let syscalls = row.transport.accepts
            + row.transport.reads
            + row.transport.writes
            + row.transport.polls;
        json.field(3, "queries", &q.to_string(), false);
        json.field(
            3,
            "queries_per_sec",
            &num(q as f64 / row.elapsed.as_secs_f64()),
            false,
        );
        json.field(3, "reads", &row.transport.reads.to_string(), false);
        json.field(3, "writes", &row.transport.writes.to_string(), false);
        json.field(3, "polls", &row.transport.polls.to_string(), false);
        json.field(3, "syscalls_per_query", &num(per_query(syscalls, q)), false);
        json.field(
            3,
            "allocs_per_reply_process_wide",
            &num(per_query(row.allocs, q)),
            false,
        );
        json.field(
            3,
            "alloc_bytes_per_reply_process_wide",
            &num(per_query(row.alloc_bytes, q)),
            false,
        );
        json.field(
            3,
            "reply_bytes_per_query",
            &num(per_query(row.metrics.bytes_out, row.metrics.requests_ok)),
            false,
        );
        json.field(3, "requests_ok", &row.metrics.requests_ok.to_string(), true);
        json.close(2, last);
    }
    json.close(1, false);

    json.open(1, "idle_capacity_reactor");
    json.field(2, "parked_connections", &idle.target.to_string(), false);
    json.field(
        2,
        "establish_secs",
        &num(idle.establish.as_secs_f64()),
        false,
    );
    json.field(
        2,
        "serviced_after_idle",
        &idle.serviced_after_idle.to_string(),
        false,
    );
    json.field(2, "total_secs", &num(idle.total.as_secs_f64()), false);
    json.field(
        2,
        "note",
        "\"both endpoints in-process on loopback, ~1 CPU in CI; each parked \
         connection costs two fds in-process so the ceiling is the fd limit, \
         not the reactor (9900 parked connections verified locally under \
         ulimit -n 20000)\"",
        true,
    );
    json.close(1, false);

    json.open(1, "montgomery_kernels");
    for (i, row) in kernels.iter().enumerate() {
        json.open(2, &format!("k{}", row.k));
        json.field(3, "limbs", &row.k.to_string(), false);
        json.field(3, "mul_generic_ns", &num(row.mul_generic_ns), false);
        json.field(3, "mul_fixed_ns", &num(row.mul_fixed_ns), false);
        json.field(
            3,
            "mul_fixed_speedup",
            &num(row.mul_generic_ns / row.mul_fixed_ns),
            false,
        );
        json.field(3, "sqr_via_generic_mul_ns", &num(row.sqr_via_mul_ns), false);
        json.field(
            3,
            "sqr_fused_generic_ns",
            &num(row.sqr_fused_generic_ns),
            false,
        );
        json.field(3, "sqr_fused_fixed_ns", &num(row.sqr_fused_fixed_ns), false);
        json.field(
            3,
            "sqr_fused_speedup_vs_mul",
            &num(row.sqr_via_mul_ns / row.sqr_fused_fixed_ns),
            true,
        );
        json.close(2, i + 1 == kernels.len());
    }
    json.close(1, false);

    json.open(1, "signatures");
    for (i, row) in signatures.iter().enumerate() {
        json.open(2, &format!("rsa{}", row.bits));
        json.field(3, "sign_us", &num(row.sign_us), false);
        json.field(3, "verify_us", &num(row.verify_us), true);
        json.close(2, i + 1 == signatures.len());
    }
    json.close(1, true);
    json.finish()
}
