//! Regenerate Figure 4 (inverted-list length distribution).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let wb = Workbench::new(Scale::from_args());
    figures::fig04::run(&wb);
}
