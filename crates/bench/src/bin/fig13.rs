//! Regenerate Figure 13 (synthetic workload, varying query size).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::fig13::run(&mut wb);
}
