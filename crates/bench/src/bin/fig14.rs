//! Regenerate Figure 14 (synthetic workload, varying result size).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::fig14::run(&mut wb);
}
