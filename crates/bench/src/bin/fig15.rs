//! Regenerate Figure 15 (TREC-like workload, varying result size).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::fig15::run(&mut wb);
}
