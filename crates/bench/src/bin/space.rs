//! Regenerate the §4.1 storage-overhead numbers.

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::space::run(&mut wb);
}
