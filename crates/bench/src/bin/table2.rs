//! Regenerate Table 2 (VO data/digest breakdown of the TRA variants).

use authsearch_bench::{figures, Scale, Workbench};

fn main() {
    let mut wb = Workbench::new(Scale::from_args());
    figures::table2::run(&mut wb);
}
