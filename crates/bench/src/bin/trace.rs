//! Regenerate Figures 6 and 11 (the worked example's traces).

use authsearch_bench::figures;

fn main() {
    figures::trace::run();
}
