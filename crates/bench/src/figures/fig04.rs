//! Figure 4: inverted-list length distribution of the WSJ corpus.

use crate::tables::Table;
use crate::Workbench;
use authsearch_corpus::list_length_stats;

/// Print the CDF of inverted-list lengths plus the paper's anchors.
pub fn run(wb: &Workbench) {
    let stats = list_length_stats(&wb.corpus);
    let mut t = Table::new(
        "Figure 4: Inverted List Length Distribution (WSJ-like corpus)",
        &["# docs/term ≤", "cumulative %"],
    );
    for (len, pct) in stats.log_cdf(2) {
        t.row(vec![len.to_string(), format!("{pct:.1}")]);
    }
    t.note(format!(
        "corpus: {} docs, {} terms, mean list {:.1} entries",
        wb.corpus.num_docs(),
        wb.corpus.num_terms(),
        stats.mean_len
    ));
    t.note(format!(
        "terms with 2-5 entries: {:.1}% (paper: >50%)",
        100.0 * stats.frac_in_2_to_5
    ));
    t.note(format!(
        "longest list: {} entries = {:.1}% of n (paper: 127,848 = 73.9% of n)",
        stats.max_len,
        100.0 * stats.max_len as f64 / wb.corpus.num_docs() as f64
    ));
    t.print();
}
