//! Figure 13: synthetic workload, varying query size (result size = 10).

use crate::figures::{all_mechanisms, print_abcde};
use crate::Workbench;

/// Query sizes sampled along the paper's 0–20 x-axis.
pub const QUERY_SIZES: [usize; 8] = [1, 2, 3, 5, 8, 12, 16, 20];

/// Result size fixed at the Table 1 default.
pub const RESULT_SIZE: usize = 10;

/// Run the sweep and print sub-figures (a)–(e).
pub fn run(wb: &mut Workbench) {
    println!(
        "\n#### Figure 13 — synthetic workload ({} queries/point), r = {RESULT_SIZE} ####",
        wb.scale.queries
    );
    let mut agg = Vec::with_capacity(QUERY_SIZES.len());
    for (i, &qsize) in QUERY_SIZES.iter().enumerate() {
        let queries = wb.synthetic_queries(qsize, 1300 + i as u64);
        agg.push(all_mechanisms(wb, &queries, RESULT_SIZE));
    }
    print_abcde(
        "Figure 13",
        "qsize",
        &QUERY_SIZES,
        &agg,
        &[
            "paper: early termination reads far fewer entries than list length, \
             rising with query size (13a)",
            "paper: TRA variants cost more I/O than TNRA (random doc-MHT fetches); \
             TNRA-CMHT < 40% the I/O of TNRA-MHT (13c)",
            "paper: TRA VOs are several times larger than TNRA's; \
             TNRA-CMHT 10-20% below TNRA-MHT (13d)",
        ],
    );
}
