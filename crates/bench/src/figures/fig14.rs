//! Figure 14: synthetic workload, varying result size (query size = 3).

use crate::figures::{all_mechanisms, print_abcde};
use crate::Workbench;

/// The paper's result-size sweep.
pub const RESULT_SIZES: [usize; 5] = [10, 20, 40, 60, 80];

/// Query size fixed at the Table 1 default.
pub const QUERY_SIZE: usize = 3;

/// Run the sweep and print sub-figures (a)–(e).
pub fn run(wb: &mut Workbench) {
    println!(
        "\n#### Figure 14 — synthetic workload ({} queries/point), q = {QUERY_SIZE} ####",
        wb.scale.queries
    );
    let queries = wb.synthetic_queries(QUERY_SIZE, 1400);
    let mut agg = Vec::with_capacity(RESULT_SIZES.len());
    for &r in &RESULT_SIZES {
        agg.push(all_mechanisms(wb, &queries, r));
    }
    print_abcde(
        "Figure 14",
        "r",
        &RESULT_SIZES,
        &agg,
        &[
            "paper: costs grow with r; TNRA-CMHT I/O rises only marginally \
             (further results come from scanning one remaining list) (14c)",
        ],
    );
}
