//! Figure 15: TREC ad-hoc query workload, varying result size.

use crate::figures::{all_mechanisms, print_abcde};
use crate::Workbench;

/// The paper's result-size sweep.
pub const RESULT_SIZES: [usize; 5] = [10, 20, 40, 60, 80];

/// The paper uses TREC topics 101–200: 100 queries.
pub const NUM_TREC_QUERIES: usize = 100;

/// Run the sweep and print sub-figures (a)–(e).
pub fn run(wb: &mut Workbench) {
    let n = NUM_TREC_QUERIES.min(wb.scale.queries);
    println!("\n#### Figure 15 — TREC-like workload ({n} queries, 2-20 terms) ####");
    let queries = wb.trec_queries(n, 1500);
    let mut agg = Vec::with_capacity(RESULT_SIZES.len());
    for &r in &RESULT_SIZES {
        agg.push(all_mechanisms(wb, &queries, r));
    }
    print_abcde(
        "Figure 15",
        "r",
        &RESULT_SIZES,
        &agg,
        &[
            "paper: TREC queries hit long lists; absolute costs >20x the \
             synthetic workload, TRA's early-termination edge grows to \
             10-20% (15a)",
            "paper: TNRA-CMHT stays at sub-second I/O, <50 KB VOs, and tens \
             of ms verification even at r = 80",
        ],
    );
}
