//! One module per reproduced table/figure.

pub mod fig04;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod space;
pub mod table2;
pub mod trace;

use crate::runner::AggregateMetrics;
use crate::tables::{fmt_bytes, fmt_secs, Table};
use crate::Workbench;
use authsearch_core::Mechanism;

/// The sub-figure layout shared by Figures 13, 14, and 15: given one
/// x-axis (query size or result size) and per-mechanism aggregates,
/// render the five sub-tables (a)–(e).
pub(crate) fn print_abcde(
    figure: &str,
    x_label: &str,
    xs: &[usize],
    // agg[x][mechanism]
    agg: &[[AggregateMetrics; 4]],
    notes: &[&str],
) {
    let mech_names: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();

    let mut a = Table::new(
        format!("{figure}(a) Average # entries read per term"),
        &[x_label, "List Length", "TNRA", "TRA"],
    );
    for (i, &x) in xs.iter().enumerate() {
        a.row(vec![
            x.to_string(),
            format!("{:.1}", agg[i][2].mean_list_len),
            format!("{:.1}", agg[i][2].mean_entries_read),
            format!("{:.1}", agg[i][0].mean_entries_read),
        ]);
    }
    a.print();

    let mut b = Table::new(
        format!("{figure}(b) % of inverted list read"),
        &[x_label, "TNRA", "TRA"],
    );
    for (i, &x) in xs.iter().enumerate() {
        b.row(vec![
            x.to_string(),
            format!("{:.1}", agg[i][2].mean_pct_read),
            format!("{:.1}", agg[i][0].mean_pct_read),
        ]);
    }
    b.print();

    let mut c = Table::new(
        format!("{figure}(c) Simulated I/O time"),
        &[&[x_label], mech_names.as_slice()].concat(),
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        row.extend((0..4).map(|m| fmt_secs(agg[i][m].mean_io_secs)));
        c.row(row);
    }
    c.print();

    let mut d = Table::new(
        format!("{figure}(d) VO size"),
        &[&[x_label], mech_names.as_slice()].concat(),
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        row.extend((0..4).map(|m| fmt_bytes(agg[i][m].mean_vo_bytes)));
        d.row(row);
    }
    d.print();

    let mut e = Table::new(
        format!("{figure}(e) User verification CPU time"),
        &[&[x_label], mech_names.as_slice()].concat(),
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        row.extend((0..4).map(|m| fmt_secs(agg[i][m].mean_verify_secs)));
        e.row(row);
    }
    for note in notes {
        e.note(*note);
    }
    e.print();
}

/// Collect aggregates for all four mechanisms at one data point.
pub(crate) fn all_mechanisms(
    wb: &mut Workbench,
    queries: &[Vec<authsearch_corpus::TermId>],
    r: usize,
) -> [AggregateMetrics; 4] {
    let corpus = wb.corpus.clone();
    let disk = wb.disk;
    let mut out = [AggregateMetrics::default(); 4];
    for (i, mechanism) in Mechanism::ALL.into_iter().enumerate() {
        let (auth, params) = wb.auth(mechanism);
        out[i] = crate::runner::run_workload(auth, params, &corpus, &disk, queries, r);
    }
    out
}
