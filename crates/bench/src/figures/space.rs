//! §4.1 storage overheads: authentication space per mechanism, plus the
//! §3.4 dictionary-MHT ablation.

use crate::tables::{fmt_bytes, Table};
use crate::Workbench;
use authsearch_core::{AuthConfig, Mechanism};

/// Print the storage report table.
pub fn run(wb: &mut Workbench) {
    println!("\n#### §4.1 — authentication storage overheads ####");
    let contents_bytes: u64 = (0..wb.corpus.num_docs() as u32)
        .map(|d| wb.corpus.content_bytes(d).len() as u64)
        .sum();

    let mut t = Table::new(
        "Authentication space",
        &[
            "mechanism",
            "plain index",
            "collection",
            "term auth",
            "doc auth",
            "extra vs index",
            "extra vs total",
        ],
    );
    for mechanism in Mechanism::ALL {
        let (auth, _) = wb.auth(mechanism);
        let report = auth.space_report(contents_bytes);
        t.row(vec![
            mechanism.name().to_string(),
            fmt_bytes(report.plain_index_bytes as f64),
            fmt_bytes(report.contents_bytes as f64),
            fmt_bytes(report.term_auth_bytes as f64),
            fmt_bytes(report.doc_auth_bytes as f64),
            format!("{:.1}%", report.overhead_vs_index_pct()),
            format!("{:.1}%", report.overhead_vs_total_pct()),
        ]);
    }
    // §3.4 ablation: one dictionary-MHT signature instead of per-list.
    let config = AuthConfig {
        key_bits: wb.scale.key_bits,
        dict_mht: true,
        ..AuthConfig::new(Mechanism::TnraCmht)
    };
    let (auth, _) = wb.build_auth(config);
    let report = auth.space_report(contents_bytes);
    t.row(vec![
        "TNRA-CMHT+dictMHT".to_string(),
        fmt_bytes(report.plain_index_bytes as f64),
        fmt_bytes(report.contents_bytes as f64),
        fmt_bytes(report.term_auth_bytes as f64),
        fmt_bytes(report.doc_auth_bytes as f64),
        format!("{:.1}%", report.overhead_vs_index_pct()),
        format!("{:.1}%", report.overhead_vs_total_pct()),
    ]);
    t.note(
        "paper: TNRA needs <1% extra space over the plain index; TRA ~25% \
         (document-MHTs). Shape: TRA >> TNRA; the dictionary-MHT removes \
         almost all per-list signature space.",
    );
    t.print();
}
