//! §4.1 storage overheads: authentication space per mechanism, plus the
//! §3.4 dictionary-MHT ablation.
//!
//! The "serve cache" column is this reproduction's extension: worst-case
//! engine RAM held by the materialized-structure cache (PR 1). The
//! paper's storage model (`serve_cache: false`) holds zero — both modes
//! store the same bytes on disk.

use crate::tables::{fmt_bytes, Table};
use crate::Workbench;
use authsearch_core::{AuthConfig, Mechanism};

/// Print the storage report table.
pub fn run(wb: &mut Workbench) {
    println!("\n#### §4.1 — authentication storage overheads ####");
    let contents_bytes: u64 = (0..wb.corpus.num_docs() as u32)
        .map(|d| wb.corpus.content_bytes(d).len() as u64)
        .sum();

    let mut t = Table::new(
        "Authentication space",
        &[
            "mechanism",
            "plain index",
            "collection",
            "term auth",
            "doc auth",
            "serve cache",
            "extra vs index",
            "extra vs total",
        ],
    );
    let mut row = |name: String, report: &authsearch_core::auth::space::SpaceReport| {
        t.row(vec![
            name,
            fmt_bytes(report.plain_index_bytes as f64),
            fmt_bytes(report.contents_bytes as f64),
            fmt_bytes(report.term_auth_bytes as f64),
            fmt_bytes(report.doc_auth_bytes as f64),
            fmt_bytes(report.cache_resident_bytes as f64),
            format!("{:.1}%", report.overhead_vs_index_pct()),
            format!("{:.1}%", report.overhead_vs_total_pct()),
        ]);
    };
    // The memoized Workbench auths run in paper mode (so the timing
    // figures stay comparable to the paper); their rows therefore show
    // 0 serve-cache residency.
    for mechanism in Mechanism::ALL {
        let (auth, _) = wb.auth(mechanism);
        let report = auth.space_report(contents_bytes);
        row(mechanism.name().to_string(), &report);
    }
    // §3.4 ablation: one dictionary-MHT signature instead of per-list.
    let dict_config = AuthConfig {
        key_bits: wb.scale.key_bits,
        dict_mht: true,
        ..AuthConfig::new(Mechanism::TnraCmht)
    };
    let (auth, _) = wb.build_auth(dict_config);
    row(
        "TNRA-CMHT+dictMHT".to_string(),
        &auth.space_report(contents_bytes),
    );
    // Cached serving mode (PR 1): identical disk bytes, plus worst-case
    // engine RAM for the materialized structures. One row per family —
    // TRA-MHT is the residency-heaviest, TNRA-CMHT the paper's pick.
    for mechanism in [Mechanism::TraMht, Mechanism::TnraCmht] {
        let cached_config = AuthConfig {
            key_bits: wb.scale.key_bits,
            serve_cache: true,
            ..AuthConfig::new(mechanism)
        };
        let (auth, _) = wb.build_auth(cached_config);
        row(
            format!("{} (cached)", mechanism.name()),
            &auth.space_report(contents_bytes),
        );
    }
    t.note(
        "paper: TNRA needs <1% extra space over the plain index; TRA ~25% \
         (document-MHTs). Shape: TRA >> TNRA; the dictionary-MHT removes \
         almost all per-list signature space. 'serve cache' is worst-case \
         engine RAM for the PR 1 structure cache ('(cached)' rows; disk \
         bytes identical; 0 under the paper's regenerate-from-leaves \
         model used by the timing figures).",
    );
    t.print();
}
