//! Table 2: breakdown of TRA's VO into data bytes vs digest bytes, for
//! the plain-MHT and chain-MHT (+ buddy inclusion) variants.

use crate::runner::run_workload;
use crate::tables::Table;
use crate::Workbench;
use authsearch_core::Mechanism;

/// The paper's query-size rows.
pub const QUERY_SIZES: [usize; 10] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20];

/// Paper's published percentages, for side-by-side comparison
/// (`(qsize, MHT data %, CMHT data %)`).
pub const PAPER_DATA_PCT: [(usize, f64, f64); 10] = [
    (2, 6.0, 22.0),
    (4, 8.0, 28.0),
    (6, 9.0, 31.0),
    (8, 10.0, 34.0),
    (10, 11.0, 36.0),
    (12, 12.0, 38.0),
    (14, 12.0, 40.0),
    (16, 13.0, 41.0),
    (18, 13.0, 42.0),
    (20, 14.0, 43.0),
];

/// Run the sweep and print the table.
pub fn run(wb: &mut Workbench) {
    println!(
        "\n#### Table 2 — VO composition of the TRA variants ({} queries/point, r = 10) ####",
        wb.scale.queries
    );
    let corpus = wb.corpus.clone();
    let disk = wb.disk;
    let mut t = Table::new(
        "Table 2: Breakdown of VO size (TRA)",
        &[
            "qsize",
            "MHT data%",
            "MHT digest%",
            "CMHT data%",
            "CMHT digest%",
            "paper MHT data%",
            "paper CMHT data%",
        ],
    );
    for (i, &qsize) in QUERY_SIZES.iter().enumerate() {
        let queries = wb.synthetic_queries(qsize, 200 + i as u64);
        let (auth, params) = wb.auth(Mechanism::TraMht);
        let mht = run_workload(auth, params, &corpus, &disk, &queries, 10);
        let (auth, params) = wb.auth(Mechanism::TraCmht);
        let cmht = run_workload(auth, params, &corpus, &disk, &queries, 10);
        let pct = |data: f64, digest: f64| 100.0 * data / (data + digest).max(1.0);
        let (_, paper_mht, paper_cmht) = PAPER_DATA_PCT[i];
        t.row(vec![
            qsize.to_string(),
            format!("{:.0}", pct(mht.mean_vo_data, mht.mean_vo_digest)),
            format!("{:.0}", 100.0 - pct(mht.mean_vo_data, mht.mean_vo_digest)),
            format!("{:.0}", pct(cmht.mean_vo_data, cmht.mean_vo_digest)),
            format!("{:.0}", 100.0 - pct(cmht.mean_vo_data, cmht.mean_vo_digest)),
            format!("{paper_mht:.0}"),
            format!("{paper_cmht:.0}"),
        ]);
    }
    t.note("paper: chain-MHT + buddy inclusion shift the VO towards data, cutting it ~30%");
    t.print();
}
