//! Figures 6 and 11: the worked example's execution traces, regenerated.

use authsearch_core::access::{IndexLists, TableFreqs};
use authsearch_core::toy::{toy_index, toy_query, TOY_TERMS};
use authsearch_core::types::DocTable;
use authsearch_core::{tnra, tra};

use crate::tables::Table;

/// Print both traces.
pub fn run() {
    let index = toy_index();
    let table = DocTable::from_index(&index);
    let query = toy_query();
    let lists = IndexLists::new(&index, &query);
    let freqs = TableFreqs::new(&table, &query);
    let term_name = |i: usize| TOY_TERMS[query.terms[i].term as usize];

    println!("\n#### Figures 6 & 11 — \"sleeps in the dark\", top r = 2 ####");

    let (outcome, trace) = tra::run_traced(&lists, &freqs, &query, 2).unwrap();
    let mut t = Table::new("Figure 6: TRA trace", &["iter", "thres", "pop entry", "R"]);
    for (i, row) in trace.iter().enumerate() {
        let pop = match row.popped {
            Some((list, doc, w)) => format!("<{doc}, {w:.3}> for '{}'", term_name(list)),
            None => "terminate".to_string(),
        };
        let r: Vec<String> = row
            .result
            .iter()
            .map(|e| format!("<{}, {:.3}>", e.doc, e.score))
            .collect();
        t.row(vec![
            (i + 1).to_string(),
            format!("{:.4}", row.thres),
            pop,
            format!("[{}]", r.join(", ")),
        ]);
    }
    t.note(format!(
        "result: {:?}  (paper: [<6, 0.750>, <5, 0.416>])",
        outcome
            .result
            .entries
            .iter()
            .map(|e| format!("<{}, {:.3}>", e.doc, e.score))
            .collect::<Vec<_>>()
    ));
    t.print();

    let (outcome, trace) = tnra::run_traced(&lists, &query, 2).unwrap();
    let mut t = Table::new(
        "Figure 11: TNRA trace",
        &["iter", "thres", "pop entry", "R (doc, SLB, SUB)"],
    );
    for (i, row) in trace.iter().enumerate() {
        let pop = match row.popped {
            Some((list, doc, w)) => format!("<{doc}, {w:.3}> for '{}'", term_name(list)),
            None => "terminate".to_string(),
        };
        let r: Vec<String> = row
            .bounds
            .iter()
            .map(|&(d, lb, ub)| format!("<{d}, {lb:.3}, {ub:.3}>"))
            .collect();
        t.row(vec![
            (i + 1).to_string(),
            format!("{:.3}", row.thres),
            pop,
            format!("[{}]", r.join(", ")),
        ]);
    }
    t.note(format!(
        "result: {:?}  (paper: [<6, 0.750>, <5, 0.416>]; TNRA terminates in 9 \
         iterations where TRA needs 6)",
        outcome
            .result
            .entries
            .iter()
            .map(|e| format!("<{}, {:.3}>", e.doc, e.score))
            .collect::<Vec<_>>()
    ));
    t.print();
}
