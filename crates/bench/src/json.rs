//! Minimal hand-rolled JSON emitter for the perf-trajectory binaries
//! (`bench_pr1`, `bench_pr2`), which must run without dev-dependencies
//! and emit machine-readable `BENCH_PR<n>.json` files.
//!
//! Deliberately tiny: the writer emits exactly the shapes the bench
//! binaries need (objects of pre-formatted scalar fields), with the
//! caller responsible for quoting string values.

use std::fmt::Write as _;

/// Incremental writer for a single JSON object.
pub struct Json {
    buf: String,
}

impl Default for Json {
    fn default() -> Self {
        Json::new()
    }
}

impl Json {
    /// Start the root object.
    pub fn new() -> Json {
        Json {
            buf: String::from("{\n"),
        }
    }

    /// Emit one `"key": value` line. `value` is written verbatim —
    /// pre-format numbers and quote strings at the call site.
    pub fn field(&mut self, indent: usize, key: &str, value: &str, last: bool) {
        let pad = "  ".repeat(indent);
        let comma = if last { "" } else { "," };
        writeln!(self.buf, "{pad}\"{key}\": {value}{comma}").unwrap();
    }

    /// Open a nested object.
    pub fn open(&mut self, indent: usize, key: &str) {
        let pad = "  ".repeat(indent);
        writeln!(self.buf, "{pad}\"{key}\": {{").unwrap();
    }

    /// Close the innermost object.
    pub fn close(&mut self, indent: usize, last: bool) {
        let pad = "  ".repeat(indent);
        let comma = if last { "" } else { "," };
        writeln!(self.buf, "{pad}}}{comma}").unwrap();
    }

    /// Close the root object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf.push('\n');
        self.buf
    }
}

/// Format a float with the fixed precision the trajectory files use.
pub fn num(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_nested_object() {
        let mut j = Json::new();
        j.field(1, "pr", "2", false);
        j.open(1, "inner");
        j.field(2, "x", &num(1.5), true);
        j.close(1, true);
        let out = j.finish();
        assert_eq!(
            out,
            "{\n  \"pr\": 2,\n  \"inner\": {\n    \"x\": 1.500\n  }\n}\n"
        );
    }
}
