//! # authsearch-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§4). Each `bin/` target reproduces one artifact:
//!
//! | target   | artifact |
//! |----------|----------|
//! | `fig04`  | Figure 4 — inverted-list length CDF of the WSJ corpus |
//! | `fig13`  | Figure 13(a–e) — synthetic workload vs query size |
//! | `fig14`  | Figure 14(a–e) — synthetic workload vs result size |
//! | `fig15`  | Figure 15(a–e) — TREC workload vs result size |
//! | `table2` | Table 2 — VO data/digest breakdown, MHT vs CMHT |
//! | `trace`  | Figures 6 & 11 — the worked example's traces |
//! | `space`  | §4.1 — storage overheads of the four mechanisms |
//! | `all`    | everything above, in order |
//! | `bench_pr1` | perf trajectory — Montgomery arithmetic + serve cache (`BENCH_PR1.json`) |
//! | `bench_pr2` | perf trajectory — parallel owner build scaling (`BENCH_PR2.json`) |
//!
//! All binaries accept `--scale <frac>` (default 0.12 ≈ 20k documents),
//! `--full` (paper scale, n = 172,961), `--queries <n>` (workload size,
//! default 200; the paper uses 1000) and `--key-bits <b>` (default 1024
//! as in Table 1).

pub mod figures;
pub mod json;
pub mod runner;
pub mod scale;
pub mod tables;

pub use runner::{AggregateMetrics, Workbench};
pub use scale::Scale;
pub use tables::Table;
