//! Shared experiment scaffolding: corpus/index caching, per-mechanism
//! authenticated-index construction, and workload aggregation.

use crate::scale::Scale;
use authsearch_core::vo::VoSize;
use authsearch_core::{measure, AuthConfig, AuthenticatedIndex, Mechanism, Query, VerifierParams};
use authsearch_corpus::{Corpus, SyntheticConfig, TermId};
use authsearch_crypto::keys::cached_keypair;
use authsearch_index::{build_index, persist, DiskModel, InvertedIndex, OkapiParams};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// A loaded experiment environment: the WSJ-scale corpus, its index, the
/// simulated disk, and lazily built authenticated indexes per mechanism.
pub struct Workbench {
    /// Scale this bench was created at.
    pub scale: Scale,
    /// The synthetic WSJ-like corpus.
    pub corpus: Corpus,
    /// The plain inverted index.
    pub index: InvertedIndex,
    /// The simulated testbed disk.
    pub disk: DiskModel,
    auths: HashMap<Mechanism, (AuthenticatedIndex, VerifierParams)>,
}

impl Workbench {
    /// Build (or load from the on-disk cache) the corpus and index.
    pub fn new(scale: Scale) -> Workbench {
        let cache = cache_dir();
        std::fs::create_dir_all(&cache).ok();
        let tag = format!("wsj_{:.4}", scale.frac);
        let corpus_path = cache.join(format!("{tag}.corpus"));
        let index_path = cache.join(format!("{tag}.index"));

        let corpus = match persist::load_corpus(&corpus_path) {
            Ok(c) => c,
            Err(_) => {
                let t = Instant::now();
                eprintln!(
                    "[bench] generating WSJ-like corpus at scale {:.4} ({} docs)…",
                    scale.frac,
                    scale.num_docs()
                );
                let c = SyntheticConfig::wsj(scale.frac).generate();
                eprintln!("[bench] generated in {:.1?}; caching", t.elapsed());
                persist::save_corpus(&corpus_path, &c).ok();
                c
            }
        };
        let index = match persist::load_index(&index_path) {
            Ok(i) => i,
            Err(_) => {
                let t = Instant::now();
                eprintln!("[bench] building inverted index…");
                let i = build_index(&corpus, OkapiParams::default());
                eprintln!(
                    "[bench] indexed {} postings over {} terms in {:.1?}",
                    i.total_entries(),
                    i.num_terms(),
                    t.elapsed()
                );
                persist::save_index(&index_path, &i).ok();
                i
            }
        };

        Workbench {
            scale,
            corpus,
            index,
            disk: DiskModel::seagate_st973401kc(),
            auths: HashMap::new(),
        }
    }

    /// The authenticated index for a mechanism (built and memoized on
    /// first use — key generation is cached process-wide, signatures are
    /// the bulk of the cost).
    pub fn auth(&mut self, mechanism: Mechanism) -> (&AuthenticatedIndex, &VerifierParams) {
        if !self.auths.contains_key(&mechanism) {
            let config = AuthConfig {
                key_bits: self.scale.key_bits,
                // Figures 13–15 time the paper's regenerate-from-leaves
                // storage model; the serve cache (PR 1) would make the
                // reported CPU times incomparable to the paper's. The
                // cache's own numbers live in BENCH_PR1.json and the
                // serve_cached_vs_uncached criterion bench.
                serve_cache: false,
                ..AuthConfig::new(mechanism)
            };
            let built = self.build_auth(config);
            self.auths.insert(mechanism, built);
        }
        let (a, p) = self.auths.get(&mechanism).expect("just inserted");
        (a, p)
    }

    /// Build an authenticated index for an arbitrary configuration
    /// (ablations); not memoized.
    pub fn build_auth(&self, config: AuthConfig) -> (AuthenticatedIndex, VerifierParams) {
        let t = Instant::now();
        eprintln!(
            "[bench] signing authentication structures for {}…",
            config.mechanism.name()
        );
        let key = cached_keypair(config.key_bits);
        let auth = AuthenticatedIndex::build(self.index.clone(), &key, config, &self.corpus);
        eprintln!(
            "[bench] {} ready in {:.1?}",
            config.mechanism.name(),
            t.elapsed()
        );
        let params = VerifierParams {
            public_key: key.public_key().clone(),
            layout: config.layout,
            mechanism: config.mechanism,
            num_docs: self.index.num_docs(),
            okapi: self.index.params(),
        };
        (auth, params)
    }

    /// Synthetic workload: `scale.queries` queries of `qsize` uniform
    /// dictionary terms (the paper's first workload).
    pub fn synthetic_queries(&self, qsize: usize, seed: u64) -> Vec<Vec<TermId>> {
        authsearch_corpus::workload::synthetic(
            self.index.num_terms(),
            self.scale.queries,
            qsize,
            seed,
        )
    }

    /// TREC-like workload: `n` natural-language-shaped queries
    /// (2–20 terms with common words; the paper's second workload).
    pub fn trec_queries(&self, n: usize, seed: u64) -> Vec<Vec<TermId>> {
        authsearch_corpus::workload::trec_like(self.index.document_frequencies(), n, 0.35, seed)
    }
}

fn cache_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("authsearch-cache")
}

/// Averaged metrics over a workload — one data point of a figure.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateMetrics {
    /// Number of queries aggregated.
    pub queries: usize,
    /// Figure (a): mean entries read per queried list.
    pub mean_entries_read: f64,
    /// The "List Length" baseline of figure (a).
    pub mean_list_len: f64,
    /// Figure (b): mean % of each queried list read.
    pub mean_pct_read: f64,
    /// Figure (c): mean simulated engine I/O seconds.
    pub mean_io_secs: f64,
    /// Figure (d): mean VO size in bytes.
    pub mean_vo_bytes: f64,
    /// Table 2: mean VO data bytes.
    pub mean_vo_data: f64,
    /// Table 2: mean VO digest bytes.
    pub mean_vo_digest: f64,
    /// Mean VO signature bytes.
    pub mean_vo_sig: f64,
    /// Figure (e): mean user verification seconds (wall clock).
    pub mean_verify_secs: f64,
    /// Mean engine processing + VO construction seconds (wall clock).
    pub mean_process_secs: f64,
}

/// Run a workload through one authenticated index, verifying every
/// response, and average the metrics.
pub fn run_workload(
    auth: &AuthenticatedIndex,
    params: &VerifierParams,
    corpus: &Corpus,
    disk: &DiskModel,
    queries: &[Vec<TermId>],
    r: usize,
) -> AggregateMetrics {
    let mut agg = AggregateMetrics::default();
    let mut vo_total = VoSize::default();
    for terms in queries {
        let query = Query::from_term_ids(auth.index(), terms);
        let m = measure(auth, params, &query, r, corpus, disk)
            .unwrap_or_else(|e| panic!("honest query failed verification: {e}"));
        agg.queries += 1;
        agg.mean_entries_read += m.mean_entries_read();
        agg.mean_list_len += m.mean_list_len();
        agg.mean_pct_read += m.mean_pct_read();
        agg.mean_io_secs += m.io_secs;
        vo_total = vo_total + m.vo_size;
        agg.mean_verify_secs += m.verify_time.as_secs_f64();
        agg.mean_process_secs += m.process_time.as_secs_f64();
    }
    let n = agg.queries.max(1) as f64;
    agg.mean_entries_read /= n;
    agg.mean_list_len /= n;
    agg.mean_pct_read /= n;
    agg.mean_io_secs /= n;
    agg.mean_vo_bytes = vo_total.total() as f64 / n;
    agg.mean_vo_data = vo_total.data as f64 / n;
    agg.mean_vo_digest = vo_total.digest as f64 / n;
    agg.mean_vo_sig = vo_total.signature as f64 / n;
    agg.mean_verify_secs /= n;
    agg.mean_process_secs /= n;
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    #[test]
    fn workbench_tiny_end_to_end() {
        // A miniature full pipeline through the harness itself.
        let scale = Scale {
            frac: 0.001, // ~173 documents
            queries: 3,
            key_bits: TEST_KEY_BITS,
        };
        let mut wb = Workbench::new(scale);
        assert!(wb.corpus.num_docs() >= 100);
        let queries = wb.synthetic_queries(3, 1);
        assert_eq!(queries.len(), 3);
        let disk = wb.disk;
        let corpus = wb.corpus.clone();
        let (auth, params) = wb.auth(Mechanism::TnraCmht);
        let agg = run_workload(auth, params, &corpus, &disk, &queries, 10);
        assert_eq!(agg.queries, 3);
        assert!(agg.mean_entries_read > 0.0);
        assert!(agg.mean_vo_bytes > 0.0);
        assert!(agg.mean_io_secs > 0.0);
    }

    #[test]
    fn trec_queries_have_published_lengths() {
        let scale = Scale {
            frac: 0.001,
            queries: 5,
            key_bits: TEST_KEY_BITS,
        };
        let wb = Workbench::new(scale);
        for q in wb.trec_queries(20, 2) {
            assert!((2..=20).contains(&q.len()));
        }
    }
}
