//! Command-line scale configuration shared by all figure binaries.

use authsearch_crypto::keys::PAPER_KEY_BITS;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the WSJ corpus (1.0 = the paper's n = 172,961).
    pub frac: f64,
    /// Queries per workload data point (the paper uses 1000 synthetic /
    /// 100 TREC).
    pub queries: usize,
    /// RSA modulus size (paper: 1024).
    pub key_bits: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            frac: 0.12,
            queries: 200,
            key_bits: PAPER_KEY_BITS,
        }
    }
}

impl Scale {
    /// Parse `--scale <f> | --full | --queries <n> | --key-bits <b>` from
    /// the process arguments; unknown flags abort with usage help.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            eprintln!("usage: [--scale <frac>] [--full] [--queries <n>] [--key-bits <b>]");
            std::process::exit(2);
        })
    }

    /// Parse from an argument slice (testable core of [`Scale::from_args`]).
    pub fn parse(args: &[String]) -> Result<Scale, String> {
        let mut scale = Scale::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => scale.frac = 1.0,
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    scale.frac = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad --scale value {v}"))?;
                    if !(scale.frac > 0.0 && scale.frac <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {v}"));
                    }
                }
                "--queries" => {
                    let v = it.next().ok_or("--queries needs a value")?;
                    scale.queries = v
                        .parse::<usize>()
                        .map_err(|_| format!("bad --queries value {v}"))?;
                    if scale.queries == 0 {
                        return Err("--queries must be positive".into());
                    }
                }
                "--key-bits" => {
                    let v = it.next().ok_or("--key-bits needs a value")?;
                    scale.key_bits = v
                        .parse::<usize>()
                        .map_err(|_| format!("bad --key-bits value {v}"))?;
                    if scale.key_bits < 384 {
                        return Err("--key-bits must be at least 384".into());
                    }
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(scale)
    }

    /// Number of documents at this scale.
    pub fn num_docs(&self) -> usize {
        (authsearch_corpus::synthetic::WSJ_NUM_DOCS as f64 * self.frac).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Result<Scale, String> {
        let owned: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        Scale::parse(&owned)
    }

    #[test]
    fn defaults() {
        let scale = s(&[]).unwrap();
        assert_eq!(scale, Scale::default());
    }

    #[test]
    fn full_flag() {
        assert_eq!(s(&["--full"]).unwrap().frac, 1.0);
        assert_eq!(s(&["--full"]).unwrap().num_docs(), 172_961);
    }

    #[test]
    fn explicit_values() {
        let scale = s(&["--scale", "0.5", "--queries", "50", "--key-bits", "512"]).unwrap();
        assert_eq!(scale.frac, 0.5);
        assert_eq!(scale.queries, 50);
        assert_eq!(scale.key_bits, 512);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(s(&["--scale"]).is_err());
        assert!(s(&["--scale", "2.0"]).is_err());
        assert!(s(&["--scale", "zero"]).is_err());
        assert!(s(&["--queries", "0"]).is_err());
        assert!(s(&["--key-bits", "128"]).is_err());
        assert!(s(&["--bogus"]).is_err());
    }
}
