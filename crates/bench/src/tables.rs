//! Plain-text table rendering for the figure binaries.

/// A fixed-width text table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row (cells already formatted).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Append an annotation printed under the table (e.g. the paper's
    /// corresponding claim).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Table {
        self.notes.push(note.into());
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds adaptively (s / ms / µs).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

/// Format bytes adaptively (B / KB / MB).
pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1048576.0 {
        format!("{:.2} MB", bytes / 1048576.0)
    } else if bytes >= 1024.0 {
        format!("{:.2} KB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "10.0".into()]);
        t.row(vec!["200".into(), "7".into()]);
        t.note("paper says x");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: paper says x"));
        // Right-aligned: the '200' row starts at the same width as header.
        assert!(s.lines().any(|l| l.trim_start().starts_with("200")));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0021), "2.10 ms");
        assert_eq!(fmt_secs(0.0000005), "0.5 µs");
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KB");
        assert_eq!(fmt_bytes(3.0 * 1048576.0), "3.00 MB");
    }
}
