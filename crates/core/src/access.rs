//! Data-access abstractions shared by the search engine and the verifier.
//!
//! The query-processing algorithms (TRA / TNRA) are written against these
//! traits so the *same deterministic code path* runs in two places:
//!
//! * at the **search engine**, over the full inverted index and document
//!   table;
//! * at the **user**, replaying the algorithm over the authenticated list
//!   prefixes and frequencies carried by the VO. If the replay ever needs
//!   an entry the VO does not substantiate, the access fails and the
//!   result is rejected.
//!
//! Determinism of the algorithms plus authenticity of the inputs is what
//! turns a successful replay into a proof of the correctness criteria.

use crate::types::{DocTable, Query};
use authsearch_corpus::{DocId, TermId};
use authsearch_index::{ImpactEntry, InvertedIndex};
use std::fmt;

/// Error raised when a data source cannot substantiate an access — at the
/// engine this is impossible; at the verifier it means the VO is
/// insufficient or inconsistent, and the result must be rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessError {
    /// Human-readable description of what was missing.
    pub what: String,
}

impl AccessError {
    /// Convenience constructor.
    pub fn new(what: impl Into<String>) -> AccessError {
        AccessError { what: what.into() }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data access failed: {}", self.what)
    }
}

impl std::error::Error for AccessError {}

/// Read access to the inverted lists of the query terms, indexed by
/// position within the query (0..q).
pub trait ListAccess {
    /// True length `l_i` of query term `i`'s inverted list (from the
    /// dictionary at the engine; from the signed `f_t` at the verifier).
    fn list_len(&self, i: usize) -> usize;

    /// Entry at `pos` of query term `i`'s list. `Ok(None)` past the end of
    /// the list; `Err` when the entry exists but the source cannot supply
    /// it (VO too short).
    fn entry(&self, i: usize, pos: usize) -> Result<Option<ImpactEntry>, AccessError>;
}

/// Random access to document-side weights `w_{d, t_i}` for query term `i`
/// (the paper's document-MHT fetch).
pub trait FreqAccess {
    /// `w_{d, t_i}`; `Err` when the source cannot substantiate the value.
    fn weight(&self, d: DocId, i: usize) -> Result<f32, AccessError>;
}

/// Engine-side [`ListAccess`]: the full inverted index.
pub struct IndexLists<'a> {
    index: &'a InvertedIndex,
    terms: Vec<TermId>,
}

impl<'a> IndexLists<'a> {
    /// View of the index restricted to a query's terms.
    pub fn new(index: &'a InvertedIndex, query: &Query) -> Self {
        IndexLists {
            index,
            terms: query.terms.iter().map(|t| t.term).collect(),
        }
    }
}

impl ListAccess for IndexLists<'_> {
    fn list_len(&self, i: usize) -> usize {
        self.index.list(self.terms[i]).len()
    }

    fn entry(&self, i: usize, pos: usize) -> Result<Option<ImpactEntry>, AccessError> {
        let list = self.index.list(self.terms[i]);
        Ok(list.entries().get(pos).copied())
    }
}

/// Engine-side [`FreqAccess`]: the document table.
pub struct TableFreqs<'a> {
    table: &'a DocTable,
    terms: Vec<TermId>,
}

impl<'a> TableFreqs<'a> {
    /// View of the document table restricted to a query's terms.
    pub fn new(table: &'a DocTable, query: &Query) -> Self {
        TableFreqs {
            table,
            terms: query.terms.iter().map(|t| t.term).collect(),
        }
    }
}

impl FreqAccess for TableFreqs<'_> {
    fn weight(&self, d: DocId, i: usize) -> Result<f32, AccessError> {
        Ok(self.table.weight(d, self.terms[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_index::{build_index, OkapiParams};

    #[test]
    fn index_lists_expose_query_term_lists() {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("apple banana")
            .add_text("apple cherry")
            .build();
        let index = build_index(&corpus, OkapiParams::default());
        let apple = corpus.term_id("apple").unwrap();
        let banana = corpus.term_id("banana").unwrap();
        let q = Query::from_term_ids(&index, &[banana, apple]);
        let lists = IndexLists::new(&index, &q);
        assert_eq!(lists.list_len(0), 1); // banana
        assert_eq!(lists.list_len(1), 2); // apple
        assert!(lists.entry(1, 0).unwrap().is_some());
        assert!(lists.entry(1, 2).unwrap().is_none()); // past end
    }

    #[test]
    fn table_freqs_match_doc_table() {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("apple banana")
            .add_text("apple cherry")
            .build();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        let apple = corpus.term_id("apple").unwrap();
        let q = Query::from_term_ids(&index, &[apple]);
        let freqs = TableFreqs::new(&table, &q);
        assert_eq!(freqs.weight(0, 0).unwrap(), table.weight(0, apple));
    }
}
