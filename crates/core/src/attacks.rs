//! Attack simulation: the threat model of §3.1.
//!
//! "The search engine may alter the document collection or the inverted
//! index, it may execute the query processing algorithm incorrectly, or
//! it may tamper with the search results." Each attack here mutates an
//! honest [`QueryResponse`] (or re-serves one from doctored processing
//! state) the way a compromised engine would, *including recomputing any
//! unsigned fields an intelligent attacker could fix up*. The attack
//! suite asserts that the verifier rejects every one of them.

use crate::auth::serve::QueryResponse;
use crate::auth::AuthenticatedIndex;
use crate::types::{ProcessingOutcome, Query, ResultEntry};
use crate::vo::PrefixData;
use authsearch_corpus::DocId;

/// The catalogue of simulated attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Incomplete result: silently drop the best-ranked document
    /// (the MicroPatent scenario: make a patent vanish).
    OmitTopResult,
    /// Altered ranking: swap ranks 1 and 2.
    SwapRanking,
    /// Altered ranking: report an inflated score for rank 1.
    InflateScore,
    /// Spurious result: inject a fabricated document at rank 1.
    InjectSpurious,
    /// Tamper with a frequency inside a TNRA list prefix.
    AlterPrefixWeight,
    /// Reorder two entries within a list prefix.
    ReorderPrefix,
    /// Flip a bit in a list signature.
    ForgeTermSignature,
    /// Lie about a list's f_t (shortening the claimed list).
    UnderstateListLength,
    /// TRA: tamper with a revealed document-MHT frequency.
    AlterDocFrequency,
    /// TRA: withhold the document proof of an encountered document.
    DropDocProof,
    /// TRA: substitute the content of a result document.
    TamperContent,
    /// Conjunctive: shorten a revealed list prefix, hiding the tail a
    /// complete intersection must account for (dropping a conjunct's
    /// evidence).
    DropConjunct,
    /// Conjunctive: report a silently narrowed intersection (drop the
    /// last member while keeping every proof intact).
    WrongIntersection,
    /// Conjunctive: smuggle a revealed-but-nonqualifying document into
    /// the reported intersection, with fabricated content.
    ExtraIntersectionDoc,
    /// Phrase (TRA): swap two adjacent words inside a delivered result
    /// document, breaking phrase order while preserving the word
    /// multiset — term frequencies are unchanged, so only the
    /// content-digest binding can catch it.
    PhraseOrderSwap,
}

impl Attack {
    /// Attacks applicable to every mechanism.
    pub const COMMON: [Attack; 8] = [
        Attack::OmitTopResult,
        Attack::SwapRanking,
        Attack::InflateScore,
        Attack::InjectSpurious,
        Attack::AlterPrefixWeight,
        Attack::ReorderPrefix,
        Attack::ForgeTermSignature,
        Attack::UnderstateListLength,
    ];

    /// Attacks specific to the TRA mechanisms (document-MHTs).
    pub const TRA_ONLY: [Attack; 3] = [
        Attack::AlterDocFrequency,
        Attack::DropDocProof,
        Attack::TamperContent,
    ];

    /// Attacks against the conjunctive / phrase query model
    /// ([`crate::types::QueryMode::Conjunctive`]). `PhraseOrderSwap`
    /// applies only to TRA responses (TNRA delivers no authenticated
    /// contents); the rest apply to every mechanism.
    pub const CONJUNCTIVE: [Attack; 4] = [
        Attack::DropConjunct,
        Attack::WrongIntersection,
        Attack::ExtraIntersectionDoc,
        Attack::PhraseOrderSwap,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Attack::OmitTopResult => "omit top result",
            Attack::SwapRanking => "swap ranking",
            Attack::InflateScore => "inflate score",
            Attack::InjectSpurious => "inject spurious document",
            Attack::AlterPrefixWeight => "alter prefix weight",
            Attack::ReorderPrefix => "reorder prefix",
            Attack::ForgeTermSignature => "forge list signature",
            Attack::UnderstateListLength => "understate list length",
            Attack::AlterDocFrequency => "alter document frequency",
            Attack::DropDocProof => "drop document proof",
            Attack::TamperContent => "tamper with document content",
            Attack::DropConjunct => "drop conjunct evidence",
            Attack::WrongIntersection => "narrow the intersection",
            Attack::ExtraIntersectionDoc => "widen the intersection",
            Attack::PhraseOrderSwap => "swap phrase word order",
        }
    }

    /// Apply the attack to an honest response. Returns `false` when the
    /// attack is not applicable to this response (e.g. too few results to
    /// swap, or a TRA-only attack against a TNRA response).
    pub fn apply(self, response: &mut QueryResponse) -> bool {
        match self {
            Attack::OmitTopResult => {
                if response.result.entries.is_empty() {
                    return false;
                }
                let gone = response.result.entries.remove(0);
                response.contents.retain(|(d, _)| *d != gone.doc);
                true
            }
            Attack::SwapRanking => {
                if response.result.entries.len() < 2 {
                    return false;
                }
                response.result.entries.swap(0, 1);
                response.contents.swap(0, 1);
                true
            }
            Attack::InflateScore => {
                let Some(first) = response.result.entries.first_mut() else {
                    return false;
                };
                first.score += 1.0;
                true
            }
            Attack::InjectSpurious => {
                let fake_doc: DocId = u32::MAX - 1;
                let score = response
                    .result
                    .entries
                    .first()
                    .map_or(1.0, |e| e.score + 0.5);
                response.result.entries.insert(
                    0,
                    ResultEntry {
                        doc: fake_doc,
                        score,
                    },
                );
                response
                    .contents
                    .insert(0, (fake_doc, b"fabricated patent".to_vec()));
                if !response.result.entries.is_empty() {
                    response.result.entries.pop();
                    if response.contents.len() > response.result.entries.len() {
                        response.contents.pop();
                    }
                }
                true
            }
            Attack::AlterPrefixWeight => {
                for tv in &mut response.vo.terms {
                    if let PrefixData::Entries(entries) = &mut tv.prefix {
                        if let Some(e) = entries.first_mut() {
                            e.weight *= 1.5;
                            return true;
                        }
                    }
                }
                false
            }
            Attack::ReorderPrefix => {
                for tv in &mut response.vo.terms {
                    match &mut tv.prefix {
                        PrefixData::Entries(entries) if entries.len() >= 2 => {
                            entries.swap(0, 1);
                            return true;
                        }
                        PrefixData::DocIds(ids) if ids.len() >= 2 => {
                            ids.swap(0, 1);
                            return true;
                        }
                        _ => {}
                    }
                }
                false
            }
            Attack::ForgeTermSignature => {
                for tv in &mut response.vo.terms {
                    if let Some(sig) = &mut tv.signature {
                        sig[0] ^= 0x40;
                        return true;
                    }
                }
                false
            }
            Attack::UnderstateListLength => {
                for tv in &mut response.vo.terms {
                    let prefix_len = u32::try_from(tv.prefix.len()).unwrap_or(u32::MAX);
                    if tv.ft > prefix_len {
                        tv.ft = prefix_len;
                        return true;
                    }
                }
                false
            }
            Attack::AlterDocFrequency => {
                for dv in &mut response.vo.docs {
                    if let Some(leaf) = dv.revealed.iter_mut().find(|l| l.2 > 0.0) {
                        leaf.2 *= 2.0;
                        return true;
                    }
                }
                false
            }
            Attack::DropDocProof => {
                if response.vo.docs.is_empty() {
                    return false;
                }
                response.vo.docs.remove(0);
                true
            }
            Attack::TamperContent => {
                let Some((_, bytes)) = response.contents.first_mut() else {
                    return false;
                };
                *bytes = b"this patent never existed".to_vec();
                true
            }
            Attack::DropConjunct => {
                // Pop the tail of the first non-empty revealed prefix:
                // the hidden entry is exactly the evidence a complete
                // intersection would have had to account for.
                for tv in &mut response.vo.terms {
                    match &mut tv.prefix {
                        PrefixData::Entries(entries) if !entries.is_empty() => {
                            entries.pop();
                            return true;
                        }
                        PrefixData::DocIds(ids) if !ids.is_empty() => {
                            ids.pop();
                            return true;
                        }
                        _ => {}
                    }
                }
                false
            }
            Attack::WrongIntersection => {
                // Too-narrow intersection: silently drop the *last*
                // member (OmitTopResult already covers the first) while
                // every proof stays untouched.
                let Some(gone) = response.result.entries.pop() else {
                    return false;
                };
                response.contents.retain(|(d, _)| *d != gone.doc);
                true
            }
            Attack::ExtraIntersectionDoc => {
                // Too-wide intersection: promote a document the VO
                // itself reveals (so its existence is plausible) but the
                // result excludes, appending fabricated content for it.
                let result_docs = response.result.docs();
                let revealed: Vec<DocId> = if response.vo.mechanism.is_tra() {
                    response.vo.docs.iter().map(|d| d.doc).collect()
                } else {
                    response
                        .vo
                        .terms
                        .iter()
                        .flat_map(|tv| match &tv.prefix {
                            PrefixData::Entries(entries) => {
                                entries.iter().map(|e| e.doc).collect::<Vec<_>>()
                            }
                            PrefixData::DocIds(ids) => ids.clone(),
                        })
                        .collect()
                };
                let Some(doc) = revealed.into_iter().find(|d| !result_docs.contains(d)) else {
                    return false;
                };
                let score = response
                    .result
                    .entries
                    .last()
                    .map_or(0.5, |e| e.score / 2.0);
                response.result.entries.push(ResultEntry { doc, score });
                response
                    .contents
                    .push((doc, b"smuggled into the intersection".to_vec()));
                true
            }
            Attack::PhraseOrderSwap => {
                // Word-order tampering is invisible to every frequency-
                // based proof; only TRA's content-digest binding is in a
                // position to catch it.
                if !response.vo.mechanism.is_tra() {
                    return false;
                }
                for (_, bytes) in &mut response.contents {
                    let mut words: Vec<String> = String::from_utf8_lossy(bytes)
                        .split_whitespace()
                        .map(str::to_owned)
                        .collect();
                    let Some(i) = words.windows(2).position(|w| w[0] != w[1]) else {
                        continue;
                    };
                    words.swap(i, i + 1);
                    *bytes = words.join(" ").into_bytes();
                    return true;
                }
                false
            }
        }
    }
}

/// A smarter attack that cannot be expressed as a response mutation: the
/// engine stops early (reads shorter prefixes than the algorithm
/// requires) but builds a perfectly well-formed VO for the shortened
/// prefixes, still reporting the honest result. The replay must detect
/// that the prefixes cannot substantiate the claimed result.
pub fn truncated_prefix_response<C: crate::auth::ContentProvider>(
    auth: &AuthenticatedIndex,
    query: &Query,
    r: usize,
    contents: &C,
) -> Option<QueryResponse> {
    let honest = auth.query(query, r, contents);
    // Shorten the longest prefix — past any buddy padding, which would
    // otherwise round the prefix back up and (correctly!) keep the VO
    // sufficient. Bail when every prefix is too short to truncate.
    let pad = if auth.config().buddy {
        crate::buddy::buddy_group_size(auth.config().term_leaf_bytes(), 16)
    } else {
        1
    };
    let (argmax, &len) = honest
        .entries_read
        .iter()
        .enumerate()
        .max_by_key(|&(_, &l)| l)?;
    if len <= pad {
        return None;
    }
    let mut prefix_lens = honest.entries_read.clone();
    prefix_lens[argmax] = len - pad;
    let outcome = ProcessingOutcome {
        result: honest.result.clone(),
        prefix_lens,
        encountered: honest.vo.docs.iter().map(|d| d.doc).collect(),
        iterations: 0,
    };
    Some(auth.respond(query, outcome, contents))
}

/// The conjunctive analogue of [`truncated_prefix_response`]: the engine
/// reveals one buddy group less than the conjunctive completeness bar
/// requires (the anchor list under TRA, the longest list under TNRA) but
/// re-derives a *perfectly well-formed* VO for the shortened reveal —
/// honest result, valid proofs, valid signatures. Only the
/// [`VerifyError::ConjunctIncomplete`](crate::verify::VerifyError)
/// completeness check stands between this response and acceptance.
///
/// Returns `None` when every revealed prefix is too short to shorten
/// further.
pub fn incomplete_conjunct_response<C: crate::auth::ContentProvider>(
    auth: &AuthenticatedIndex,
    query: &Query,
    r: usize,
    contents: &C,
) -> Option<QueryResponse> {
    let honest = auth.query_conjunctive(query, r, contents);
    // Shorten past the buddy padding, which would otherwise round the
    // reveal back up to the full list.
    let pad = if auth.config().buddy {
        crate::buddy::buddy_group_size(auth.config().term_leaf_bytes(), 16)
    } else {
        1
    };
    let (argmax, &len) = honest
        .entries_read
        .iter()
        .enumerate()
        .max_by_key(|&(_, &l)| l)?;
    if len <= pad {
        return None;
    }
    let mut prefix_lens = honest.entries_read.clone();
    prefix_lens[argmax] = len - pad;
    let outcome = ProcessingOutcome {
        result: honest.result.clone(),
        prefix_lens,
        encountered: honest.vo.docs.iter().map(|d| d.doc).collect(),
        iterations: 0,
    };
    Some(auth.respond(query, outcome, contents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    #[test]
    fn attack_names_unique() {
        let mut names: Vec<&str> = Attack::COMMON
            .iter()
            .chain(Attack::TRA_ONLY.iter())
            .chain(Attack::CONJUNCTIVE.iter())
            .map(|a| a.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn conjunctive_attacks_apply_to_toy_conjunctive_responses() {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        for mechanism in [Mechanism::TraMht, Mechanism::TnraCmht] {
            let config = AuthConfig {
                key_bits: TEST_KEY_BITS,
                ..AuthConfig::new(mechanism)
            };
            let publication =
                owner.publish_index(crate::toy::toy_index(), config, &crate::toy::toy_contents());
            let honest = publication.auth.query_conjunctive(
                &crate::toy::toy_query(),
                2,
                &crate::toy::toy_contents(),
            );
            for attack in Attack::CONJUNCTIVE {
                let mut copy = honest.clone();
                let applied = attack.apply(&mut copy);
                // Phrase tampering needs delivered contents → TRA only.
                // Widening needs a revealed non-result doc, which the toy
                // TRA anchor (exactly the one result doc) cannot offer.
                let expect = match attack {
                    Attack::PhraseOrderSwap => mechanism.is_tra(),
                    Attack::ExtraIntersectionDoc => !mechanism.is_tra(),
                    _ => true,
                };
                assert_eq!(applied, expect, "{mechanism:?}: {}", attack.name());
                if applied {
                    assert_ne!(
                        (&copy.vo, &copy.result, &copy.contents),
                        (&honest.vo, &honest.result, &honest.contents),
                        "{mechanism:?}: {} left the response unchanged",
                        attack.name()
                    );
                }
            }
        }
    }

    #[test]
    fn attacks_apply_to_toy_responses() {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraMht)
        };
        let publication =
            owner.publish_index(crate::toy::toy_index(), config, &crate::toy::toy_contents());
        let honest =
            publication
                .auth
                .query(&crate::toy::toy_query(), 2, &crate::toy::toy_contents());
        for attack in Attack::COMMON.iter().chain(Attack::TRA_ONLY.iter()) {
            let mut copy = honest.clone();
            let applied = attack.apply(&mut copy);
            // AlterPrefixWeight targets TNRA entries; everything else
            // must apply to a TRA response.
            if *attack != Attack::AlterPrefixWeight {
                assert!(applied, "{}", attack.name());
                assert_ne!(
                    format!("{:?}", copy.vo)
                        + &format!("{:?}", copy.result)
                        + &format!("{:?}", copy.contents),
                    format!("{:?}", honest.vo)
                        + &format!("{:?}", honest.result)
                        + &format!("{:?}", honest.contents),
                    "{} left the response unchanged",
                    attack.name()
                );
            }
        }
    }
}
