//! Engine-side structure cache (the VO-construction hot path).
//!
//! The paper's storage model ([13], §3.3.1) keeps only roots and leaves
//! on disk and regenerates every interior digest at query time; the seed
//! reproduction did exactly that, so each query rehashed entire term
//! structures — and, in dictionary-MHT mode, all `m` dictionary leaves.
//! This module gives [`AuthenticatedIndex`] a server-side cache:
//!
//! * the **dictionary-MHT** is materialized once at construction and
//!   reused by every query;
//! * **term structures** (term-MHTs / chain-MHTs) are materialized on
//!   first use and kept in a bounded, sharded LRU ([`ShardedLru`]) keyed
//!   by [`TermId`], so hot terms skip the leaf-layer rehash entirely and
//!   concurrent queries ([`AuthenticatedIndex::serve_batch`]) only
//!   contend when two lookups hash to the same shard.
//!
//! Proof **bit-compatibility** is the invariant: a cached structure is
//! the same `MerkleTree` / `ChainMht` value that a fresh build from the
//! stored leaves produces, so roots, proofs, and signatures are
//! byte-identical whether the cache is on ([`AuthConfig::serve_cache`])
//! or off (the paper's regenerate-from-leaves model, kept for the space
//! benchmarks — see [`super::space`]).
//!
//! The simulated disk trace is *not* affected by the cache: the I/O
//! metrics continue to model the paper's storage layout so Figures 13–15
//! remain comparable; the cache removes CPU (hashing) cost only.

use super::{doc_leaf_digest, term_leaves, AuthConfig, AuthenticatedIndex};
use crate::cache::ShardedLru;
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{ChainMht, Digest, MerkleTree};
use authsearch_index::InvertedList;
use std::sync::Arc;

/// A materialized per-term authentication structure.
#[derive(Debug, Clone)]
pub(crate) enum TermStructure {
    /// Plain term-MHT over the whole list.
    Mht(MerkleTree),
    /// Chain of per-block MHTs (§3.3.2).
    Cmht(ChainMht),
}

impl TermStructure {
    /// Build from a list's stored leaf layer — the single source of truth
    /// for both the cached and the regenerate-from-leaves paths.
    pub(crate) fn build(config: &AuthConfig, list: &InvertedList) -> TermStructure {
        let leaves = term_leaves(config.mechanism, list);
        if config.mechanism.is_cmht() {
            TermStructure::Cmht(ChainMht::build(leaves, config.chain_capacity()))
        } else {
            TermStructure::Mht(MerkleTree::from_leaf_digests(leaves))
        }
    }

    /// Root (MHT) or head (chain-MHT) digest.
    pub(crate) fn root(&self) -> Digest {
        match self {
            TermStructure::Mht(tree) => tree.root(),
            TermStructure::Cmht(chain) => chain.head_digest(),
        }
    }

    /// Digests held resident by this materialized structure (all MHT
    /// levels, or chain leaves + block digests) — the space-accounting
    /// counterpart of the paper's "only roots and leaves are stored".
    pub(crate) fn resident_digests(&self) -> usize {
        match self {
            TermStructure::Mht(tree) => mht_resident_digests(tree.num_leaves()) as usize,
            TermStructure::Cmht(chain) => chain.num_leaves() + chain.num_blocks(),
        }
    }
}

/// Digests a fully materialized MHT over `n` leaves holds: the sum of
/// every level's width under the odd-node-promotion shape (Figure 8).
/// Shared by the cache accounting here and the worst-case residency
/// bound in [`super::space`].
pub(crate) fn mht_resident_digests(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut total = n as u64;
    let mut w = n;
    while w > 1 {
        w = w.div_ceil(2);
        total += w as u64;
    }
    total
}

/// Cache state attached to one [`AuthenticatedIndex`].
///
/// Both LRUs are **sharded** ([`ShardedLru`]): N power-of-two shards,
/// each behind its own lock, with keys routed by `TermId`/`DocId` hash.
/// Under the concurrent serving path
/// ([`AuthenticatedIndex::serve_batch`]) parallel lookups therefore
/// contend only on shard collisions instead of serializing every query
/// on one global mutex; hit/miss counters are aggregated across shards
/// for [`CacheStats`].
#[derive(Debug)]
pub(crate) struct ServeCache {
    /// Dictionary-MHT, materialized once (dictionary mode + cache on).
    pub(crate) dict_tree: Option<MerkleTree>,
    /// Sharded bounded LRU of materialized term structures.
    pub(crate) terms: ShardedLru<TermId, Arc<TermStructure>>,
    /// Sharded bounded LRU of materialized document-MHTs (TRA only —
    /// TNRA responses carry no document proofs).
    pub(crate) docs: ShardedLru<DocId, Arc<MerkleTree>>,
}

impl ServeCache {
    /// Empty cache sized per the configuration (capacity 0 when the
    /// cache is disabled, which makes every lookup a miss).
    pub(crate) fn new(config: &AuthConfig) -> ServeCache {
        let term_capacity = if config.serve_cache {
            config.term_cache_capacity
        } else {
            0
        };
        let doc_capacity = if config.serve_cache && config.mechanism.is_tra() {
            config.doc_cache_capacity
        } else {
            0
        };
        ServeCache {
            dict_tree: None,
            terms: ShardedLru::new(term_capacity, config.cache_shards),
            docs: ShardedLru::new(doc_capacity, config.cache_shards),
        }
    }
}

/// Hit/miss counters of the engine's structure caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Term lookups served from the cache.
    pub hits: u64,
    /// Term lookups that had to rebuild from leaves.
    pub misses: u64,
    /// Terms currently materialized.
    pub resident_terms: usize,
    /// Maximum number of materialized terms.
    pub capacity: usize,
    /// Document-MHT lookups served from the cache (TRA only).
    pub doc_hits: u64,
    /// Document-MHT lookups that had to rebuild from leaves.
    pub doc_misses: u64,
    /// Documents currently materialized.
    pub resident_docs: usize,
    /// Maximum number of materialized documents.
    pub doc_capacity: usize,
    /// Lock shards of the term-structure cache (power of two).
    pub term_shards: usize,
    /// Lock shards of the document-MHT cache (power of two).
    pub doc_shards: usize,
}

/// What [`AuthenticatedIndex::warm_cache`] materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Term structures materialized into the term LRU.
    pub terms: usize,
    /// Document-MHTs materialized into the document LRU (TRA only).
    pub docs: usize,
}

impl AuthenticatedIndex {
    /// Pre-warm the serve caches with the `top_k` terms of **highest
    /// document frequency** (ties by ascending term id) — the head of a
    /// Zipf query workload — and, for the TRA mechanisms, the
    /// document-MHTs of the documents those hot lists reference (walked
    /// hottest-list-first, first-encounter order, up to the document
    /// LRU's capacity).
    ///
    /// Called by server startup ([`crate::server`], via
    /// [`crate::server::ServerConfig::warm_top_k`]) so the first wave of
    /// traffic hits warm structures instead of stampeding the sharded
    /// LRUs with concurrent cold builds; callable standalone for
    /// offline warm-up. Materialization fans out over the persistent
    /// [`serve pool`](AuthenticatedIndex::serve_pool).
    ///
    /// `top_k` is clamped to the term LRU's capacity (warming past it
    /// would only evict hotter entries). A no-op returning zeros when
    /// the serve cache is disabled. Warm lookups count as ordinary
    /// misses in [`CacheStats`]; proofs are bit-identical either way —
    /// warming moves CPU cost, never results.
    ///
    /// The returned [`WarmStats`] report what is actually **resident**
    /// after warming (capped at the attempted counts): capacity is
    /// enforced per [`crate::cache::ShardedLru`] shard, so warming
    /// close to the total capacity can still evict within unlucky
    /// shards — the numbers are honest about that rather than assuming
    /// every insert stuck.
    pub fn warm_cache(&self, top_k: usize) -> WarmStats {
        if !self.config.serve_cache || top_k == 0 {
            return WarmStats::default();
        }
        let m = self.index.num_terms();
        let mut by_df: Vec<TermId> = (0..m as TermId).collect();
        by_df.sort_unstable_by_key(|&t| (std::cmp::Reverse(self.index.ft(t)), t));
        by_df.truncate(top_k.min(self.config.term_cache_capacity));

        // TRA: the hot lists name the documents whose MHTs queries will
        // need; collect them hottest-list-first until the doc LRU is
        // full.
        let mut hot_docs: Vec<DocId> = Vec::new();
        if self.config.mechanism.is_tra() {
            let mut seen = std::collections::HashSet::new();
            'lists: for &t in &by_df {
                for e in self.index.list(t).entries() {
                    if seen.insert(e.doc) && !self.doc_table.doc_terms(e.doc).is_empty() {
                        hot_docs.push(e.doc);
                        if hot_docs.len() >= self.config.doc_cache_capacity {
                            break 'lists;
                        }
                    }
                }
            }
        }

        let pool = self.serve_pool();
        pool.scope(|s| {
            for &t in &by_df {
                s.spawn(move || {
                    let _ = self.term_structure(t);
                });
            }
            for &d in &hot_docs {
                s.spawn(move || {
                    let _ = self.doc_structure(d);
                });
            }
        });
        let stats = self.cache_stats();
        WarmStats {
            terms: stats.resident_terms.min(by_df.len()),
            docs: stats.resident_docs.min(hot_docs.len()),
        }
    }

    /// Drop every materialized structure from both LRUs (the
    /// dictionary-MHT, built once at construction, is kept). An ops /
    /// benchmarking knob — the next queries rebuild from leaves exactly
    /// as a cold start would, with bit-identical proofs.
    pub fn clear_serve_cache(&self) {
        self.cache.terms.clear();
        self.cache.docs.clear();
    }

    /// The materialized structure for `term`: from the cache when
    /// enabled (building and inserting on miss), fresh otherwise.
    ///
    /// Building happens outside any shard lock; two racing queries may
    /// both build, but the structures are identical by construction so
    /// either insert is correct.
    pub(crate) fn term_structure(&self, term: TermId) -> Arc<TermStructure> {
        if self.config.serve_cache {
            if let Some(hit) = self.cache.terms.get(&term) {
                return hit;
            }
        }
        let built = Arc::new(TermStructure::build(&self.config, self.index.list(term)));
        if self.config.serve_cache {
            self.cache.terms.put(term, Arc::clone(&built));
        }
        built
    }

    /// The materialized document-MHT for `d` (TRA proofs), or `None` for
    /// a document with no indexed terms. Cached like
    /// [`AuthenticatedIndex::term_structure`].
    pub(crate) fn doc_structure(&self, d: DocId) -> Option<Arc<MerkleTree>> {
        let leaves = self.doc_table.doc_terms(d);
        if leaves.is_empty() {
            return None;
        }
        if self.config.serve_cache {
            if let Some(hit) = self.cache.docs.get(&d) {
                return Some(hit);
            }
        }
        let built = Arc::new(MerkleTree::from_leaf_digests(
            leaves.iter().map(|&(t, w)| doc_leaf_digest(t, w)).collect(),
        ));
        if self.config.serve_cache {
            self.cache.docs.put(d, Arc::clone(&built));
        }
        Some(built)
    }

    /// Snapshot of the structure-cache counters, aggregated across every
    /// shard (for benchmarks and ops).
    pub fn cache_stats(&self) -> CacheStats {
        let terms = self.cache.terms.stats();
        let docs = self.cache.docs.stats();
        CacheStats {
            hits: terms.hits,
            misses: terms.misses,
            resident_terms: terms.len,
            capacity: terms.capacity,
            doc_hits: docs.hits,
            doc_misses: docs.misses,
            resident_docs: docs.len,
            doc_capacity: docs.capacity,
            term_shards: self.cache.terms.num_shards(),
            doc_shards: self.cache.docs.num_shards(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::tests_support::test_auth;
    use crate::toy::{toy_contents, toy_query};
    use crate::vo::Mechanism;

    #[test]
    fn term_structures_match_fresh_builds() {
        for mechanism in Mechanism::ALL {
            let auth = test_auth(mechanism, true);
            for t in 0..auth.index().num_terms() as TermId {
                let cached = auth.term_structure(t);
                let fresh = TermStructure::build(auth.config(), auth.index().list(t));
                assert_eq!(cached.root(), fresh.root(), "term {t} ({mechanism:?})");
                assert_eq!(cached.root(), auth.term_root(t));
            }
        }
    }

    #[test]
    fn cache_hits_on_repeated_queries() {
        let auth = test_auth(Mechanism::TnraCmht, true);
        let before = auth.cache_stats();
        assert_eq!(before.hits, 0);
        let _ = auth.query(&toy_query(), 2, &toy_contents());
        let after_first = auth.cache_stats();
        assert!(after_first.misses > 0);
        assert!(after_first.resident_terms > 0);
        let _ = auth.query(&toy_query(), 2, &toy_contents());
        let after_second = auth.cache_stats();
        assert!(after_second.hits >= after_first.resident_terms as u64);
        assert_eq!(after_second.misses, after_first.misses);
    }

    #[test]
    fn disabled_cache_never_retains() {
        let auth = test_auth(Mechanism::TnraCmht, false);
        let _ = auth.query(&toy_query(), 2, &toy_contents());
        let stats = auth.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.resident_terms, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.resident_docs, 0);
    }

    #[test]
    fn doc_mhts_cached_for_tra_only() {
        let tra = test_auth(Mechanism::TraMht, true);
        let _ = tra.query(&toy_query(), 2, &toy_contents());
        let stats = tra.cache_stats();
        assert!(stats.doc_misses > 0);
        assert!(stats.resident_docs > 0);
        let _ = tra.query(&toy_query(), 2, &toy_contents());
        let warm = tra.cache_stats();
        assert!(warm.doc_hits > 0);
        assert_eq!(warm.doc_misses, stats.doc_misses);

        let tnra = test_auth(Mechanism::TnraMht, true);
        let _ = tnra.query(&toy_query(), 2, &toy_contents());
        let nstats = tnra.cache_stats();
        assert_eq!(nstats.doc_capacity, 0);
        assert_eq!(nstats.resident_docs, 0);
    }

    #[test]
    fn doc_structures_match_fresh_builds() {
        use super::super::doc_leaf_digest;
        let auth = test_auth(Mechanism::TraCmht, true);
        for d in 0..auth.index().num_docs() as DocId {
            let leaves = auth.doc_table().doc_terms(d);
            match auth.doc_structure(d) {
                None => assert!(leaves.is_empty(), "doc {d}"),
                Some(tree) => {
                    let fresh = MerkleTree::from_leaf_digests(
                        leaves.iter().map(|&(t, w)| doc_leaf_digest(t, w)).collect(),
                    );
                    assert_eq!(tree.root(), fresh.root(), "doc {d}");
                }
            }
        }
    }

    #[test]
    fn cache_stats_report_shard_counts() {
        let auth = test_auth(Mechanism::TraMht, true);
        let stats = auth.cache_stats();
        assert!(stats.term_shards.is_power_of_two());
        assert!(stats.doc_shards.is_power_of_two());
        assert!(stats.term_shards >= 1);
        // Capacity is preserved exactly under sharding.
        assert_eq!(stats.capacity, auth.config().term_cache_capacity);
        assert_eq!(stats.doc_capacity, auth.config().doc_cache_capacity);
    }

    #[test]
    fn poisoned_shard_does_not_kill_serving() {
        // A worker panicking while holding a shard lock must not take
        // the engine down: the guard is recovered (the LRU is left
        // structurally valid by every operation) and later queries on
        // the same shard keep being served.
        let auth = test_auth(Mechanism::TraCmht, true);
        let before = auth.query(&toy_query(), 2, &toy_contents());
        for t in 0..auth.index().num_terms() as TermId {
            auth.cache.terms.poison_shard_of(&t);
        }
        for d in 0..auth.index().num_docs() as DocId {
            auth.cache.docs.poison_shard_of(&d);
        }
        let after = auth.query(&toy_query(), 2, &toy_contents());
        assert_eq!(before.vo, after.vo);
        assert_eq!(before.result, after.result);
        assert!(auth.cache_stats().hits > 0, "cache still serving hits");
    }

    #[test]
    fn warm_cache_populates_top_df_terms() {
        let auth = test_auth(Mechanism::TnraCmht, true);
        let warmed = auth.warm_cache(3);
        assert_eq!(warmed, WarmStats { terms: 3, docs: 0 });
        let stats = auth.cache_stats();
        assert_eq!(stats.resident_terms, 3);
        assert_eq!(stats.misses, 3, "warm lookups count as ordinary misses");
        // The three warmed terms are exactly the three highest-df terms
        // (ties by ascending id): querying one of them is now a hit.
        let mut by_df: Vec<TermId> = (0..auth.index().num_terms() as TermId).collect();
        by_df.sort_unstable_by_key(|&t| (std::cmp::Reverse(auth.index().ft(t)), t));
        let hits_before = auth.cache_stats().hits;
        let _ = auth.term_structure(by_df[0]);
        let _ = auth.term_structure(by_df[2]);
        assert_eq!(auth.cache_stats().hits, hits_before + 2);
    }

    #[test]
    fn warm_cache_warms_document_mhts_under_tra() {
        let auth = test_auth(Mechanism::TraMht, true);
        let warmed = auth.warm_cache(4);
        assert_eq!(warmed.terms, 4);
        assert!(warmed.docs > 0, "hot lists reference documents");
        let stats = auth.cache_stats();
        assert_eq!(stats.resident_docs, warmed.docs);
        // Serving a query over warmed structures is bit-identical to the
        // cold path (the tentpole invariant, restated for warming).
        let cold = test_auth(Mechanism::TraMht, true);
        let a = auth.query(&toy_query(), 2, &toy_contents());
        let b = cold.query(&toy_query(), 2, &toy_contents());
        assert_eq!(a.vo, b.vo);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn warm_cache_clamps_and_degenerates_cleanly() {
        let auth = test_auth(Mechanism::TnraCmht, true);
        // Asking for more terms than exist (or than fit) clamps.
        let warmed = auth.warm_cache(usize::MAX);
        assert!(warmed.terms <= auth.config().term_cache_capacity);
        assert_eq!(warmed.terms, auth.index().num_terms());
        // top_k = 0 is a no-op.
        assert_eq!(auth.warm_cache(0), WarmStats::default());
        // Disabled cache: warming has nothing to populate.
        let uncached = test_auth(Mechanism::TnraCmht, false);
        assert_eq!(uncached.warm_cache(8), WarmStats::default());
        assert_eq!(uncached.cache_stats().resident_terms, 0);
    }

    #[test]
    fn clear_serve_cache_forces_cold_rebuilds() {
        let auth = test_auth(Mechanism::TraCmht, true);
        let warm_response = auth.query(&toy_query(), 2, &toy_contents());
        assert!(auth.cache_stats().resident_terms > 0);
        auth.clear_serve_cache();
        let stats = auth.cache_stats();
        assert_eq!(stats.resident_terms, 0);
        assert_eq!(stats.resident_docs, 0);
        // Cold rebuilds produce bit-identical responses.
        let cold_response = auth.query(&toy_query(), 2, &toy_contents());
        assert_eq!(warm_response.vo, cold_response.vo);
    }

    #[test]
    fn resident_digest_counts() {
        // 7-leaf MHT: widths 7,4,2,1 → 14 digests resident.
        let leaves: Vec<Digest> = (0..7u32).map(|i| Digest::hash(&i.to_le_bytes())).collect();
        let mht = TermStructure::Mht(MerkleTree::from_leaf_digests(leaves.clone()));
        assert_eq!(mht.resident_digests(), 14);
        // Chain of 7 leaves in blocks of 3 → 7 + 3 block digests.
        let cmht = TermStructure::Cmht(ChainMht::build(leaves, 3));
        assert_eq!(cmht.resident_digests(), 10);
    }
}
