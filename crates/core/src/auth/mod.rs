//! Owner-side authentication structures (paper §3.3, §3.4).
//!
//! The data owner builds, once, for the whole collection:
//!
//! * a **term-MHT** (or **chain-MHT**) over every inverted list, its root
//!   (head) digest bound to the term and `f_t` by a signature;
//! * for the TRA mechanisms, a **document-MHT** over every document's
//!   `(t, w_{d,t})` leaves, its root bound to the document id and the
//!   digest of the document's content by a signature;
//! * optionally (§3.4), a single **dictionary-MHT** over all term roots,
//!   replacing the per-list signatures with one signature at the cost of
//!   extra digests per VO.
//!
//! Following \[13\] (and §3.3.1), only roots and leaves are stored;
//! intermediate digests are regenerated at runtime — which is exactly why
//! the plain-MHT variants must re-read entire inverted lists at query time
//! while the chain-MHT variants stop at the cut-off block.
//!
//! ## Cache vs. the paper's storage model
//!
//! Regenerating interior digests on every query is the right *storage*
//! trade-off (the paper's §3.4 space analysis depends on it) but a poor
//! *serving* trade-off: a production engine answering heavy traffic
//! re-hashes the same hot lists — and in dictionary-MHT mode all `m`
//! dictionary leaves — thousands of times over. [`AuthConfig::serve_cache`]
//! (default **on**) therefore keeps materialized structures in RAM: the
//! dictionary-MHT is built once at construction, and term structures live
//! in a bounded LRU ([`AuthConfig::term_cache_capacity`]). Cached and
//! regenerated structures are *bit-identical* — same roots, same proofs,
//! same signatures — so verification is unaffected; only engine CPU time
//! changes. The simulated disk accounting deliberately keeps modeling the
//! paper's on-disk layout in both modes, so the I/O figures stay
//! comparable. Setting `serve_cache: false` restores the paper's
//! regenerate-from-leaves behavior exactly; [`space::SpaceReport`]
//! reports the residency cost of both modes.

mod cache;
pub mod serve;
pub mod snapshot;
pub mod space;

pub use cache::{CacheStats, WarmStats};
pub use snapshot::{boot_authenticated_index, BootReport, BootSource};

use crate::pool::ThreadPool;
use crate::types::DocTable;
use crate::vo::Mechanism;
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::keys::PAPER_KEY_BITS;
use authsearch_crypto::{Digest, MerkleTree, RsaPrivateKey, RsaPublicKey};
use authsearch_index::{BlockLayout, ImpactEntry, InvertedIndex, InvertedList};
use std::sync::{Arc, Mutex};

/// Source of raw document contents (for `h(doc)`); implemented by
/// [`authsearch_corpus::Corpus`] and by plain `Vec<Vec<u8>>` fixtures.
///
/// `Sync` is a supertrait because the parallel owner build
/// ([`AuthenticatedIndex::build`]) hashes document contents from several
/// worker threads at once.
pub trait ContentProvider: Sync {
    /// Canonical content bytes of document `d`.
    fn content(&self, d: DocId) -> Vec<u8>;
}

impl ContentProvider for authsearch_corpus::Corpus {
    fn content(&self, d: DocId) -> Vec<u8> {
        self.content_bytes(d)
    }
}

impl ContentProvider for Vec<Vec<u8>> {
    fn content(&self, d: DocId) -> Vec<u8> {
        self[d as usize].clone()
    }
}

/// Authentication configuration.
///
/// [`AuthConfig::new`] is the paper's configuration for a mechanism;
/// individual knobs are overridden with struct-update syntax:
///
/// ```
/// use authsearch_core::{AuthConfig, Mechanism};
///
/// let config = AuthConfig {
///     threads: 1, // exact sequential paper model (default 0 = all cores)
///     ..AuthConfig::new(Mechanism::TnraCmht)
/// };
/// assert!(config.buddy); // chain-MHT mechanisms default buddy on
/// assert_eq!(config.build_threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthConfig {
    /// Query-processing + authentication mechanism.
    pub mechanism: Mechanism,
    /// Disk block layout (determines ρ / ρ′).
    pub layout: BlockLayout,
    /// Buddy inclusion (paper default: on for CMHT, off for plain MHT).
    pub buddy: bool,
    /// Replace per-list signatures with one dictionary-MHT signature
    /// (§3.4 space optimization; off by default — the paper finds the
    /// trade-off unappealing except under storage pressure).
    pub dict_mht: bool,
    /// RSA modulus size (paper: 1024).
    pub key_bits: usize,
    /// Reuse materialized authentication structures across queries at
    /// the engine (dictionary-MHT built once; bounded term-structure
    /// LRU). `false` reproduces the paper's regenerate-from-leaves
    /// storage model byte-for-byte on every query. Proof output is
    /// bit-identical either way; see the module docs for the trade-off.
    pub serve_cache: bool,
    /// Capacity, in terms, of the engine-side term-structure LRU
    /// (ignored when [`AuthConfig::serve_cache`] is off).
    pub term_cache_capacity: usize,
    /// Capacity, in documents, of the engine-side document-MHT LRU
    /// (TRA mechanisms only; ignored when [`AuthConfig::serve_cache`]
    /// is off).
    pub doc_cache_capacity: usize,
    /// Lock shards of each engine-side structure cache. Rounded up to a
    /// power of two and capped so no shard has capacity 0 (see
    /// [`crate::cache::ShardedLru`]); the default
    /// ([`DEFAULT_CACHE_SHARDS`]) keeps contention negligible at the
    /// thread counts the serving pool reaches while costing nothing at
    /// `threads = 1`. Residency and proofs are unaffected — sharding
    /// changes only *which lock* a lookup takes.
    pub cache_shards: usize,
    /// Worker threads for the owner-side build
    /// ([`AuthenticatedIndex::build`]) **and** the engine-side batch
    /// serving path ([`AuthenticatedIndex::serve_batch`]): `0` (the
    /// default) uses the machine's available parallelism, `1` runs the
    /// paper's sequential model on the calling thread, and `n ≥ 2` fans
    /// the per-term/per-document (build) or per-query (serve) work out
    /// over a [`crate::pool::ThreadPool`]. Artifacts and per-query VOs
    /// are **bit-identical for every value** — only wall-clock time
    /// changes.
    ///
    /// The default can be forced process-wide through the
    /// `AUTHSEARCH_THREADS` environment variable (read by
    /// [`AuthConfig::new`]; explicit struct updates still win), which is
    /// how CI runs the whole test suite at `threads = 1` and
    /// `threads = 4` without touching every call site.
    pub threads: usize,
}

/// Default bound on materialized term structures held by the engine.
///
/// Sized for the hot head of a Zipf-distributed query workload: the
/// paper's WSJ dictionary has ~180k terms, and a few thousand hot terms
/// cover the bulk of query traffic while bounding residency to tens of
/// megabytes at WSJ scale.
pub const DEFAULT_TERM_CACHE_CAPACITY: usize = 4096;

/// Default bound on materialized document-MHTs held by the engine (TRA
/// only — TNRA ships no document proofs). An average WSJ document has a
/// few hundred distinct terms, so 8k cached document-MHTs stay in the
/// tens of megabytes.
pub const DEFAULT_DOC_CACHE_CAPACITY: usize = 8192;

/// Default shard count of the engine-side structure caches. 16 shards
/// keep the expected lock-collision probability of two simultaneous
/// lookups under 7% at 8 serving threads (birthday bound `t·(t−1)/2N`)
/// while adding only 15 extra mutexes per cache.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

impl AuthConfig {
    /// The paper's configuration for a mechanism.
    ///
    /// The default [`AuthConfig::threads`] is `0` (auto), unless the
    /// `AUTHSEARCH_THREADS` environment variable holds a number — the
    /// process-wide override CI uses to pin the whole suite to a thread
    /// count. Explicit `threads:` struct updates override either way.
    pub fn new(mechanism: Mechanism) -> AuthConfig {
        AuthConfig {
            mechanism,
            layout: BlockLayout::default(),
            buddy: mechanism.is_cmht(),
            dict_mht: false,
            key_bits: PAPER_KEY_BITS,
            serve_cache: true,
            term_cache_capacity: DEFAULT_TERM_CACHE_CAPACITY,
            doc_cache_capacity: DEFAULT_DOC_CACHE_CAPACITY,
            cache_shards: DEFAULT_CACHE_SHARDS,
            threads: default_threads(),
        }
    }

    /// The effective owner-build worker count: [`AuthConfig::threads`],
    /// with `0` resolved to [`crate::pool::available_parallelism`].
    pub fn build_threads(&self) -> usize {
        if self.threads == 0 {
            crate::pool::available_parallelism()
        } else {
            self.threads
        }
    }

    /// Chain-MHT block capacity for this mechanism's leaf size
    /// (ρ = 251 for TRA's doc-id leaves, ρ′ = 125 for TNRA's ⟨d,f⟩).
    pub fn chain_capacity(&self) -> usize {
        self.layout.chain_capacity(self.term_leaf_bytes())
    }

    /// Leaf size of the term-(chain-)MHTs.
    pub fn term_leaf_bytes(&self) -> usize {
        if self.mechanism.is_tra() {
            4
        } else {
            ImpactEntry::BYTES
        }
    }
}

/// Parse one non-negative-integer environment override named `name` —
/// the shared grammar of every `AUTHSEARCH_*` numeric knob
/// (`AUTHSEARCH_THREADS`, `AUTHSEARCH_MAX_CONNECTIONS`,
/// `AUTHSEARCH_IDLE_MS`): surrounding whitespace tolerated; empty,
/// negative, or non-numeric values rejected with a message naming the
/// variable and the offending value. Pure, so the reject paths are
/// unit-testable without mutating process environment; callers decide
/// unset semantics and warn-once policy.
pub(crate) fn parse_usize_env(name: &str, raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "{name} is set but empty; expected a non-negative integer"
        ));
    }
    trimmed
        .parse::<usize>()
        .map_err(|_| format!("{name}={trimmed:?} is not a valid non-negative integer"))
}

/// Parse an `AUTHSEARCH_THREADS` value: `None` (unset) and `"0"` both
/// mean auto; any non-empty decimal is a pinned width; everything else
/// is rejected via [`parse_usize_env`].
pub(crate) fn parse_threads_env(raw: Option<&str>) -> Result<usize, String> {
    let Some(raw) = raw else { return Ok(0) };
    parse_usize_env("AUTHSEARCH_THREADS", raw).map_err(|why| format!("{why} (0 = auto)"))
}

/// The process-wide default for [`AuthConfig::threads`]: the
/// `AUTHSEARCH_THREADS` environment variable when set to a number,
/// otherwise `0` (auto). An **invalid** value — empty, negative, or
/// non-numeric — is rejected, not silently ignored: a warning naming the
/// bad value is printed to stderr (once per process) and the default
/// falls back to auto, so a typo in a deployment manifest surfaces in
/// the logs instead of quietly serving at an unintended width.
fn default_threads() -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = std::env::var("AUTHSEARCH_THREADS").ok();
    match parse_threads_env(raw.as_deref()) {
        Ok(n) => n,
        Err(why) => {
            WARN_ONCE.call_once(|| {
                eprintln!("warning: {why}; falling back to auto (all cores)");
            });
            0
        }
    }
}

// ---- canonical leaf & message encodings ----------------------------------

/// Digest of one term-MHT leaf for the TRA mechanisms (doc id only).
pub(crate) fn tra_leaf_digest(doc: DocId) -> Digest {
    Digest::hash(&doc.to_le_bytes())
}

/// Digest of one term-MHT leaf for the TNRA mechanisms (`⟨d, f⟩`).
pub(crate) fn tnra_leaf_digest(entry: &ImpactEntry) -> Digest {
    Digest::hash(&entry.encode())
}

/// Term-MHT leaf digests for a list under a mechanism.
pub(crate) fn term_leaves(mechanism: Mechanism, list: &InvertedList) -> Vec<Digest> {
    if mechanism.is_tra() {
        list.entries()
            .iter()
            .map(|e| tra_leaf_digest(e.doc))
            .collect()
    } else {
        list.entries().iter().map(tnra_leaf_digest).collect()
    }
}

/// Encoding of one document-MHT leaf: `(t, w_{d,t})`, 8 bytes.
pub(crate) fn doc_leaf_bytes(term: TermId, weight: f32) -> [u8; 8] {
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&term.to_le_bytes());
    out[4..].copy_from_slice(&weight.to_bits().to_le_bytes());
    out
}

/// Digest of one document-MHT leaf.
pub(crate) fn doc_leaf_digest(term: TermId, weight: f32) -> Digest {
    Digest::hash(&doc_leaf_bytes(term, weight))
}

/// Document-MHT root over `(t, w)` leaves; documents with no indexed
/// terms get a distinguished constant.
pub(crate) fn doc_root(doc_terms: &[(TermId, f32)]) -> Digest {
    if doc_terms.is_empty() {
        return Digest::hash(b"authsearch:empty-doc-mht:v1");
    }
    let leaves: Vec<Digest> = doc_terms
        .iter()
        .map(|&(t, w)| doc_leaf_digest(t, w))
        .collect();
    MerkleTree::from_leaf_digests(leaves).root()
}

/// Root (plain MHT) or head (chain-MHT) digest of a term's list.
pub(crate) fn term_root(config: &AuthConfig, list: &InvertedList) -> Digest {
    cache::TermStructure::build(config, list).root()
}

/// Signed message binding a term's list: `h(tag | t | f_t | digest)` —
/// the paper's `sign(h(t_i | f_{t_i} | i | digest_{i,1}))`.
pub(crate) fn term_message(term: TermId, ft: u32, root: &Digest) -> Vec<u8> {
    let mut msg = Vec::with_capacity(16 + 8 + 16);
    msg.extend_from_slice(b"authsearch:term:v1|");
    msg.extend_from_slice(&term.to_le_bytes());
    msg.extend_from_slice(&ft.to_le_bytes());
    msg.extend_from_slice(root.as_bytes());
    msg
}

/// Signed message binding a document: the paper's
/// `sign(h(h(doc) | d | root))` (Figure 8).
pub(crate) fn doc_message(doc: DocId, content_digest: &Digest, root: &Digest) -> Vec<u8> {
    let mut msg = Vec::with_capacity(19 + 4 + 32);
    msg.extend_from_slice(b"authsearch:doc:v1|");
    msg.extend_from_slice(&content_digest.0);
    msg.extend_from_slice(&doc.to_le_bytes());
    msg.extend_from_slice(root.as_bytes());
    msg
}

/// Signed message for the dictionary-MHT root (§3.4).
pub(crate) fn dict_message(num_terms: u32, root: &Digest) -> Vec<u8> {
    let mut msg = Vec::with_capacity(24 + 16);
    msg.extend_from_slice(b"authsearch:dict:v1|");
    msg.extend_from_slice(&num_terms.to_le_bytes());
    msg.extend_from_slice(root.as_bytes());
    msg
}

/// Dictionary-MHT leaf for one term: the digest of its signed message
/// (binding term id, `f_t`, and list root together).
pub(crate) fn dict_leaf_digest(term: TermId, ft: u32, root: &Digest) -> Digest {
    Digest::hash(&term_message(term, ft, root))
}

// ---- the owner's artifact -------------------------------------------------

/// Everything the data owner hands the search engine: the index, the
/// document table, and the signatures/digests of the authentication
/// structures.
#[derive(Debug)]
pub struct AuthenticatedIndex {
    config: AuthConfig,
    index: InvertedIndex,
    doc_table: DocTable,
    /// Root/head digest of every term's (chain-)MHT.
    term_roots: Vec<Digest>,
    /// Per-list signatures (empty in dictionary-MHT mode).
    term_sigs: Vec<Vec<u8>>,
    /// Dictionary-MHT signature (dictionary-MHT mode only).
    dict_sig: Option<Vec<u8>>,
    /// TRA only: per-document content digests and signatures.
    doc_content_digests: Vec<Digest>,
    doc_sigs: Vec<Vec<u8>>,
    public_key: RsaPublicKey,
    /// Engine-side structure cache (see [`cache`] and the module docs).
    cache: cache::ServeCache,
    /// Persistent serving pool, shared by [`AuthenticatedIndex::serve_batch`],
    /// [`cache warming`](AuthenticatedIndex::warm_cache), and the network
    /// server ([`crate::server`]). Seeded with the pool the build used, so
    /// worker threads are spawned once per artifact, not once per call;
    /// swapped lazily when [`AuthenticatedIndex::set_threads`] changes the
    /// width. `None` only transiently (during a swap).
    serve_pool: Mutex<Option<Arc<ThreadPool>>>,
}

impl AuthenticatedIndex {
    /// Build every authentication structure and sign the roots. This is
    /// the owner's one-off preprocessing step (the dominant cost is one
    /// RSA signature per dictionary term, plus one per document for TRA).
    ///
    /// The work is embarrassingly parallel — every term's structure and
    /// signature, and every document's content digest, MHT root, and
    /// signature, is independent — so it fans out over a work-stealing
    /// [`crate::pool::ThreadPool`] sized by [`AuthConfig::build_threads`]
    /// (`threads: 1` keeps the paper's sequential owner model on the
    /// calling thread). Workers share `key` by reference, so every
    /// signature reuses the key's cached per-factor Montgomery contexts;
    /// results are collected in index order, making the artifact
    /// **bit-identical for any thread count**.
    ///
    /// ```
    /// use authsearch_core::{AuthConfig, AuthenticatedIndex, Mechanism};
    /// use authsearch_corpus::CorpusBuilder;
    /// use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
    /// use authsearch_index::{build_index, OkapiParams};
    ///
    /// let corpus = CorpusBuilder::new()
    ///     .min_df(1)
    ///     .add_text("the night keeper keeps the keep in the town")
    ///     .add_text("in the big old house in the big old gown")
    ///     .build();
    /// let index = build_index(&corpus, OkapiParams::default());
    /// let key = cached_keypair(TEST_KEY_BITS);
    ///
    /// let sequential = AuthConfig {
    ///     key_bits: TEST_KEY_BITS,
    ///     threads: 1,
    ///     ..AuthConfig::new(Mechanism::TnraCmht)
    /// };
    /// let parallel = AuthConfig { threads: 4, ..sequential };
    /// let a = AuthenticatedIndex::build(index.clone(), &key, sequential, &corpus);
    /// let b = AuthenticatedIndex::build(index, &key, parallel, &corpus);
    /// // Same roots (and signatures) regardless of thread count.
    /// assert_eq!(a.term_root(0), b.term_root(0));
    /// ```
    pub fn build<C: ContentProvider>(
        index: InvertedIndex,
        key: &RsaPrivateKey,
        config: AuthConfig,
        contents: &C,
    ) -> AuthenticatedIndex {
        let m = index.num_terms();
        for t in 0..m as TermId {
            assert!(
                !index.list(t).is_empty(),
                "term {t} has an empty inverted list; prune before authenticating"
            );
        }

        let doc_table = DocTable::from_index(&index);
        let pool = ThreadPool::new(config.build_threads());

        // Term structures: one independent task per term (hash the leaf
        // layer, fold the (chain-)MHT).
        let term_roots: Vec<Digest> = pool.map(m, |t| term_root(&config, index.list(t as TermId)));

        let mut serve_cache = cache::ServeCache::new(&config);
        let (term_sigs, dict_sig) = if config.dict_mht {
            let leaves: Vec<Digest> = pool.map(m, |t| {
                let t = t as TermId;
                dict_leaf_digest(t, index.ft(t), &term_roots[t as usize])
            });
            let tree = MerkleTree::from_leaf_digests(leaves);
            let root = tree.root();
            if config.serve_cache {
                // Built once here; every query's dictionary proof reuses
                // it instead of rehashing all m leaves.
                serve_cache.dict_tree = Some(tree);
            }
            let sig = key
                .sign(&dict_message(m as u32, &root))
                .expect("dictionary signature");
            (Vec::new(), Some(sig))
        } else {
            // One RSA signature per term — the dominant build cost, and
            // perfectly parallel: workers share the key (and therefore
            // its cached Montgomery contexts) read-only.
            let sigs: Vec<Vec<u8>> = pool.map(m, |t| {
                let t = t as TermId;
                key.sign(&term_message(t, index.ft(t), &term_roots[t as usize]))
                    .expect("term signature")
            });
            (sigs, None)
        };

        // Document structures (TRA mechanisms only): hash the content,
        // fold the document-MHT, and sign — independently per document.
        let (doc_content_digests, doc_sigs) = if config.mechanism.is_tra() {
            let n = index.num_docs();
            let per_doc: Vec<(Digest, Vec<u8>)> = pool.map(n, |d| {
                let d = d as DocId;
                let cd = Digest::hash(&contents.content(d));
                let root = doc_root(doc_table.doc_terms(d));
                let sig = key
                    .sign(&doc_message(d, &cd, &root))
                    .expect("doc signature");
                (cd, sig)
            });
            per_doc.into_iter().unzip()
        } else {
            (Vec::new(), Vec::new())
        };

        AuthenticatedIndex {
            config,
            index,
            doc_table,
            term_roots,
            term_sigs,
            dict_sig,
            doc_content_digests,
            doc_sigs,
            public_key: key.public_key().clone(),
            cache: serve_cache,
            // The build's workers live on as the serving pool: a server
            // standing up from a fresh build never spawns a second set.
            serve_pool: Mutex::new(Some(Arc::new(pool))),
        }
    }

    /// The persistent serving pool, (re)created at the width
    /// [`AuthConfig::build_threads`] currently resolves to. The same
    /// pool instance is returned across calls — workers are spawned
    /// once, not per batch — until [`AuthenticatedIndex::set_threads`]
    /// changes the width, at which point the old pool is drained,
    /// joined, and replaced here.
    pub fn serve_pool(&self) -> Arc<ThreadPool> {
        let mut guard = crate::cache::lock_recover(&self.serve_pool);
        let want = self.config.build_threads();
        match guard.as_ref() {
            Some(pool) if pool.threads() == want => Arc::clone(pool),
            _ => {
                let pool = Arc::new(ThreadPool::new(want));
                *guard = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// The configuration this artifact was built with.
    pub fn config(&self) -> &AuthConfig {
        &self.config
    }

    /// Resize the serving pool: subsequent
    /// [`AuthenticatedIndex::serve_batch`] calls use `threads` workers
    /// (`0` = available parallelism). The persistent pool is swapped
    /// lazily on the next [`AuthenticatedIndex::serve_pool`] call (the
    /// old workers are drained and joined then). Purely an ops knob —
    /// proofs are bit-identical at any width, so this never invalidates
    /// the published artifact or the structures already cached.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The per-document frequency table (the document-MHT leaf layer).
    pub fn doc_table(&self) -> &DocTable {
        &self.doc_table
    }

    /// Root/head digest of term `t`'s list structure.
    pub fn term_root(&self, t: TermId) -> Digest {
        self.term_roots[t as usize]
    }

    /// The owner's public key (what users verify against).
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::toy::{toy_contents, toy_index};
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    /// Toy-collection authenticated index with the cache toggled.
    pub(crate) fn test_auth(mechanism: Mechanism, serve_cache: bool) -> AuthenticatedIndex {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            serve_cache,
            ..AuthConfig::new(mechanism)
        };
        AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{toy_contents, toy_index};
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    fn test_config(mechanism: Mechanism) -> AuthConfig {
        AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        }
    }

    #[test]
    fn config_defaults_follow_paper() {
        let c = AuthConfig::new(Mechanism::TraCmht);
        assert!(c.buddy);
        assert!(!c.dict_mht);
        assert_eq!(c.key_bits, 1024);
        assert_eq!(c.chain_capacity(), 251);
        let c2 = AuthConfig::new(Mechanism::TnraCmht);
        assert_eq!(c2.chain_capacity(), 125);
        assert!(!AuthConfig::new(Mechanism::TnraMht).buddy);
    }

    #[test]
    fn build_signs_every_term() {
        let key = cached_keypair(TEST_KEY_BITS);
        let auth = AuthenticatedIndex::build(
            toy_index(),
            &key,
            test_config(Mechanism::TnraMht),
            &toy_contents(),
        );
        assert_eq!(auth.term_sigs.len(), 16);
        // Spot-verify one signature.
        let t = 15u32; // 'the'
        let msg = term_message(t, auth.index.ft(t), &auth.term_root(t));
        auth.public_key()
            .verify(&msg, &auth.term_sigs[t as usize])
            .unwrap();
    }

    #[test]
    fn tra_build_signs_every_document() {
        let key = cached_keypair(TEST_KEY_BITS);
        let auth = AuthenticatedIndex::build(
            toy_index(),
            &key,
            test_config(Mechanism::TraMht),
            &toy_contents(),
        );
        assert_eq!(auth.doc_sigs.len(), 9);
        let d = 6u32;
        let root = doc_root(auth.doc_table().doc_terms(d));
        let msg = doc_message(d, &auth.doc_content_digests[d as usize], &root);
        auth.public_key()
            .verify(&msg, &auth.doc_sigs[d as usize])
            .unwrap();
    }

    #[test]
    fn tnra_build_has_no_doc_structures() {
        let key = cached_keypair(TEST_KEY_BITS);
        let auth = AuthenticatedIndex::build(
            toy_index(),
            &key,
            test_config(Mechanism::TnraCmht),
            &toy_contents(),
        );
        assert!(auth.doc_sigs.is_empty());
        assert!(auth.doc_content_digests.is_empty());
    }

    #[test]
    fn dict_mode_has_single_signature() {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            dict_mht: true,
            ..test_config(Mechanism::TnraMht)
        };
        let auth = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
        assert!(auth.term_sigs.is_empty());
        assert!(auth.dict_sig.is_some());
    }

    #[test]
    fn mechanism_changes_term_roots() {
        let key = cached_keypair(TEST_KEY_BITS);
        let a = AuthenticatedIndex::build(
            toy_index(),
            &key,
            test_config(Mechanism::TraMht),
            &toy_contents(),
        );
        let b = AuthenticatedIndex::build(
            toy_index(),
            &key,
            test_config(Mechanism::TnraMht),
            &toy_contents(),
        );
        // TRA roots cover doc ids only; TNRA roots cover ⟨d, f⟩ — they
        // must differ.
        assert_ne!(a.term_root(15), b.term_root(15));
    }

    #[test]
    fn empty_doc_has_stable_root() {
        // Doc 0 of the toy collection has no terms.
        let root = doc_root(&[]);
        assert_eq!(root, doc_root(&[]));
        assert_ne!(root, doc_root(&[(1, 0.5)]));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // The paper model is the single-threaded build; any thread count
        // must reproduce it exactly: same roots, same signatures.
        let key = cached_keypair(TEST_KEY_BITS);
        for mechanism in Mechanism::ALL {
            let sequential = AuthConfig {
                threads: 1,
                ..test_config(mechanism)
            };
            let reference =
                AuthenticatedIndex::build(toy_index(), &key, sequential, &toy_contents());
            for threads in [2, 4, 8] {
                let config = AuthConfig {
                    threads,
                    ..sequential
                };
                let built = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
                assert_eq!(
                    built.term_roots, reference.term_roots,
                    "{mechanism:?} threads={threads}"
                );
                assert_eq!(
                    built.term_sigs, reference.term_sigs,
                    "{mechanism:?} threads={threads}"
                );
                assert_eq!(
                    built.doc_content_digests, reference.doc_content_digests,
                    "{mechanism:?} threads={threads}"
                );
                assert_eq!(
                    built.doc_sigs, reference.doc_sigs,
                    "{mechanism:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_in_dict_mht_mode() {
        let key = cached_keypair(TEST_KEY_BITS);
        let sequential = AuthConfig {
            dict_mht: true,
            threads: 1,
            ..test_config(Mechanism::TnraMht)
        };
        let reference = AuthenticatedIndex::build(toy_index(), &key, sequential, &toy_contents());
        let parallel = AuthConfig {
            threads: 4,
            ..sequential
        };
        let built = AuthenticatedIndex::build(toy_index(), &key, parallel, &toy_contents());
        assert_eq!(built.term_roots, reference.term_roots);
        assert_eq!(built.dict_sig, reference.dict_sig);
    }

    #[test]
    fn parallel_build_proofs_verify_end_to_end() {
        // Proofs produced from a parallel-built artifact must verify
        // exactly like sequential ones (bit-identical structures in,
        // bit-identical VOs out).
        use crate::toy::toy_query;
        use crate::verify::{verify, VerifierParams};
        let key = cached_keypair(TEST_KEY_BITS);
        for mechanism in Mechanism::ALL {
            let config = AuthConfig {
                threads: 4,
                ..test_config(mechanism)
            };
            let auth = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
            let params = VerifierParams {
                public_key: key.public_key().clone(),
                layout: config.layout,
                mechanism,
                num_docs: auth.index().num_docs(),
                okapi: auth.index().params(),
            };
            let response = auth.query(&toy_query(), 2, &toy_contents());
            let verified = verify(&params, &toy_query(), 2, &response)
                .unwrap_or_else(|e| panic!("{mechanism:?}: {e}"));
            assert_eq!(verified.result, response.result);
        }
    }

    #[test]
    fn build_threads_resolves_auto() {
        let auto = test_config(Mechanism::TnraMht);
        // The default honors the CI env override when present.
        let env_default = std::env::var("AUTHSEARCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        assert_eq!(auto.threads, env_default);
        if env_default == 0 {
            assert_eq!(auto.build_threads(), crate::pool::available_parallelism());
        } else {
            assert_eq!(auto.build_threads(), env_default);
        }
        let fixed = AuthConfig { threads: 3, ..auto };
        assert_eq!(fixed.build_threads(), 3);
    }

    #[test]
    fn threads_env_parsing_accepts_valid_values() {
        // Unset and "0" both mean auto; pinned widths parse exactly;
        // surrounding whitespace is tolerated.
        assert_eq!(parse_threads_env(None), Ok(0));
        assert_eq!(parse_threads_env(Some("0")), Ok(0));
        assert_eq!(parse_threads_env(Some("1")), Ok(1));
        assert_eq!(parse_threads_env(Some("4")), Ok(4));
        assert_eq!(parse_threads_env(Some(" 8 ")), Ok(8));
    }

    #[test]
    fn threads_env_parsing_rejects_invalid_values() {
        // Empty / whitespace-only: set-but-empty is a deployment bug the
        // warning must name, not a silent auto.
        let empty = parse_threads_env(Some("")).unwrap_err();
        assert!(empty.contains("empty"), "{empty}");
        let blank = parse_threads_env(Some("   ")).unwrap_err();
        assert!(blank.contains("empty"), "{blank}");
        // Garbage values: rejected with the offending value named.
        for bad in ["four", "-1", "3.5", "0x4", "4threads", "∞"] {
            let err = parse_threads_env(Some(bad)).unwrap_err();
            assert!(
                err.contains(bad.trim()) && err.contains("not a valid"),
                "{bad:?} → {err}"
            );
        }
    }

    #[test]
    fn serve_pool_is_persistent_and_resizes_lazily() {
        let key = cached_keypair(TEST_KEY_BITS);
        let mut auth = AuthenticatedIndex::build(
            toy_index(),
            &key,
            AuthConfig {
                threads: 2,
                ..test_config(Mechanism::TnraMht)
            },
            &toy_contents(),
        );
        let a = auth.serve_pool();
        let b = auth.serve_pool();
        // Same pool instance across calls — workers spawned once.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 2);
        auth.set_threads(3);
        let c = auth.serve_pool();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.threads(), 3);
        // Unchanged width keeps the swapped pool.
        assert!(Arc::ptr_eq(&c, &auth.serve_pool()));
    }

    #[test]
    fn leaf_encodings_are_canonical() {
        assert_eq!(doc_leaf_bytes(1, 0.159).len(), 8);
        assert_ne!(tra_leaf_digest(1), tra_leaf_digest(2));
        let e1 = ImpactEntry {
            doc: 1,
            weight: 0.5,
        };
        let e2 = ImpactEntry {
            doc: 1,
            weight: 0.25,
        };
        assert_ne!(tnra_leaf_digest(&e1), tnra_leaf_digest(&e2));
    }
}
