//! Server-side query processing with VO construction (§3.3, §3.4).
//!
//! The (untrusted, but here honest) search engine runs the threshold
//! algorithm, then assembles the verification object: per query term the
//! processed list prefix with complementary digests and the list
//! signature; for the TRA mechanisms additionally one document-MHT proof
//! per encountered document. Disk traffic is accounted per the paper's
//! storage layout: plain-MHT variants re-read entire lists to regenerate
//! internal digests, chain-MHT variants stop at the cut-off block, and
//! every document-MHT fetch is a random access.

use super::cache::TermStructure;
use super::{doc_root, AuthenticatedIndex, ContentProvider};
use crate::access::{IndexLists, TableFreqs};
use crate::buddy::{buddy_group_size, expand_buddies, expand_prefix};
use crate::types::{ProcessingOutcome, Query, QueryResult};
use crate::vo::{DictVo, DocVo, PrefixData, TermProof, TermVo, VerificationObject};
use crate::{tnra, tra};
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{Digest, MerkleTree};
use authsearch_index::{ImpactEntry, IoStats};
use std::collections::BTreeSet;

/// What the search engine returns to the user: the ranked result, the
/// verification object, the contents of the result documents (their
/// digests are checked against the signed document-MHT roots), and the
/// simulated disk trace of serving the query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The ranked top-r result.
    pub result: QueryResult,
    /// The integrity proof.
    pub vo: VerificationObject,
    /// Contents of the result documents, in result order.
    pub contents: Vec<(DocId, Vec<u8>)>,
    /// Disk-access trace at the engine.
    pub io: IoStats,
    /// Entries fetched per query-term list (pre-buddy-padding) — the
    /// paper's "# entries read" metric.
    pub entries_read: Vec<usize>,
}

impl QueryResponse {
    /// `(doc, h(content))` for every delivered result document, in
    /// result order — what the digest-mode wire reply
    /// ([`crate::wire::Reply::OkDigest`]) ships in place of the
    /// contents themselves.
    pub fn content_digests(&self) -> Vec<(DocId, Digest)> {
        self.contents
            .iter()
            .map(|(d, bytes)| (*d, Digest::hash(bytes)))
            .collect()
    }
}

impl AuthenticatedIndex {
    /// Process a query and produce the result with its integrity proof.
    pub fn query<C: ContentProvider>(
        &self,
        query: &Query,
        r: usize,
        contents: &C,
    ) -> QueryResponse {
        let lists = IndexLists::new(&self.index, query);
        let outcome = if self.config.mechanism.is_tra() {
            let freqs = TableFreqs::new(&self.doc_table, query);
            tra::run(&lists, &freqs, query, r).expect("engine-side access is total")
        } else {
            tnra::run(&lists, query, r).expect("engine-side access is total")
        };
        self.respond(query, outcome, contents)
    }

    /// Serve a batch of queries concurrently, fanning per-query VO
    /// construction out over the **persistent** work-stealing
    /// [`ThreadPool`](crate::pool::ThreadPool) sized by
    /// [`super::AuthConfig::threads`] (the same knob that parallelizes
    /// the owner build; `1` keeps everything on the calling thread).
    /// The pool's workers are spawned once per artifact
    /// ([`super::AuthenticatedIndex::serve_pool`]) and reused across
    /// calls, so a server looping over small batches pays no per-batch
    /// spawn/join tax.
    ///
    /// Response `i` is **bit-identical** to `self.query(&queries[i],
    /// …)` at any thread count: each query's result, VO, and simulated
    /// I/O trace depend only on the (immutable) authenticated index —
    /// the sharded structure caches are a bit-transparent CPU
    /// optimization, and [`crate::pool::ThreadPool::map`] collects in
    /// index order.
    /// Only wall-clock time and cache hit/miss counters vary.
    ///
    /// This is the engine-side throughput path: with the term LRU
    /// sharded ([`crate::cache::ShardedLru`]), workers contend only on
    /// shard-level lock collisions instead of serializing on one cache
    /// mutex.
    pub fn serve_batch<C: ContentProvider>(
        &self,
        queries: &[Query],
        r: usize,
        contents: &C,
    ) -> Vec<QueryResponse> {
        self.serve_pool()
            .map(queries.len(), |i| self.query(&queries[i], r, contents))
    }

    /// Process a query under AND-semantics
    /// ([`QueryMode::Conjunctive`](crate::types::QueryMode)) and produce
    /// the intersection with its integrity proof.
    ///
    /// The proof strategy reuses the owner's existing signed structures
    /// — no new signatures, no VO format change:
    ///
    /// * **TRA**: reveal the *anchor* list (the shortest one,
    ///   `crate::conjunctive::anchor_index`) in full; every other term
    ///   gets a zero-length prefix whose proof still reconstructs the
    ///   signed root (the proof degenerates to the root digest itself).
    ///   Every anchor document ships its document-MHT proof, whose
    ///   adjacent-leaf bounding pairs prove *absence* of the other query
    ///   terms where they do not occur — so dropping a candidate from
    ///   the intersection is detectable, not just asserted.
    /// * **TNRA**: reveal every query term's list in full; absence is
    ///   then provable by exhaustion against the signed roots.
    ///
    /// Responses are bit-identical across thread counts, serve-cache
    /// settings, and snapshot-booted vs. cold-built engines, exactly
    /// like the disjunctive path ([`Self::query`]).
    pub fn query_conjunctive<C: ContentProvider>(
        &self,
        query: &Query,
        r: usize,
        contents: &C,
    ) -> QueryResponse {
        let outcome = self.conjunctive_outcome(query, r);
        self.respond(query, outcome, contents)
    }

    /// [`Self::serve_batch`] for conjunctive queries: response `i` is
    /// bit-identical to `self.query_conjunctive(&queries[i], …)` at any
    /// thread count.
    pub fn serve_batch_conjunctive<C: ContentProvider>(
        &self,
        queries: &[Query],
        r: usize,
        contents: &C,
    ) -> Vec<QueryResponse> {
        self.serve_pool().map(queries.len(), |i| {
            self.query_conjunctive(&queries[i], r, contents)
        })
    }

    /// Run the conjunctive intersection and decide which prefixes the VO
    /// must reveal (see [`Self::query_conjunctive`] for the strategy).
    fn conjunctive_outcome(&self, query: &Query, r: usize) -> ProcessingOutcome {
        let q = query.terms.len();
        if q == 0 {
            return ProcessingOutcome {
                result: QueryResult::default(),
                prefix_lens: Vec::new(),
                encountered: Vec::new(),
                iterations: 0,
            };
        }
        let fts: Vec<usize> = query
            .terms
            .iter()
            .map(|qt| self.index.list(qt.term).len())
            .collect();
        let anchor = crate::conjunctive::anchor_index(&fts);
        let candidates: Vec<DocId> = self
            .index
            .list(query.terms[anchor].term)
            .entries()
            .iter()
            .map(|e| e.doc)
            .collect();
        let wq: Vec<f64> = query.terms.iter().map(|qt| qt.wq).collect();
        let result = crate::conjunctive::rank_intersection(
            &candidates,
            &wq,
            |d, i| Some(self.doc_table.weight(d, query.terms[i].term)),
            r,
        )
        .expect("engine-side access is total");

        let (prefix_lens, encountered) = if self.config.mechanism.is_tra() {
            // Anchor revealed in full; other terms prove only their
            // signed root (zero-length prefix). Absence comes from the
            // candidates' document-MHT bounding pairs.
            let mut lens = vec![0usize; q];
            lens[anchor] = fts[anchor];
            (lens, candidates.clone())
        } else {
            // Every list revealed in full: absence by exhaustion.
            (fts, Vec::new())
        };
        ProcessingOutcome {
            result,
            prefix_lens,
            encountered,
            iterations: candidates.len(),
        }
    }

    /// Assemble the response for an already-computed processing outcome.
    pub(crate) fn respond<C: ContentProvider>(
        &self,
        query: &Query,
        outcome: ProcessingOutcome,
        contents: &C,
    ) -> QueryResponse {
        let mechanism = self.config.mechanism;
        let mut io = IoStats::new();
        let mut terms = Vec::with_capacity(query.terms.len());

        for (i, qt) in query.terms.iter().enumerate() {
            let k = outcome.prefix_lens[i];
            terms.push(self.build_term_vo(qt.term, k, &mut io));
        }

        // Document proofs (TRA only).
        let result_docs: BTreeSet<DocId> = outcome.result.docs().into_iter().collect();
        let docs = if mechanism.is_tra() {
            outcome
                .encountered
                .iter()
                .map(|&d| self.build_doc_vo(d, query, result_docs.contains(&d), &mut io))
                .collect()
        } else {
            Vec::new()
        };

        // Dictionary-MHT proof (one signature for the whole dictionary).
        // With the serve cache the tree was materialized once at build
        // time; the paper's storage model rehashes all m leaves here on
        // every query.
        let dict = self.dict_sig.as_ref().map(|sig| {
            let m = self.index.num_terms();
            let mut positions: Vec<usize> = query.terms.iter().map(|qt| qt.term as usize).collect();
            positions.sort_unstable();
            let proof = match &self.cache.dict_tree {
                Some(tree) => tree.prove(&positions),
                None => {
                    let leaves: Vec<_> = (0..m as TermId)
                        .map(|t| {
                            super::dict_leaf_digest(
                                t,
                                self.index.ft(t),
                                &self.term_roots[t as usize],
                            )
                        })
                        .collect();
                    MerkleTree::from_leaf_digests(leaves).prove(&positions)
                }
            };
            DictVo {
                num_terms: m as u32,
                proof,
                signature: sig.clone(),
            }
        });

        // Result document contents (retrieval cost excluded from the I/O
        // metric, as in §4.1: constant across all algorithms).
        let contents_out: Vec<(DocId, Vec<u8>)> = outcome
            .result
            .docs()
            .into_iter()
            .map(|d| (d, contents.content(d)))
            .collect();

        QueryResponse {
            result: outcome.result,
            vo: VerificationObject {
                mechanism,
                terms,
                docs,
                dict,
            },
            contents: contents_out,
            io,
            entries_read: outcome.prefix_lens,
        }
    }

    /// Build one term's VO entry and account its disk traffic.
    fn build_term_vo(&self, term: TermId, k: usize, io: &mut IoStats) -> TermVo {
        let config = &self.config;
        let list = self.index.list(term);
        let li = list.len();
        let leaf_bytes = config.term_leaf_bytes();
        let signature = if config.dict_mht {
            None
        } else {
            Some(self.term_sigs[term as usize].clone())
        };

        // Cached (or freshly regenerated, in paper mode) structure; both
        // paths produce bit-identical proofs. The I/O accounting below
        // keeps modeling the paper's on-disk layout in both modes.
        let structure = self.term_structure(term);

        match &*structure {
            TermStructure::Cmht(chain) => {
                let cap = config.chain_capacity();
                // Buddy-expand within the tail block (groups align per
                // block MHT).
                let kr = if k == 0 {
                    0
                } else if config.buddy {
                    let group = buddy_group_size(leaf_bytes, 16);
                    let jb = (k - 1) / cap;
                    let lo = jb * cap;
                    let block_len = cap.min(li - lo);
                    lo + expand_prefix(k - lo, block_len, group)
                } else {
                    k
                };
                let proof = TermProof::Cmht(chain.prove_prefix(kr));
                // Chain-MHT: only the blocks holding the prefix are read.
                io.sequential_run(chain.blocks_touched(kr) as u64);
                TermVo {
                    term,
                    ft: li as u32,
                    prefix: self.prefix_data(list, kr),
                    proof,
                    signature,
                }
            }
            TermStructure::Mht(tree) => {
                let kr = if config.buddy {
                    expand_prefix(k, li, buddy_group_size(leaf_bytes, 16))
                } else {
                    k
                };
                let revealed: Vec<usize> = (0..kr).collect();
                let proof = TermProof::Mht(tree.prove(&revealed));
                // Plain MHT: the whole list must be read to regenerate the
                // complementary digests (the §3.3.1 inefficiency).
                let stored_blocks = config
                    .layout
                    .blocks_for(li, config.layout.plain_capacity(ImpactEntry::BYTES));
                io.sequential_run(stored_blocks as u64);
                TermVo {
                    term,
                    ft: li as u32,
                    prefix: self.prefix_data(list, kr),
                    proof,
                    signature,
                }
            }
        }
    }

    fn prefix_data(&self, list: &authsearch_index::InvertedList, kr: usize) -> PrefixData {
        if self.config.mechanism.is_tra() {
            PrefixData::DocIds(list.entries()[..kr].iter().map(|e| e.doc).collect())
        } else {
            PrefixData::Entries(list.entries()[..kr].to_vec())
        }
    }

    /// Build one document's VO entry (TRA) and account the random fetch.
    fn build_doc_vo(&self, d: DocId, query: &Query, in_result: bool, io: &mut IoStats) -> DocVo {
        let leaves = self.doc_table.doc_terms(d);
        let n = leaves.len();

        // Required positions: query terms present, boundary pairs for
        // absent query terms.
        let mut required: BTreeSet<usize> = BTreeSet::new();
        for qt in &query.terms {
            match leaves.binary_search_by_key(&qt.term, |&(t, _)| t) {
                Ok(p) => {
                    required.insert(p);
                }
                Err(p) => {
                    // Bounding leaves prove the gap (paper §3.3.1: "the
                    // pair of consecutive terms that bound the query
                    // term").
                    if p > 0 {
                        required.insert(p - 1);
                    }
                    if p < n {
                        required.insert(p);
                    }
                }
            }
        }
        let required: Vec<usize> = required.into_iter().collect();
        let positions = if self.config.buddy {
            expand_buddies(&required, n, buddy_group_size(8, 16))
        } else {
            required
        };

        let revealed: Vec<(u32, TermId, f32)> = positions
            .iter()
            .map(|&p| (p as u32, leaves[p].0, leaves[p].1))
            .collect();
        // Cached (or regenerated, in paper mode) document-MHT — same
        // bit-identity contract as the term structures.
        let proof = match self.doc_structure(d) {
            None => authsearch_crypto::MerkleProof::default(),
            Some(tree) => tree.prove(&positions),
        };

        // Random fetch: the document-MHT spans its leaves plus the stored
        // root and signature.
        let mht_bytes = n * 8 + 16 + self.doc_sigs[d as usize].len();
        io.random_access(self.config.layout.blocks_for_bytes(mht_bytes) as u64);

        debug_assert_eq!(doc_root(leaves), doc_root(self.doc_table.doc_terms(d)));

        DocVo {
            doc: d,
            num_leaves: n as u32,
            revealed,
            proof,
            content_digest: if in_result {
                None
            } else {
                Some(self.doc_content_digests[d as usize])
            },
            signature: self.doc_sigs[d as usize].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    fn auth(mechanism: Mechanism) -> AuthenticatedIndex {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents())
    }

    #[test]
    fn tra_response_has_doc_proofs() {
        let a = auth(Mechanism::TraMht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        assert_eq!(resp.result.docs(), vec![6, 5]);
        assert_eq!(resp.vo.terms.len(), 4);
        // Encountered docs 5, 3, 6 plus cut-off doc 1.
        let doc_ids: Vec<DocId> = resp.vo.docs.iter().map(|d| d.doc).collect();
        assert_eq!(doc_ids, vec![5, 3, 6, 1]);
        // Result docs ship contents, not content digests.
        for dv in &resp.vo.docs {
            let is_result = resp.result.docs().contains(&dv.doc);
            assert_eq!(dv.content_digest.is_none(), is_result, "doc {}", dv.doc);
        }
        assert_eq!(resp.contents.len(), 2);
    }

    #[test]
    fn tnra_response_has_no_doc_proofs() {
        let a = auth(Mechanism::TnraCmht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        assert_eq!(resp.result.docs(), vec![6, 5]);
        assert!(resp.vo.docs.is_empty());
        // Prefixes carry full impact entries.
        assert!(matches!(resp.vo.terms[0].prefix, PrefixData::Entries(_)));
    }

    #[test]
    fn entries_read_match_figure6_and_11() {
        // TRA (Figure 6): sleeps 1, in 1, the 4, dark 1.
        let a = auth(Mechanism::TraMht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        assert_eq!(resp.entries_read, vec![1, 1, 4, 1]);
        // TNRA (Figure 11): sleeps 1, in 4, the 4, dark 1.
        let b = auth(Mechanism::TnraMht);
        let resp = b.query(&toy_query(), 2, &toy_contents());
        assert_eq!(resp.entries_read, vec![1, 4, 4, 1]);
    }

    #[test]
    fn mht_variant_reads_whole_lists() {
        let a = auth(Mechanism::TnraMht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        // 4 lists, each ≤ 127 entries → one block per list, 4 seeks.
        assert_eq!(resp.io.seeks, 4);
        assert_eq!(resp.io.blocks, 4);
    }

    #[test]
    fn tra_random_accesses_encountered_docs() {
        let a = auth(Mechanism::TraCmht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        // 4 list runs + 4 encountered document fetches.
        assert_eq!(resp.io.seeks, 8);
    }

    #[test]
    fn buddy_pads_prefixes_in_cmht() {
        let a = auth(Mechanism::TnraCmht);
        let resp = a.query(&toy_query(), 2, &toy_contents());
        // 'the' read 4 entries; buddy group for 8-byte leaves is 4 → no
        // padding; 'in' read 4 → no padding; singleton lists read 1 and
        // pad to min(group, len) = 1.
        for tv in &resp.vo.terms {
            assert!(!tv.prefix.is_empty());
        }
        let the_vo = resp
            .vo
            .terms
            .iter()
            .find(|t| t.term == crate::toy::toy_term_id("the"))
            .unwrap();
        assert_eq!(the_vo.prefix.len(), 4);
    }

    #[test]
    fn vo_sizes_are_positive_and_tnra_smaller() {
        let tra = auth(Mechanism::TraMht).query(&toy_query(), 2, &toy_contents());
        let tnra = auth(Mechanism::TnraMht).query(&toy_query(), 2, &toy_contents());
        let ts = tra.vo.size();
        let ns = tnra.vo.size();
        assert!(ts.total() > 0 && ns.total() > 0);
        // §4.2: TRA VOs are several times larger than TNRA's.
        assert!(ts.total() > ns.total());
    }

    #[test]
    fn cached_and_paper_modes_produce_identical_responses() {
        // The tentpole invariant: the serve cache changes CPU cost only.
        // Every proof, root, signature, prefix, and I/O trace must be
        // bit-identical between cached and regenerate-from-leaves modes.
        let key = cached_keypair(TEST_KEY_BITS);
        for mechanism in Mechanism::ALL {
            let build = |serve_cache: bool| {
                AuthenticatedIndex::build(
                    toy_index(),
                    &key,
                    AuthConfig {
                        key_bits: TEST_KEY_BITS,
                        serve_cache,
                        ..AuthConfig::new(mechanism)
                    },
                    &toy_contents(),
                )
            };
            let cached = build(true);
            let paper = build(false);
            for r in [1usize, 2, 5] {
                // Query twice so the second cached response is served
                // from warm structures.
                let _ = cached.query(&toy_query(), r, &toy_contents());
                let warm = cached.query(&toy_query(), r, &toy_contents());
                let cold = paper.query(&toy_query(), r, &toy_contents());
                assert_eq!(warm.vo, cold.vo, "{mechanism:?} r={r}");
                assert_eq!(warm.result, cold.result, "{mechanism:?} r={r}");
                assert_eq!(warm.io, cold.io, "{mechanism:?} r={r}");
                assert_eq!(warm.entries_read, cold.entries_read);
            }
            assert!(cached.cache_stats().hits > 0);
            assert_eq!(paper.cache_stats().hits, 0);
        }
    }

    #[test]
    fn cached_and_paper_dict_proofs_identical() {
        let key = cached_keypair(TEST_KEY_BITS);
        let build = |serve_cache: bool| {
            AuthenticatedIndex::build(
                toy_index(),
                &key,
                AuthConfig {
                    key_bits: TEST_KEY_BITS,
                    dict_mht: true,
                    serve_cache,
                    ..AuthConfig::new(Mechanism::TnraMht)
                },
                &toy_contents(),
            )
        };
        let cached = build(true).query(&toy_query(), 2, &toy_contents());
        let paper = build(false).query(&toy_query(), 2, &toy_contents());
        assert_eq!(cached.vo.dict, paper.vo.dict);
        assert_eq!(cached.vo, paper.vo);
    }

    #[test]
    fn lru_eviction_keeps_responses_correct() {
        // A capacity-1 cache thrashes on a 4-term query; responses must
        // still verify and match the uncached ones.
        let key = cached_keypair(TEST_KEY_BITS);
        let tiny_cache = AuthenticatedIndex::build(
            toy_index(),
            &key,
            AuthConfig {
                key_bits: TEST_KEY_BITS,
                term_cache_capacity: 1,
                ..AuthConfig::new(Mechanism::TnraCmht)
            },
            &toy_contents(),
        );
        let reference = auth(Mechanism::TnraCmht);
        let a = tiny_cache.query(&toy_query(), 2, &toy_contents());
        let b = reference.query(&toy_query(), 2, &toy_contents());
        assert_eq!(a.vo, b.vo);
        let stats = tiny_cache.cache_stats();
        assert_eq!(stats.resident_terms, 1);
        assert!(stats.misses >= 4);
    }

    #[test]
    fn conjunctive_toy_intersects_to_d6() {
        // Figure 1: d6 is the only document containing all four query
        // terms, so the conjunctive answer is exactly [6] and its score
        // matches the disjunctive top-1 score for d6.
        for mechanism in Mechanism::ALL {
            let a = auth(mechanism);
            let conj = a.query_conjunctive(&toy_query(), 2, &toy_contents());
            assert_eq!(conj.result.docs(), vec![6], "{mechanism:?}");
            let disj = a.query(&toy_query(), 2, &toy_contents());
            let d6 = disj.result.entries.iter().find(|e| e.doc == 6).unwrap();
            // Same formula, but the conjunctive path accumulates in
            // query-term order while the threshold algorithm accumulates
            // in pop order — identical up to f64 rounding.
            assert!(
                (conj.result.entries[0].score - d6.score).abs() < 1e-9,
                "{mechanism:?}"
            );
            assert_eq!(conj.contents.len(), 1);
            assert_eq!(conj.contents[0].0, 6);
        }
    }

    #[test]
    fn conjunctive_tra_reveals_anchor_only() {
        let a = auth(Mechanism::TraMht);
        let resp = a.query_conjunctive(&toy_query(), 2, &toy_contents());
        let fts: Vec<usize> = toy_query()
            .terms
            .iter()
            .map(|qt| a.index().list(qt.term).len())
            .collect();
        let anchor = crate::conjunctive::anchor_index(&fts);
        for (i, tv) in resp.vo.terms.iter().enumerate() {
            let want = if i == anchor { fts[i] } else { 0 };
            assert_eq!(tv.prefix.len(), want, "term #{i}");
            assert_eq!(resp.entries_read[i], want);
        }
        // One document proof per anchor-list document, in list order.
        let anchor_docs: Vec<DocId> = a
            .index()
            .list(toy_query().terms[anchor].term)
            .entries()
            .iter()
            .map(|e| e.doc)
            .collect();
        let proved: Vec<DocId> = resp.vo.docs.iter().map(|d| d.doc).collect();
        assert_eq!(proved, anchor_docs);
    }

    #[test]
    fn conjunctive_tnra_reveals_every_list_in_full() {
        for mechanism in [Mechanism::TnraMht, Mechanism::TnraCmht] {
            let a = auth(mechanism);
            let resp = a.query_conjunctive(&toy_query(), 2, &toy_contents());
            assert!(resp.vo.docs.is_empty(), "{mechanism:?}");
            for (tv, qt) in resp.vo.terms.iter().zip(&toy_query().terms) {
                assert_eq!(
                    tv.prefix.len(),
                    a.index().list(qt.term).len(),
                    "{mechanism:?} term {}",
                    qt.term
                );
            }
        }
    }

    #[test]
    fn empty_conjunctive_query_is_empty_response() {
        let a = auth(Mechanism::TraCmht);
        let resp = a.query_conjunctive(&Query::default(), 5, &toy_contents());
        assert!(resp.result.entries.is_empty());
        assert!(resp.vo.terms.is_empty());
        assert!(resp.contents.is_empty());
    }

    #[test]
    fn serve_batch_conjunctive_matches_sequential() {
        let a = auth(Mechanism::TnraCmht);
        let queries = vec![toy_query(), Query::default(), toy_query()];
        let batch = a.serve_batch_conjunctive(&queries, 2, &toy_contents());
        for (i, (got, q)) in batch.iter().zip(&queries).enumerate() {
            let want = a.query_conjunctive(q, 2, &toy_contents());
            assert_eq!(got.vo, want.vo, "query {i}");
            assert_eq!(got.result, want.result, "query {i}");
        }
    }

    #[test]
    fn dict_mode_emits_dict_proof() {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht: true,
            ..AuthConfig::new(Mechanism::TnraMht)
        };
        let a = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
        let resp = a.query(&toy_query(), 2, &toy_contents());
        assert!(resp.vo.dict.is_some());
        assert!(resp.vo.terms.iter().all(|t| t.signature.is_none()));
    }
}
