//! Crash-safe authenticated snapshots: persist the *entire* owner
//! artifact ([`AuthenticatedIndex`]) and boot it back trust-but-verify.
//!
//! The paper's owner transfers the collection and index to the
//! untrusted engine once; rebuilding the artifact on every server start
//! re-pays the owner's dominant preprocessing cost (one RSA signature
//! per term, plus one per document for TRA) for nothing. A snapshot
//! reloads in near-O(1) — parsing plus cheap hashing, no signing.
//!
//! ## Container layout
//!
//! One [`authsearch_index::persist`] v2 container (`ASNP` magic,
//! version 2) holding three digest-trailed sections, in order:
//!
//! | tag    | payload |
//! |--------|---------|
//! | `ACFG` | artifact identity: mechanism, buddy, dict-MHT mode, key bits, block layout |
//! | `ASIX` | the inverted index (the v1 `ASIX` record, re-framed as a checksummed section) |
//! | `ASAU` | the authentication artifact: term roots, term/dictionary/document signatures, document content digests, the owner's public key |
//!
//! ## Trust model at boot
//!
//! The file is **attacker bytes** (the engine host is untrusted and bit
//! rot is indistinguishable from tampering), so loading is layered:
//!
//! 1. structural parse under the container's length framing, per-section
//!    digest trailers, and clamped pre-allocations — random corruption
//!    (every fault the [`authsearch_index::faults`] harness injects)
//!    dies here as a typed [`PersistError`];
//! 2. identity check of `ACFG` against the caller's expected
//!    [`AuthConfig`] — a snapshot of a *different* artifact is
//!    [`PersistError::Stale`], not silently served;
//! 3. **signature verification** against the embedded public key:
//!    the dictionary-MHT signature over the root recomputed from the
//!    loaded term roots (dictionary mode), or a deterministic sample of
//!    per-term (and, for TRA, per-document) signatures otherwise.
//!
//! A forgery that survives all three (consistent digests *and* valid
//! signatures over altered data) would require breaking the owner's
//! RSA key — and even then, the per-query VO verification at the client
//! remains: a VO built from tampered structures cannot verify, so no
//! wrong answer is ever *accepted*, only detected later than boot.

use super::{
    cache, dict_leaf_digest, dict_message, doc_message, doc_root, term_message, AuthConfig,
    AuthenticatedIndex,
};
use crate::types::DocTable;
use crate::vo::Mechanism;
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{Digest, MerkleTree, RsaPublicKey, DIGEST_LEN};
use authsearch_index::persist::{
    self, put_str, put_u32, put_u64, PersistError, SectionReader, SectionTag,
};
use authsearch_index::SnapshotInfo;
use std::io::Cursor;
use std::path::Path;
use std::sync::Mutex;

/// Section tags of the authenticated snapshot, in file order.
pub const TAG_CONFIG: SectionTag = *b"ACFG";
/// The inverted-index section (the v1 `ASIX` record as a section).
pub const TAG_INDEX: SectionTag = *b"ASIX";
/// The authentication-artifact section.
pub const TAG_AUTH: SectionTag = *b"ASAU";

/// How many term (and document) signatures the non-dictionary boot
/// check verifies, spread evenly across the artifact. The section
/// digests already pin the exact saved bytes; the sample proves those
/// bytes carry the *owner's* endorsement without paying O(m) RSA
/// verifications on every boot.
const BOOT_SIG_SAMPLES: usize = 16;

fn corrupt(why: impl Into<String>) -> PersistError {
    PersistError::Corrupt(why.into())
}

fn stale(why: impl Into<String>) -> PersistError {
    PersistError::Stale(why.into())
}

fn mechanism_code(m: Mechanism) -> u8 {
    // Must stay in step with `Mechanism::ALL` — `mechanism_from_code`
    // is the inverse, and the round-trip is asserted in tests.
    match m {
        Mechanism::TraMht => 0,
        Mechanism::TraCmht => 1,
        Mechanism::TnraMht => 2,
        Mechanism::TnraCmht => 3,
    }
}

fn mechanism_from_code(code: u8) -> Option<Mechanism> {
    Mechanism::ALL.get(code as usize).copied()
}

// ---- section codecs -------------------------------------------------------

fn encode_config(config: &AuthConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(3 + 4 * 8);
    buf.push(mechanism_code(config.mechanism));
    buf.push(u8::from(config.buddy));
    buf.push(u8::from(config.dict_mht));
    let _ = put_u64(&mut buf, config.key_bits as u64);
    let _ = put_u64(&mut buf, config.layout.block_bytes as u64);
    let _ = put_u64(&mut buf, config.layout.addr_bytes as u64);
    let _ = put_u64(&mut buf, config.layout.digest_bytes as u64);
    buf
}

/// Check the artifact identity the snapshot declares against what the
/// caller expects. Runtime knobs (caches, threads) are deliberately
/// *not* part of identity — they are the caller's to choose at boot.
fn check_config(payload: &[u8], expected: &AuthConfig) -> Result<(), PersistError> {
    let mut r = SectionReader::new(payload, "ACFG");
    let mechanism =
        mechanism_from_code(r.u8()?).ok_or_else(|| corrupt("ACFG: unknown mechanism code"))?;
    let buddy = r.u8()? != 0;
    let dict_mht = r.u8()? != 0;
    let key_bits = r.u64()? as usize;
    let block_bytes = r.u64()? as usize;
    let addr_bytes = r.u64()? as usize;
    let digest_bytes = r.u64()? as usize;
    r.finish()?;
    let same = mechanism == expected.mechanism
        && buddy == expected.buddy
        && dict_mht == expected.dict_mht
        && key_bits == expected.key_bits
        && block_bytes == expected.layout.block_bytes
        && addr_bytes == expected.layout.addr_bytes
        && digest_bytes == expected.layout.digest_bytes;
    if !same {
        return Err(stale(format!(
            "snapshot artifact is {mechanism:?} (buddy={buddy}, dict_mht={dict_mht}, \
             key_bits={key_bits}), expected {:?} (buddy={}, dict_mht={}, key_bits={})",
            expected.mechanism, expected.buddy, expected.dict_mht, expected.key_bits
        )));
    }
    Ok(())
}

fn put_sig(buf: &mut Vec<u8>, sig: &[u8]) -> Result<(), PersistError> {
    let len = u32::try_from(sig.len()).map_err(|_| corrupt("signature length exceeds u32"))?;
    let _ = put_u32(buf, len);
    buf.extend_from_slice(sig);
    Ok(())
}

fn get_sig<'a>(r: &mut SectionReader<'a>, what: &str) -> Result<&'a [u8], PersistError> {
    let len = r.u32()? as usize;
    if len == 0 || len > r.remaining() {
        return Err(corrupt(format!("ASAU: {what} signature length forged")));
    }
    r.bytes(len)
}

fn encode_auth(auth: &AuthenticatedIndex) -> Result<Vec<u8>, PersistError> {
    let mut buf = Vec::new();
    let _ = put_u64(&mut buf, auth.term_roots.len() as u64);
    for root in &auth.term_roots {
        buf.extend_from_slice(root.as_bytes());
    }
    let _ = put_u64(&mut buf, auth.term_sigs.len() as u64);
    for sig in &auth.term_sigs {
        put_sig(&mut buf, sig)?;
    }
    match &auth.dict_sig {
        Some(sig) => {
            buf.push(1);
            put_sig(&mut buf, sig)?;
        }
        None => buf.push(0),
    }
    let _ = put_u64(&mut buf, auth.doc_content_digests.len() as u64);
    for d in &auth.doc_content_digests {
        buf.extend_from_slice(d.as_bytes());
    }
    let _ = put_u64(&mut buf, auth.doc_sigs.len() as u64);
    for sig in &auth.doc_sigs {
        put_sig(&mut buf, sig)?;
    }
    let _ = put_str(&mut buf, "").map_err(PersistError::Io); // reserved (future key metadata)
    let key = auth.public_key.to_bytes();
    let key_len = u32::try_from(key.len()).map_err(|_| corrupt("public key length exceeds u32"))?;
    let _ = put_u32(&mut buf, key_len);
    buf.extend_from_slice(&key);
    Ok(buf)
}

struct AuthParts {
    term_roots: Vec<Digest>,
    term_sigs: Vec<Vec<u8>>,
    dict_sig: Option<Vec<u8>>,
    doc_content_digests: Vec<Digest>,
    doc_sigs: Vec<Vec<u8>>,
    public_key: RsaPublicKey,
}

fn decode_auth(payload: &[u8]) -> Result<AuthParts, PersistError> {
    let mut r = SectionReader::new(payload, "ASAU");

    let claimed = r.u64()?;
    let m = r.checked_count(claimed, DIGEST_LEN, "term root")?;
    let mut term_roots = Vec::with_capacity(m.min(persist::PREALLOC_CLAMP));
    for _ in 0..m {
        term_roots.push(
            Digest::from_slice(r.bytes(DIGEST_LEN)?)
                .ok_or_else(|| corrupt("ASAU: malformed term-root digest"))?,
        );
    }

    let claimed = r.u64()?;
    let sig_count = r.checked_count(claimed, 4, "term signature")?;
    let mut term_sigs = Vec::with_capacity(sig_count.min(persist::PREALLOC_CLAMP));
    for _ in 0..sig_count {
        term_sigs.push(get_sig(&mut r, "term")?.to_vec());
    }

    let dict_sig = match r.u8()? {
        0 => None,
        1 => Some(get_sig(&mut r, "dictionary")?.to_vec()),
        _ => return Err(corrupt("ASAU: bad dictionary-signature flag")),
    };

    let claimed = r.u64()?;
    let nd = r.checked_count(claimed, DIGEST_LEN, "doc digest")?;
    let mut doc_content_digests = Vec::with_capacity(nd.min(persist::PREALLOC_CLAMP));
    for _ in 0..nd {
        doc_content_digests.push(
            Digest::from_slice(r.bytes(DIGEST_LEN)?)
                .ok_or_else(|| corrupt("ASAU: malformed doc content digest"))?,
        );
    }

    let claimed = r.u64()?;
    let ns = r.checked_count(claimed, 4, "doc signature")?;
    let mut doc_sigs = Vec::with_capacity(ns.min(persist::PREALLOC_CLAMP));
    for _ in 0..ns {
        doc_sigs.push(get_sig(&mut r, "doc")?.to_vec());
    }

    let reserved = r.u32()? as usize;
    if reserved != 0 {
        // Skip forward-compatible metadata written by a newer minor
        // revision; its bytes are still digest-protected.
        let _ = r.bytes(reserved)?;
    }
    let key_len = r.u32()? as usize;
    if key_len == 0 || key_len > r.remaining() {
        return Err(corrupt("ASAU: public-key length forged"));
    }
    let public_key = RsaPublicKey::from_bytes(r.bytes(key_len)?)
        .ok_or_else(|| corrupt("ASAU: public key fails to parse"))?;
    r.finish()?;

    Ok(AuthParts {
        term_roots,
        term_sigs,
        dict_sig,
        doc_content_digests,
        doc_sigs,
        public_key,
    })
}

/// Evenly spread sample of `count ≤ len` indices, endpoints included.
fn sample_indices(len: usize, count: usize) -> Vec<usize> {
    if len <= count {
        return (0..len).collect();
    }
    let mut out: Vec<usize> = (0..count).map(|k| k * (len - 1) / (count - 1)).collect();
    out.dedup();
    out
}

// ---- save / load ----------------------------------------------------------

impl AuthenticatedIndex {
    /// Persist the whole artifact to `path` crash-safely: encode the
    /// three-section container, then commit it through the
    /// write-temp → flush → fsync → atomic-rename (+ manifest) protocol
    /// of [`persist::save_snapshot_file`]. A crash at any byte leaves
    /// the previous snapshot (or its absence) loadable.
    pub fn save_snapshot(&self, path: &Path) -> Result<SnapshotInfo, PersistError> {
        let mut index_payload = Vec::new();
        persist::write_index(&mut index_payload, &self.index)?;
        let sections = vec![
            (TAG_CONFIG, encode_config(&self.config)),
            (TAG_INDEX, index_payload),
            (TAG_AUTH, encode_auth(self)?),
        ];
        let bytes = persist::encode_snapshot(&sections)?;
        persist::save_snapshot_file(path, &bytes)
    }

    /// Reload an artifact saved by [`AuthenticatedIndex::save_snapshot`],
    /// verifying it end to end before it can serve a single query — see
    /// the [module docs](self) for the three verification layers.
    /// `expected` supplies both the identity the snapshot must match
    /// (mechanism, buddy, dictionary mode, key bits, layout) and the
    /// runtime knobs (caches, threads) the reloaded engine should run
    /// with.
    pub fn load_snapshot(
        path: &Path,
        expected: &AuthConfig,
    ) -> Result<AuthenticatedIndex, PersistError> {
        let (sections, _info) = persist::load_snapshot_file(path)?;
        let [config_s, index_s, auth_s] = match sections.as_slice() {
            [a, b, c] => [a, b, c],
            other => {
                return Err(corrupt(format!(
                    "expected 3 sections, found {}",
                    other.len()
                )))
            }
        };
        for ((tag, _), want) in [config_s, index_s, auth_s]
            .iter()
            .zip([TAG_CONFIG, TAG_INDEX, TAG_AUTH])
        {
            if *tag != want {
                return Err(corrupt(format!(
                    "section order: found {:?}, want {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(&want)
                )));
            }
        }

        check_config(&config_s.1, expected)?;
        let index = persist::read_index(&mut Cursor::new(&index_s.1))?;
        let parts = decode_auth(&auth_s.1)?;

        // Cross-checks: the sections must describe one coherent artifact.
        let m = index.num_terms();
        let n = index.num_docs();
        if parts.term_roots.len() != m {
            return Err(corrupt(format!(
                "{} term roots for {m} terms",
                parts.term_roots.len()
            )));
        }
        if expected.dict_mht {
            if parts.dict_sig.is_none() || !parts.term_sigs.is_empty() {
                return Err(corrupt(
                    "dictionary mode needs a dict signature and no term sigs",
                ));
            }
        } else if parts.term_sigs.len() != m || parts.dict_sig.is_some() {
            return Err(corrupt(format!(
                "{} term signatures for {m} terms",
                parts.term_sigs.len()
            )));
        }
        if expected.mechanism.is_tra() {
            if parts.doc_content_digests.len() != n || parts.doc_sigs.len() != n {
                return Err(corrupt(format!(
                    "{} doc digests / {} doc signatures for {n} documents",
                    parts.doc_content_digests.len(),
                    parts.doc_sigs.len()
                )));
            }
        } else if !parts.doc_content_digests.is_empty() || !parts.doc_sigs.is_empty() {
            return Err(corrupt("TNRA snapshot carries document structures"));
        }
        if parts.public_key.modulus_bits() != expected.key_bits {
            return Err(stale(format!(
                "snapshot key is {} bits, expected {}",
                parts.public_key.modulus_bits(),
                expected.key_bits
            )));
        }

        // Boot-time signature verification: prove the loaded roots carry
        // the owner's endorsement before serving anything.
        let doc_table = DocTable::from_index(&index);
        let mut serve_cache = cache::ServeCache::new(expected);
        if expected.dict_mht {
            let leaves: Vec<Digest> = parts
                .term_roots
                .iter()
                .enumerate()
                .map(|(t, root)| dict_leaf_digest(t as TermId, index.ft(t as TermId), root))
                .collect();
            let tree = MerkleTree::from_leaf_digests(leaves);
            let msg = dict_message(m as u32, &tree.root());
            let Some(dict_sig) = parts.dict_sig.as_deref() else {
                return Err(corrupt("dictionary mode without a dictionary signature"));
            };
            parts
                .public_key
                .verify(&msg, dict_sig)
                .map_err(|e| corrupt(format!("dictionary signature rejected at boot: {e}")))?;
            if expected.serve_cache {
                serve_cache.dict_tree = Some(tree);
            }
        } else {
            for t in sample_indices(m, BOOT_SIG_SAMPLES) {
                let (root, sig) = parts
                    .term_roots
                    .get(t)
                    .zip(parts.term_sigs.get(t))
                    .ok_or_else(|| corrupt(format!("sampled term {t} out of range")))?;
                let msg = term_message(t as TermId, index.ft(t as TermId), root);
                parts
                    .public_key
                    .verify(&msg, sig)
                    .map_err(|e| corrupt(format!("term {t} signature rejected at boot: {e}")))?;
            }
        }
        if expected.mechanism.is_tra() {
            for d in sample_indices(n, BOOT_SIG_SAMPLES) {
                let (digest, sig) = parts
                    .doc_content_digests
                    .get(d)
                    .zip(parts.doc_sigs.get(d))
                    .ok_or_else(|| corrupt(format!("sampled doc {d} out of range")))?;
                let root = doc_root(doc_table.doc_terms(d as DocId));
                let msg = doc_message(d as DocId, digest, &root);
                parts
                    .public_key
                    .verify(&msg, sig)
                    .map_err(|e| corrupt(format!("doc {d} signature rejected at boot: {e}")))?;
            }
        }

        Ok(AuthenticatedIndex {
            config: *expected,
            index,
            doc_table,
            term_roots: parts.term_roots,
            term_sigs: parts.term_sigs,
            dict_sig: parts.dict_sig,
            doc_content_digests: parts.doc_content_digests,
            doc_sigs: parts.doc_sigs,
            public_key: parts.public_key,
            cache: serve_cache,
            // Lazily (re)created at first use — a loaded artifact has no
            // build pool to inherit.
            serve_pool: Mutex::new(None),
        })
    }
}

// ---- boot decision tree ---------------------------------------------------

/// Where a booted engine's artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootSource {
    /// Loaded and verified from the snapshot file — no rebuild.
    Snapshot,
    /// Rebuilt from scratch (snapshot missing, stale, or corrupt — see
    /// [`BootReport::reason`]).
    FreshBuild,
}

/// What [`boot_authenticated_index`] did and why.
#[derive(Debug, Clone)]
pub struct BootReport {
    /// Snapshot or fresh build.
    pub source: BootSource,
    /// Why the snapshot path was not used (`None` on the happy path).
    pub reason: Option<String>,
    /// After a fresh build with a snapshot path configured: whether the
    /// rebuilt artifact was saved back so the *next* boot is fast.
    pub healed: bool,
}

/// The boot decision tree: try the snapshot, fall back to building.
///
/// * no `path` → build (reason: unconfigured);
/// * snapshot loads and verifies against `expected` → serve it;
/// * snapshot missing / stale / corrupt → `fallback()` builds fresh,
///   and the fresh artifact is written back to `path` (best effort) so
///   the failure is healed for the next boot.
///
/// Never panics on snapshot trouble: every failure mode lands in
/// `fallback` with the typed error preserved in [`BootReport::reason`].
pub fn boot_authenticated_index<F>(
    path: Option<&Path>,
    expected: &AuthConfig,
    fallback: F,
) -> (AuthenticatedIndex, BootReport)
where
    F: FnOnce() -> AuthenticatedIndex,
{
    let Some(path) = path else {
        let auth = fallback();
        return (
            auth,
            BootReport {
                source: BootSource::FreshBuild,
                reason: Some("no snapshot path configured".into()),
                healed: false,
            },
        );
    };
    match AuthenticatedIndex::load_snapshot(path, expected) {
        Ok(auth) => (
            auth,
            BootReport {
                source: BootSource::Snapshot,
                reason: None,
                healed: false,
            },
        ),
        Err(e) => {
            let auth = fallback();
            let healed = auth.save_snapshot(path).is_ok();
            (
                auth,
                BootReport {
                    source: BootSource::FreshBuild,
                    reason: Some(e.to_string()),
                    healed,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::tests_support::test_auth;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
    use std::fs;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("authsearch-auth-snapshot");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn dict_auth() -> AuthenticatedIndex {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht: true,
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents())
    }

    #[test]
    fn mechanism_code_round_trips_for_every_mechanism() {
        // `mechanism_code` is a hand-written match while
        // `mechanism_from_code` indexes `Mechanism::ALL`; if the two ever
        // drift, a snapshot saved under one mechanism would boot as
        // another. Assert the full round-trip in both directions.
        for (i, &m) in Mechanism::ALL.iter().enumerate() {
            let code = mechanism_code(m);
            assert_eq!(code as usize, i, "{m:?} must encode as its ALL index");
            assert_eq!(mechanism_from_code(code), Some(m), "{m:?}");
        }
        assert_eq!(mechanism_from_code(Mechanism::ALL.len() as u8), None);
        assert_eq!(mechanism_from_code(u8::MAX), None);
    }

    #[test]
    fn roundtrip_serves_identical_vos_for_every_mechanism() {
        for mechanism in Mechanism::ALL {
            let auth = test_auth(mechanism, true);
            let path = temp_path(&format!("roundtrip-{mechanism:?}.snap"));
            let info = auth.save_snapshot(&path).unwrap();
            assert!(info.bytes > 0);
            let loaded = AuthenticatedIndex::load_snapshot(&path, auth.config()).unwrap();
            let a = auth.query(&toy_query(), 2, &toy_contents());
            let b = loaded.query(&toy_query(), 2, &toy_contents());
            assert_eq!(a.result, b.result, "{mechanism:?}");
            assert_eq!(a.vo, b.vo, "{mechanism:?}: VOs must be byte-identical");
            fs::remove_file(&path).ok();
            fs::remove_file(persist::manifest_path(&path)).ok();
        }
    }

    #[test]
    fn roundtrip_in_dictionary_mht_mode() {
        let auth = dict_auth();
        let path = temp_path("roundtrip-dict.snap");
        auth.save_snapshot(&path).unwrap();
        let loaded = AuthenticatedIndex::load_snapshot(&path, auth.config()).unwrap();
        let a = auth.query(&toy_query(), 2, &toy_contents());
        let b = loaded.query(&toy_query(), 2, &toy_contents());
        assert_eq!(a.vo, b.vo);
        // The dictionary tree rebuilt at boot is the serving tree.
        assert!(loaded.cache.dict_tree.is_some());
        fs::remove_file(&path).ok();
        fs::remove_file(persist::manifest_path(&path)).ok();
    }

    #[test]
    fn mismatched_config_is_stale_not_corrupt() {
        let auth = test_auth(Mechanism::TnraCmht, true);
        let path = temp_path("stale.snap");
        auth.save_snapshot(&path).unwrap();
        let other = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraMht)
        };
        match AuthenticatedIndex::load_snapshot(&path, &other) {
            Err(PersistError::Stale(why)) => assert!(why.contains("TnraCmht"), "{why}"),
            other => panic!("expected Stale, got {other:?}"),
        }
        fs::remove_file(&path).ok();
        fs::remove_file(persist::manifest_path(&path)).ok();
    }

    #[test]
    fn tampered_auth_section_is_rejected() {
        let auth = test_auth(Mechanism::TraMht, true);
        let path = temp_path("tampered.snap");
        auth.save_snapshot(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit near the end (inside the ASAU section payload).
        let at = bytes.len() - 40;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match AuthenticatedIndex::load_snapshot(&path, auth.config()) {
            Err(PersistError::SectionDigest { .. }) | Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected a corruption error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
        fs::remove_file(persist::manifest_path(&path)).ok();
    }

    #[test]
    fn boot_heals_a_missing_snapshot_then_loads_it() {
        let path = temp_path("boot-heal.snap");
        fs::remove_file(&path).ok();
        fs::remove_file(persist::manifest_path(&path)).ok();
        let reference = test_auth(Mechanism::TnraMht, true);
        let expected = *reference.config();

        let (first, report) = boot_authenticated_index(Some(&path), &expected, || {
            test_auth(Mechanism::TnraMht, true)
        });
        assert_eq!(report.source, BootSource::FreshBuild);
        assert!(report.reason.is_some());
        assert!(report.healed, "fresh build should be saved back");

        let (second, report) = boot_authenticated_index(Some(&path), &expected, || {
            panic!("snapshot exists; fallback must not run")
        });
        assert_eq!(report.source, BootSource::Snapshot);
        assert_eq!(report.reason, None);
        let a = first.query(&toy_query(), 2, &toy_contents());
        let b = second.query(&toy_query(), 2, &toy_contents());
        assert_eq!(a.vo, b.vo);

        let (_, report) =
            boot_authenticated_index(None, &expected, || test_auth(Mechanism::TnraMht, true));
        assert_eq!(report.source, BootSource::FreshBuild);
        assert!(!report.healed);
        fs::remove_file(&path).ok();
        fs::remove_file(persist::manifest_path(&path)).ok();
    }
}
