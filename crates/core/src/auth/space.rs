//! Storage accounting for the authentication structures (§4.1: "The
//! authentication information introduced by TNRA requires less than 1%
//! extra space over a plain, non-authenticated inverted index, while TRA
//! requires around 25% more space (due to its document-MHTs)").

use super::cache::mht_resident_digests;
use super::AuthenticatedIndex;
use authsearch_corpus::TermId;
use authsearch_crypto::DIGEST_LEN;
use authsearch_index::ImpactEntry;

/// Byte-level storage breakdown of an authenticated index, covering both
/// serving modes: the paper's regenerate-from-leaves model (disk only)
/// and the cached mode, which additionally holds materialized structures
/// in engine RAM (see the `auth::cache` module and [`super::CacheStats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceReport {
    /// Plain (unauthenticated) index: dictionary plus block-padded
    /// postings storage.
    pub plain_index_bytes: u64,
    /// Raw document contents (the collection itself), as reported by the
    /// caller.
    pub contents_bytes: u64,
    /// Term-side authentication: signatures, stored roots/heads, and the
    /// change in list storage from re-blocking (chain blocks hold fewer
    /// entries than plain blocks, but TRA chain blocks hold doc ids only).
    pub term_auth_bytes: i64,
    /// Document-side authentication (TRA): the document-MHT leaf layer
    /// plus per-document root and signature.
    pub doc_auth_bytes: u64,
    /// Worst-case engine RAM held by the serve cache: the materialized
    /// dictionary-MHT plus the term-structure LRU filled with the
    /// `term_cache_capacity` longest lists. Zero in paper mode
    /// (`serve_cache: false`) — that mode's whole point is storing
    /// nothing beyond roots and leaves.
    pub cache_resident_bytes: u64,
}

impl SpaceReport {
    /// Total extra bytes attributable to authentication under the
    /// paper's storage model (what must persist on disk — identical in
    /// both serving modes).
    pub fn auth_extra_bytes(&self) -> i64 {
        self.term_auth_bytes + self.doc_auth_bytes as i64
    }

    /// Total extra bytes of the cached serving mode: the paper-mode
    /// storage plus the worst-case materialized-structure residency.
    pub fn cached_mode_extra_bytes(&self) -> i64 {
        self.auth_extra_bytes() + self.cache_resident_bytes as i64
    }

    /// Extra space as a percentage of the plain index.
    pub fn overhead_vs_index_pct(&self) -> f64 {
        100.0 * self.auth_extra_bytes() as f64 / self.plain_index_bytes as f64
    }

    /// Extra space as a percentage of index + collection — the base that
    /// the search engine actually stores.
    pub fn overhead_vs_total_pct(&self) -> f64 {
        let base = (self.plain_index_bytes + self.contents_bytes) as f64;
        100.0 * self.auth_extra_bytes() as f64 / base
    }
}

impl AuthenticatedIndex {
    /// Compute the storage report. `contents_bytes` is the collection
    /// size (513 MB for the paper's WSJ corpus).
    pub fn space_report(&self, contents_bytes: u64) -> SpaceReport {
        let layout = &self.config.layout;
        let index = &self.index;
        let block = layout.block_bytes as u64;
        let plain_cap = layout.plain_capacity(ImpactEntry::BYTES);

        let mut plain_blocks = 0u64;
        let mut auth_blocks = 0u64;
        for t in 0..index.num_terms() as TermId {
            let li = index.list(t).len();
            plain_blocks += layout.blocks_for(li, plain_cap) as u64;
            if self.config.mechanism.is_cmht() {
                auth_blocks += layout.blocks_for(li, self.config.chain_capacity()) as u64;
            } else {
                // Plain-MHT lists keep the plain block layout.
                auth_blocks += layout.blocks_for(li, plain_cap) as u64;
            }
        }
        let plain_index_bytes = index.dictionary_bytes() as u64 + plain_blocks * block;

        let sig_len = self.public_key.signature_len() as u64;
        let m = index.num_terms() as u64;
        let sig_total: u64 = if self.config.dict_mht {
            sig_len
        } else {
            m * sig_len
        };
        // Stored per-term root/head digest (16 bytes each).
        let term_auth_bytes =
            (auth_blocks as i64 - plain_blocks as i64) * block as i64 + (sig_total + m * 16) as i64;

        let doc_auth_bytes = if self.config.mechanism.is_tra() {
            let leaf_bytes: u64 = (0..index.num_docs() as u32)
                .map(|d| self.doc_table.doc_terms(d).len() as u64 * 8)
                .sum();
            let n = index.num_docs() as u64;
            leaf_bytes + n * (16 + sig_len)
        } else {
            0
        };

        SpaceReport {
            plain_index_bytes,
            contents_bytes,
            term_auth_bytes,
            doc_auth_bytes,
            cache_resident_bytes: self.worst_case_cache_bytes(),
        }
    }

    /// Worst-case serve-cache residency in bytes: dictionary-MHT (when
    /// materialized) plus the LRU filled with the structures of the
    /// longest lists — the adversarial workload for cache footprint.
    fn worst_case_cache_bytes(&self) -> u64 {
        if !self.config.serve_cache {
            return 0;
        }
        let index = &self.index;
        let m = index.num_terms();
        let dict_digests: u64 = if self.config.dict_mht {
            mht_resident_digests(m)
        } else {
            0
        };
        let mut lens: Vec<usize> = (0..m as TermId).map(|t| index.list(t).len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let cap = self.config.term_cache_capacity.min(m);
        let term_digests: u64 = lens[..cap]
            .iter()
            .map(|&li| {
                if self.config.mechanism.is_cmht() {
                    li as u64 + li.div_ceil(self.config.chain_capacity()) as u64
                } else {
                    mht_resident_digests(li)
                }
            })
            .sum();
        let doc_digests: u64 = if self.config.mechanism.is_tra() {
            let n = index.num_docs();
            let mut doc_lens: Vec<usize> = (0..n as u32)
                .map(|d| self.doc_table.doc_terms(d).len())
                .collect();
            doc_lens.sort_unstable_by(|a, b| b.cmp(a));
            let dcap = self.config.doc_cache_capacity.min(n);
            doc_lens[..dcap]
                .iter()
                .map(|&l| mht_resident_digests(l))
                .sum()
        } else {
            0
        };
        (dict_digests + term_digests + doc_digests) * DIGEST_LEN as u64
    }

    /// Bytes currently held by the serve cache (live residency, as
    /// opposed to the worst-case bound in the report).
    pub fn cache_resident_bytes_now(&self) -> u64 {
        let dict: u64 = self
            .cache
            .dict_tree
            .as_ref()
            .map(|t| mht_resident_digests(t.num_leaves()))
            .unwrap_or(0);
        let mut terms: u64 = 0;
        self.cache
            .terms
            .for_each_value(|s| terms += s.resident_digests() as u64);
        let mut docs: u64 = 0;
        self.cache
            .docs
            .for_each_value(|t| docs += mht_resident_digests(t.num_leaves()));
        (dict + terms + docs) * DIGEST_LEN as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::toy::{toy_contents, toy_index};
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    fn report(mechanism: Mechanism) -> SpaceReport {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let auth = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
        auth.space_report(1000)
    }

    #[test]
    fn tra_costs_more_than_tnra() {
        let tra = report(Mechanism::TraMht);
        let tnra = report(Mechanism::TnraMht);
        assert!(tra.auth_extra_bytes() > tnra.auth_extra_bytes());
        assert!(tra.doc_auth_bytes > 0);
        assert_eq!(tnra.doc_auth_bytes, 0);
    }

    #[test]
    fn dict_mode_slashes_signature_space() {
        let key = cached_keypair(TEST_KEY_BITS);
        let per_list = AuthenticatedIndex::build(
            toy_index(),
            &key,
            AuthConfig {
                key_bits: TEST_KEY_BITS,
                ..AuthConfig::new(Mechanism::TnraMht)
            },
            &toy_contents(),
        )
        .space_report(0);
        let dict = AuthenticatedIndex::build(
            toy_index(),
            &key,
            AuthConfig {
                key_bits: TEST_KEY_BITS,
                dict_mht: true,
                ..AuthConfig::new(Mechanism::TnraMht)
            },
            &toy_contents(),
        )
        .space_report(0);
        assert!(dict.term_auth_bytes < per_list.term_auth_bytes);
    }

    #[test]
    fn percentages_are_consistent() {
        let r = report(Mechanism::TnraCmht);
        assert!(r.overhead_vs_index_pct() >= r.overhead_vs_total_pct());
        assert!(r.plain_index_bytes > 0);
    }

    #[test]
    fn both_serving_modes_reported() {
        let key = cached_keypair(TEST_KEY_BITS);
        let build = |serve_cache: bool| {
            AuthenticatedIndex::build(
                toy_index(),
                &key,
                AuthConfig {
                    key_bits: TEST_KEY_BITS,
                    serve_cache,
                    ..AuthConfig::new(Mechanism::TnraMht)
                },
                &toy_contents(),
            )
        };
        let cached = build(true).space_report(1000);
        let paper = build(false).space_report(1000);
        // On-disk storage is identical; only residency differs.
        assert_eq!(cached.auth_extra_bytes(), paper.auth_extra_bytes());
        assert_eq!(paper.cache_resident_bytes, 0);
        assert!(cached.cache_resident_bytes > 0);
        assert_eq!(
            cached.cached_mode_extra_bytes(),
            cached.auth_extra_bytes() + cached.cache_resident_bytes as i64
        );
        assert_eq!(paper.cached_mode_extra_bytes(), paper.auth_extra_bytes());
    }

    #[test]
    fn live_residency_tracks_queries() {
        use crate::toy::toy_query;
        let key = cached_keypair(TEST_KEY_BITS);
        let auth = AuthenticatedIndex::build(
            toy_index(),
            &key,
            AuthConfig {
                key_bits: TEST_KEY_BITS,
                ..AuthConfig::new(Mechanism::TnraCmht)
            },
            &toy_contents(),
        );
        assert_eq!(auth.cache_resident_bytes_now(), 0);
        let _ = auth.query(&toy_query(), 2, &toy_contents());
        let live = auth.cache_resident_bytes_now();
        assert!(live > 0);
        // Live residency never exceeds the report's worst-case bound.
        assert!(live <= auth.space_report(0).cache_resident_bytes);
    }

    #[test]
    fn mht_resident_digest_shapes() {
        // 1 leaf → 1; 7 leaves → 7+4+2+1 = 14 (Figure 8's shape).
        assert_eq!(mht_resident_digests(0), 0);
        assert_eq!(mht_resident_digests(1), 1);
        assert_eq!(mht_resident_digests(7), 14);
        assert_eq!(mht_resident_digests(8), 15);
    }
}
