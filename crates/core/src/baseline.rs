//! The §3.2 "approach 3" baseline: pre-certify every inverted list and
//! return the *entire* lists of the query terms.
//!
//! > "Pre-certify every inverted list, and return to the user those that
//! > correspond to the query terms. After checking the integrity of the
//! > lists, the user may compute the document scores to produce the query
//! > result. This approach fits naturally with the PSCAN algorithm […]
//! > However, the retrieval of entire lists imposes very large I/O costs
//! > on the search engine. Also, returning the entire inverted lists as
//! > proof incurs excessive communication cost, as well as high
//! > verification and memory requirements at the user-side."
//!
//! Implemented here as the quantitative baseline the threshold mechanisms
//! are compared against: one signature per list over a digest of the full
//! list contents, a VO that *is* the lists, and a verifier that re-runs
//! PSCAN. Every cost the paper attributes to it is measurable with the
//! same metrics as the real mechanisms.

use crate::access::{AccessError, ListAccess};
use crate::pscan;
use crate::types::{Query, QueryResult};
use crate::verify::VerifyError;
use crate::vo::VoSize;
use authsearch_corpus::TermId;
use authsearch_crypto::{Digest, RsaPrivateKey, RsaPublicKey};
use authsearch_index::{BlockLayout, ImpactEntry, InvertedIndex, InvertedList, IoStats};

/// Owner-side artifact: one signature per full inverted list.
#[derive(Debug)]
pub struct BaselineIndex {
    index: InvertedIndex,
    layout: BlockLayout,
    list_sigs: Vec<Vec<u8>>,
    public_key: RsaPublicKey,
}

/// The baseline's "VO": the complete inverted lists of the query terms.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResponse {
    /// The ranked result (computed with PSCAN).
    pub result: QueryResult,
    /// Per query term: `(term, full list, signature)`.
    pub lists: Vec<(TermId, Vec<ImpactEntry>, Vec<u8>)>,
    /// Engine disk trace (whole lists, sequentially).
    pub io: IoStats,
}

impl BaselineResponse {
    /// VO size under the same accounting as the real mechanisms.
    pub fn vo_size(&self) -> VoSize {
        let mut s = VoSize::default();
        for (_, list, sig) in &self.lists {
            s.data += 8 + list.len() * ImpactEntry::BYTES;
            s.signature += sig.len();
        }
        s
    }
}

/// Digest of a full inverted list (leaf-hash chain over the canonical
/// entry encodings, bound to the term and its `f_t`).
fn list_digest(term: TermId, list: &[ImpactEntry]) -> Digest {
    let mut bytes = Vec::with_capacity(24 + list.len() * 8);
    bytes.extend_from_slice(b"authsearch:fulllist:v1|");
    bytes.extend_from_slice(&term.to_le_bytes());
    // lint:allow(truncating-cast): list length is bounded by the collection size cap (2^28) at construction, and this u32 is a stable digest preimage — widening it would change every published digest
    bytes.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for e in list {
        bytes.extend_from_slice(&e.encode());
    }
    Digest::hash(&bytes)
}

impl BaselineIndex {
    /// Sign every list.
    pub fn build(index: InvertedIndex, key: &RsaPrivateKey, layout: BlockLayout) -> Self {
        let list_sigs = (0..index.num_terms() as TermId)
            .map(|t| {
                let digest = list_digest(t, index.list(t).entries());
                key.sign(digest.as_bytes()).expect("list signature")
            })
            .collect();
        BaselineIndex {
            index,
            layout,
            list_sigs,
            public_key: key.public_key().clone(),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The owner's public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }

    /// Serve a query: run PSCAN, ship the full lists.
    pub fn query(&self, query: &Query, r: usize) -> BaselineResponse {
        let lists = crate::access::IndexLists::new(&self.index, query);
        let outcome = pscan::run(&lists, query, r).expect("engine access is total");
        let mut io = IoStats::new();
        let mut out = Vec::with_capacity(query.terms.len());
        for qt in &query.terms {
            let list = self.index.list(qt.term);
            let blocks = self
                .layout
                .blocks_for(list.len(), self.layout.plain_capacity(ImpactEntry::BYTES));
            io.sequential_run(blocks as u64);
            out.push((
                qt.term,
                list.entries().to_vec(),
                self.list_sigs[qt.term as usize].clone(),
            ));
        }
        BaselineResponse {
            result: outcome.result,
            lists: out,
            io,
        }
    }
}

/// User-side verification: check every list signature, then recompute the
/// result with PSCAN over the delivered lists.
pub fn verify_baseline(
    public_key: &RsaPublicKey,
    query: &Query,
    r: usize,
    response: &BaselineResponse,
) -> Result<QueryResult, VerifyError> {
    if response.lists.len() != query.terms.len() {
        return Err(VerifyError::QueryShapeMismatch(format!(
            "{} lists for {} query terms",
            response.lists.len(),
            query.terms.len()
        )));
    }
    for ((term, list, sig), qt) in response.lists.iter().zip(&query.terms) {
        if *term != qt.term {
            return Err(VerifyError::QueryShapeMismatch(format!(
                "list for term {term} where query has {}",
                qt.term
            )));
        }
        let digest = list_digest(*term, list);
        public_key
            .verify(digest.as_bytes(), sig)
            .map_err(|_| VerifyError::TermSignature { term: *term })?;
        if list.windows(2).any(|w| w[0].weight < w[1].weight) {
            return Err(VerifyError::PrefixNotOrdered { term: *term });
        }
    }
    // Recompute with PSCAN over the authenticated lists.
    struct Full<'a>(&'a BaselineResponse);
    impl ListAccess for Full<'_> {
        fn list_len(&self, i: usize) -> usize {
            self.0.lists[i].1.len()
        }
        fn entry(&self, i: usize, pos: usize) -> Result<Option<ImpactEntry>, AccessError> {
            Ok(self.0.lists[i].1.get(pos).copied())
        }
    }
    let outcome = pscan::run(&Full(response), query, r)?;
    if outcome.result != response.result {
        return Err(VerifyError::ResultMismatch(
            "PSCAN over the certified lists disagrees with the reported result".into(),
        ));
    }
    Ok(outcome.result)
}

/// Reconstruct an [`InvertedList`] from delivered entries (helper for
/// downstream consumers that want to keep the verified lists).
pub fn to_inverted_list(entries: &[ImpactEntry]) -> InvertedList {
    InvertedList::from_entries(entries.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{toy_index, toy_query};
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    fn setup() -> BaselineIndex {
        let key = cached_keypair(TEST_KEY_BITS);
        BaselineIndex::build(toy_index(), &key, BlockLayout::default())
    }

    #[test]
    fn baseline_result_matches_threshold_algorithms() {
        let baseline = setup();
        let resp = baseline.query(&toy_query(), 2);
        assert_eq!(resp.result.docs(), vec![6, 5]);
        verify_baseline(baseline.public_key(), &toy_query(), 2, &resp).unwrap();
    }

    #[test]
    fn baseline_ships_entire_lists() {
        let baseline = setup();
        let resp = baseline.query(&toy_query(), 2);
        // 'the' and 'in' have 6 entries each; sleeps/dark 1 each.
        let total: usize = resp.lists.iter().map(|(_, l, _)| l.len()).sum();
        assert_eq!(total, 14);
        // VO data dwarfs the threshold mechanisms' prefixes.
        assert_eq!(resp.vo_size().data, 4 * 8 + 14 * 8);
    }

    #[test]
    fn tampered_list_rejected() {
        let baseline = setup();
        let mut resp = baseline.query(&toy_query(), 2);
        resp.lists[2].1[0].weight = 9.9;
        let err = verify_baseline(baseline.public_key(), &toy_query(), 2, &resp).unwrap_err();
        assert!(matches!(err, VerifyError::TermSignature { .. }));
    }

    #[test]
    fn truncated_list_rejected() {
        let baseline = setup();
        let mut resp = baseline.query(&toy_query(), 2);
        resp.lists[2].1.pop();
        let err = verify_baseline(baseline.public_key(), &toy_query(), 2, &resp).unwrap_err();
        assert!(matches!(err, VerifyError::TermSignature { .. }));
    }

    #[test]
    fn tampered_result_rejected() {
        let baseline = setup();
        let mut resp = baseline.query(&toy_query(), 2);
        resp.result.entries.swap(0, 1);
        let err = verify_baseline(baseline.public_key(), &toy_query(), 2, &resp).unwrap_err();
        assert!(matches!(err, VerifyError::ResultMismatch(_)));
    }

    #[test]
    fn io_covers_whole_lists() {
        let baseline = setup();
        let resp = baseline.query(&toy_query(), 2);
        // All four toy lists fit one block each.
        assert_eq!(resp.io.seeks, 4);
        assert_eq!(resp.io.blocks, 4);
    }
}
