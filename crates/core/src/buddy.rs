//! Buddy inclusion (paper §3.3.2).
//!
//! MHT leaves are smaller than digests (8-byte `⟨t, w⟩` pairs or 4-byte
//! document ids vs 16-byte digests), so below a certain subtree size it is
//! cheaper to ship the *leaves themselves* than the covering digests.
//! The paper partitions the leaves of every MHT into groups of `2^g`,
//! where `g` is the largest integer with `(2^g − 1)·|leaf| ≤ g·|h|`;
//! whenever a leaf is required in the VO, its whole group comes along and
//! the group's internal digests are dropped.

/// Largest buddy group size `2^g` for the given leaf and digest sizes.
///
/// Paper examples: `|leaf| = 8, |h| = 16` → g = 2, groups of 4;
/// `|leaf| = 4, |h| = 16` → g = 4, groups of 16.
pub fn buddy_group_size(leaf_bytes: usize, digest_bytes: usize) -> usize {
    assert!(leaf_bytes > 0);
    let mut g = 0usize;
    while ((1usize << (g + 1)) - 1) * leaf_bytes <= (g + 1) * digest_bytes {
        g += 1;
    }
    1 << g
}

/// Expand a sorted set of required leaf positions to whole buddy groups
/// (clamped to `n` leaves). Returns sorted, deduplicated positions.
pub fn expand_buddies(required: &[usize], n: usize, group: usize) -> Vec<usize> {
    debug_assert!(required.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(required.len() * group);
    let mut last_group = usize::MAX;
    for &pos in required {
        let start = (pos / group) * group;
        if start == last_group {
            continue;
        }
        last_group = start;
        for p in start..(start + group).min(n) {
            out.push(p);
        }
    }
    out
}

/// Expand a contiguous prefix `0..k` to a buddy-group boundary within an
/// `n`-leaf tree — the special case used for inverted-list prefixes
/// (groups align to the leaf layer's origin).
pub fn expand_prefix(k: usize, n: usize, group: usize) -> usize {
    if k == 0 {
        0
    } else {
        (k.div_ceil(group) * group).min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_group_sizes() {
        // §3.3.2: |h| = 16 bytes, |leaf| = 8 bytes → g = 2, groups of 4.
        assert_eq!(buddy_group_size(8, 16), 4);
        // doc-id leaves: 4 bytes → g = 4, groups of 16.
        assert_eq!(buddy_group_size(4, 16), 16);
    }

    #[test]
    fn degenerate_sizes() {
        // Leaves as large as digests: (2^1 - 1)·16 = 16 ≤ 1·16 → g = 1.
        assert_eq!(buddy_group_size(16, 16), 2);
        // Leaves much larger than digests: no grouping pays off.
        assert_eq!(buddy_group_size(64, 16), 1);
    }

    #[test]
    fn expand_covers_whole_groups() {
        // Figure 8's example: leaf 2 required, group of 4 → leaves 0..4.
        assert_eq!(expand_buddies(&[2], 7, 4), vec![0, 1, 2, 3]);
        // Leaf 5 in the second (truncated) group of a 7-leaf tree.
        assert_eq!(expand_buddies(&[5], 7, 4), vec![4, 5, 6]);
    }

    #[test]
    fn expand_merges_same_group() {
        assert_eq!(expand_buddies(&[1, 2], 8, 4), vec![0, 1, 2, 3]);
        assert_eq!(expand_buddies(&[1, 6], 8, 4), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn expand_prefix_rounds_up() {
        assert_eq!(expand_prefix(0, 100, 4), 0);
        assert_eq!(expand_prefix(1, 100, 4), 4);
        assert_eq!(expand_prefix(4, 100, 4), 4);
        assert_eq!(expand_prefix(5, 100, 4), 8);
        assert_eq!(expand_prefix(99, 100, 4), 100); // clamped
    }

    #[test]
    fn group_of_one_is_identity() {
        assert_eq!(expand_buddies(&[3, 9], 12, 1), vec![3, 9]);
        assert_eq!(expand_prefix(7, 12, 1), 7);
    }
}
