//! A bounded LRU cache (intrusive doubly-linked list over a slab), and a
//! sharded concurrent wrapper for it.
//!
//! The query-serving hot path keeps materialized authentication
//! structures — term-MHT levels and chain-MHT block digests — keyed by
//! term, so hot terms skip the leaf-layer rehash that the paper's
//! regenerate-from-leaves storage model pays on every query
//! (see [`crate::auth`]). The cache is generic and deliberately small:
//! `get` / `put` are O(1) hash operations plus pointer splices, eviction
//! is exact LRU, and hit/miss counters feed the benchmark reports.
//!
//! [`ShardedLru`] is the concurrent face of the same cache: a
//! power-of-two array of independently locked [`LruCache`] shards, keys
//! routed by hash, so a multi-threaded engine ([`crate::auth::serve`])
//! serving parallel queries contends only when two lookups land on the
//! same shard instead of serializing on one global lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::{Mutex, MutexGuard, PoisonError};

const NIL: usize = usize::MAX;

/// Lock a mutex, recovering the guard if a previous holder panicked.
///
/// The crate-wide poisoning policy: every structure guarded this way
/// (LRU shards, pool queues, the serve-pool slot, server connection
/// registries) keeps itself valid across each mutation, so a panic
/// while holding the lock never leaves torn data — recovery is always
/// sound, and one panicking worker cannot wedge the process.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Upper bound on the *pre-allocated* slab/map size of a fresh
/// [`LruCache`]. This clamps the up-front allocation only — a cache
/// configured with a larger capacity still holds `capacity` entries and
/// evicts exactly at that bound; its storage simply grows amortized
/// (with the usual rehash-on-growth of `HashMap`) past this point
/// instead of reserving potentially hundreds of megabytes for a cache
/// that may never fill.
pub const LRU_PREALLOC_CLAMP: usize = 4096;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used map from `K` to `V`.
///
/// A capacity of 0 is legal and means "cache nothing": every `get`
/// misses and every `put` is a no-op, which lets callers disable caching
/// through configuration without branching at every call site.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used entry (NIL when empty).
    head: usize,
    /// Least recently used entry (NIL when empty).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// The initial allocation is clamped to [`LRU_PREALLOC_CLAMP`]
    /// entries; a larger-capacity cache grows on demand (amortized O(1)
    /// per insert, with `HashMap`'s rehash-on-growth) but still honors
    /// its full `capacity` before evicting — see the clamp's docs and
    /// the `capacity_beyond_prealloc_clamp_is_honored` test.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(LRU_PREALLOC_CLAMP)),
            entries: Vec::with_capacity(capacity.min(LRU_PREALLOC_CLAMP)),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetch and mark as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.entries[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fetch without touching recency or the hit/miss counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entries[idx].value)
    }

    /// Insert (or refresh) `key`, returning the evicted LRU pair when the
    /// insertion pushed the cache over capacity.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        if self.map.len() >= self.capacity {
            // Reuse the LRU slot in place for the new entry.
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = std::mem::replace(
                &mut self.entries[lru],
                Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        self.entries.push(Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let idx = self.entries.len() - 1;
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Keys from most to least recently used (test/diagnostic helper).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.entries[cur].key.clone());
            cur = self.entries[cur].next;
        }
        out
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

// ---- sharded concurrent LRU ----------------------------------------------

/// Aggregate counters of a [`ShardedLru`], summed across its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardedStats {
    /// Lookups served from some shard.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub len: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

/// A concurrent bounded LRU: `2^k` independently locked [`LruCache`]
/// shards with keys routed by hash.
///
/// Each shard enforces an exact LRU discipline over its own slice of the
/// keyspace; globally the eviction order is therefore *per-shard* LRU,
/// which is the standard trade-off every sharded cache makes for
/// lock-free-across-shards lookups. The total capacity is distributed
/// exactly: the shard capacities always sum to the configured capacity
/// (the shard count is reduced, if necessary, so that no shard is left
/// with capacity 0 while the cache as a whole has room).
///
/// Shard routing uses a *fixed-seed* SipHash, so the shard a key lands
/// on is deterministic across processes — cache residency (and thus the
/// hit/miss trace of a query workload) is reproducible run to run.
///
/// Lock poisoning is deliberately recovered from rather than propagated:
/// every mutation on the inner [`LruCache`] leaves it structurally valid
/// (links are spliced before values move), so a worker thread that
/// panics mid-operation cannot leave a shard corrupt — see
/// `poisoned_shard_recovers` for the regression test. Propagating the
/// poison instead would let one panicking query permanently take down
/// every future query that hashes to the same shard.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of total capacity `capacity` split over (at most)
    /// `shards` shards.
    ///
    /// The shard count is rounded up to a power of two and then capped
    /// so every shard has capacity ≥ 1 (a requested 16-way shard over a
    /// capacity-6 cache becomes 4 shards of capacities 2/2/1/1). A
    /// `capacity` of 0 disables caching entirely, as with [`LruCache`].
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let wanted = shards.max(1).next_power_of_two();
        // Largest power of two ≤ max(capacity, 1): guarantees no shard
        // is created with zero capacity while others hold the budget.
        let cap_limit = prev_power_of_two(capacity.max(1));
        let count = wanted.min(cap_limit);
        let shards = (0..count)
            .map(|i| {
                // Exact distribution: base + 1 for the first `rem` shards.
                let base = capacity / count;
                let extra = usize::from(i < capacity % count);
                Mutex::new(LruCache::new(base + extra))
            })
            .collect();
        ShardedLru {
            shards,
            mask: count - 1,
            hasher: BuildHasherDefault::default(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).capacity()).sum()
    }

    /// The shard `key` routes to.
    fn shard_of(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        &self.shards[(self.hasher.hash_one(key) as usize) & self.mask]
    }

    /// Lock a shard, recovering from poisoning (see the type docs).
    fn lock<'a>(&self, shard: &'a Mutex<LruCache<K, V>>) -> MutexGuard<'a, LruCache<K, V>> {
        lock_recover(shard)
    }

    /// Fetch a clone of the cached value, marking it most recently used
    /// within its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.lock(self.shard_of(key)).get(key).cloned()
    }

    /// Insert (or refresh) `key`, returning the pair its shard evicted.
    pub fn put(&self, key: K, value: V) -> Option<(K, V)> {
        self.lock(self.shard_of(&key)).put(key, value)
    }

    /// Aggregate hit/miss/residency counters over all shards.
    pub fn stats(&self) -> ShardedStats {
        let mut out = ShardedStats::default();
        for shard in &self.shards {
            let guard = self.lock(shard);
            out.hits += guard.hits();
            out.misses += guard.misses();
            out.len += guard.len();
            out.capacity += guard.capacity();
        }
        out
    }

    /// Drop every entry in every shard (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            self.lock(shard).clear();
        }
    }

    /// Visit every resident value, shard by shard, without touching
    /// recency order or the hit/miss counters (diagnostics/accounting).
    pub fn for_each_value<F: FnMut(&V)>(&self, mut f: F) {
        for shard in &self.shards {
            let guard = self.lock(shard);
            for key in guard.keys_mru() {
                if let Some(v) = guard.peek(&key) {
                    f(v);
                }
            }
        }
    }

    /// Poison the shard `key` routes to by panicking while holding its
    /// lock — test-only hook for the poisoning-recovery regression.
    #[cfg(test)]
    pub(crate) fn poison_shard_of(&self, key: &K) {
        let shard = self.shard_of(key);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.lock().expect("not yet poisoned");
            panic!("deliberate poison");
        }));
    }
}

/// Largest power of two ≤ `n` (`n` ≥ 1).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_roundtrip() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.put(1, "one".into());
        assert_eq!(c.get(&1), Some(&"one".to_string()));
        assert_eq!(c.len(), 1);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.put(1, 10);
        c.put(2, 20);
        c.put(3, 30);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&1).is_some());
        let evicted = c.put(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.keys_mru(), vec![4, 1, 3]);
        assert!(c.peek(&2).is_none());
    }

    #[test]
    fn refresh_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.put(1, 11), None);
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.keys_mru(), vec![1, 2]);
        // Inserting a third evicts 2, not the refreshed 1.
        assert_eq!(c.put(3, 30), Some((2, 20)));
    }

    #[test]
    fn capacity_one_always_holds_latest() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.put(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.peek(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.put(1, 10), None);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn peek_does_not_reorder() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        // 1 is still LRU despite the peek.
        assert_eq!(c.put(3, 30), Some((1, 10)));
    }

    #[test]
    fn slot_reuse_keeps_links_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100 {
            c.put(i, i);
            if i % 3 == 0 {
                c.get(&i.saturating_sub(1));
            }
            assert!(c.len() <= 3);
            let mru = c.keys_mru();
            assert_eq!(mru.len(), c.len());
        }
    }

    #[test]
    fn clear_preserves_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 1);
        c.get(&1);
        c.get(&9);
        c.clear();
        assert!(c.is_empty());
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.put(2, 2);
        assert_eq!(c.peek(&2), Some(&2));
    }

    #[test]
    fn capacity_beyond_prealloc_clamp_is_honored() {
        // The clamp bounds the *initial* allocation only: a cache sized
        // past it must still hold every entry up to its configured
        // capacity and evict exactly at that bound.
        let cap = LRU_PREALLOC_CLAMP + 1000;
        let mut c: LruCache<u32, u32> = LruCache::new(cap);
        for i in 0..cap as u32 {
            assert_eq!(c.put(i, i), None, "no eviction below capacity (i={i})");
        }
        assert_eq!(c.len(), cap);
        // The next insert evicts the true LRU (key 0), not an entry near
        // the clamp boundary.
        assert_eq!(c.put(cap as u32, 0), Some((0, 0)));
        assert_eq!(c.len(), cap);
        assert!(c.peek(&(LRU_PREALLOC_CLAMP as u32)).is_some());
    }

    #[test]
    fn sharded_capacity_distributes_exactly() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4096, 16);
        assert_eq!(c.num_shards(), 16);
        assert_eq!(c.capacity(), 4096);
        // Non-divisible capacity still sums exactly.
        let odd: ShardedLru<u32, u32> = ShardedLru::new(6, 16);
        assert_eq!(odd.num_shards(), 4, "shards capped so none is empty");
        assert_eq!(odd.capacity(), 6);
        // Capacity 1 degenerates to a single shard, capacity 0 disables.
        let one: ShardedLru<u32, u32> = ShardedLru::new(1, 16);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(one.capacity(), 1);
        let off: ShardedLru<u32, u32> = ShardedLru::new(0, 16);
        assert_eq!(off.num_shards(), 1);
        assert_eq!(off.capacity(), 0);
        off.put(7, 7);
        assert_eq!(off.get(&7), None);
        // Shard counts round up to a power of two.
        let rounded: ShardedLru<u32, u32> = ShardedLru::new(100, 3);
        assert_eq!(rounded.num_shards(), 4);
    }

    #[test]
    fn sharded_get_put_and_stats_aggregate() {
        let c: ShardedLru<u32, String> = ShardedLru::new(64, 8);
        for i in 0..32u32 {
            c.put(i, format!("v{i}"));
        }
        for i in 0..32u32 {
            assert_eq!(c.get(&i), Some(format!("v{i}")), "key {i}");
        }
        assert_eq!(c.get(&999), None);
        let stats = c.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.len, 32);
        assert_eq!(stats.capacity, 64);
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 32, "counters survive clear");
    }

    #[test]
    fn sharded_total_residency_never_exceeds_capacity() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(16, 4);
        for i in 0..10_000u32 {
            c.put(i, i);
            assert!(c.stats().len <= 16);
        }
        // Every shard saw traffic well past its share, so each is full.
        assert_eq!(c.stats().len, 16);
    }

    #[test]
    fn sharded_concurrent_hammer_is_consistent() {
        use std::sync::Arc;
        let c: Arc<ShardedLru<u32, u32>> = Arc::new(ShardedLru::new(64, 8));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..500u32 {
                        let key = (round * 7 + t) % 96; // hot + cold mix
                        if let Some(v) = c.get(&key) {
                            assert_eq!(v, key * 2, "value corrupted for {key}");
                        } else {
                            c.put(key, key * 2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = c.stats();
        assert!(stats.len <= 64);
        assert_eq!(stats.hits + stats.misses, 8 * 500);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(8, 2);
        c.put(1, 10);
        // Panic while holding the lock of key 1's shard.
        c.poison_shard_of(&1);
        // Every operation on the poisoned shard must keep working: the
        // LRU inside was structurally untouched by the panic.
        assert_eq!(c.get(&1), Some(10));
        c.put(2, 20);
        assert_eq!(c.get(&2), Some(20));
        assert!(c.stats().len >= 1);
    }
}
