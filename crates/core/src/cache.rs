//! A bounded LRU cache (intrusive doubly-linked list over a slab).
//!
//! The query-serving hot path keeps materialized authentication
//! structures — term-MHT levels and chain-MHT block digests — keyed by
//! term, so hot terms skip the leaf-layer rehash that the paper's
//! regenerate-from-leaves storage model pays on every query
//! (see [`crate::auth`]). The cache is generic and deliberately small:
//! `get` / `put` are O(1) hash operations plus pointer splices, eviction
//! is exact LRU, and hit/miss counters feed the benchmark reports.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used map from `K` to `V`.
///
/// A capacity of 0 is legal and means "cache nothing": every `get`
/// misses and every `put` is a no-op, which lets callers disable caching
/// through configuration without branching at every call site.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used entry (NIL when empty).
    head: usize,
    /// Least recently used entry (NIL when empty).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            entries: Vec::with_capacity(capacity.min(4096)),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetch and mark as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.entries[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fetch without touching recency or the hit/miss counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entries[idx].value)
    }

    /// Insert (or refresh) `key`, returning the evicted LRU pair when the
    /// insertion pushed the cache over capacity.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        if self.map.len() >= self.capacity {
            // Reuse the LRU slot in place for the new entry.
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = std::mem::replace(
                &mut self.entries[lru],
                Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        self.entries.push(Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let idx = self.entries.len() - 1;
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Keys from most to least recently used (test/diagnostic helper).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.entries[cur].key.clone());
            cur = self.entries[cur].next;
        }
        out
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_roundtrip() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.put(1, "one".into());
        assert_eq!(c.get(&1), Some(&"one".to_string()));
        assert_eq!(c.len(), 1);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.put(1, 10);
        c.put(2, 20);
        c.put(3, 30);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&1).is_some());
        let evicted = c.put(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.keys_mru(), vec![4, 1, 3]);
        assert!(c.peek(&2).is_none());
    }

    #[test]
    fn refresh_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.put(1, 11), None);
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.keys_mru(), vec![1, 2]);
        // Inserting a third evicts 2, not the refreshed 1.
        assert_eq!(c.put(3, 30), Some((2, 20)));
    }

    #[test]
    fn capacity_one_always_holds_latest() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.put(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.peek(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.put(1, 10), None);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn peek_does_not_reorder() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        // 1 is still LRU despite the peek.
        assert_eq!(c.put(3, 30), Some((1, 10)));
    }

    #[test]
    fn slot_reuse_keeps_links_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100 {
            c.put(i, i);
            if i % 3 == 0 {
                c.get(&i.saturating_sub(1));
            }
            assert!(c.len() <= 3);
            let mru = c.keys_mru();
            assert_eq!(mru.len(), c.len());
        }
    }

    #[test]
    fn clear_preserves_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 1);
        c.get(&1);
        c.get(&9);
        c.clear();
        assert!(c.is_empty());
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.put(2, 2);
        assert_eq!(c.peek(&2), Some(&2));
    }
}
