//! The user (paper §3.1 system model): poses queries and verifies
//! results against the data owner's public parameters.

use crate::auth::serve::QueryResponse;
use crate::types::{Query, QueryTerm};
use crate::verify::{self, VerifiedResult, VerifierParams, VerifyError};
use authsearch_corpus::TermId;

/// A verifying client.
pub struct Client {
    params: VerifierParams,
}

impl Client {
    /// Client configured with the owner's broadcast parameters.
    pub fn new(params: VerifierParams) -> Client {
        Client { params }
    }

    /// The public parameters.
    pub fn params(&self) -> &VerifierParams {
        &self.params
    }

    /// Verify a response to a query the user posed as `(term, f_{Q,t})`
    /// pairs. The query-side weights are recomputed locally from the
    /// *signed* `f_t` values in the VO and the owner's public collection
    /// size — nothing the engine reports unsigned is trusted.
    pub fn verify_terms(
        &self,
        terms: &[(TermId, u32)],
        r: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, VerifyError> {
        self.verify_terms_with_memo(terms, r, response, &mut verify::SigMemo::new())
    }

    fn verify_terms_with_memo(
        &self,
        terms: &[(TermId, u32)],
        r: usize,
        response: &QueryResponse,
        memo: &mut verify::SigMemo,
    ) -> Result<VerifiedResult, VerifyError> {
        if response.vo.terms.len() != terms.len() {
            return Err(VerifyError::QueryShapeMismatch(format!(
                "{} proofs for {} query terms",
                response.vo.terms.len(),
                terms.len()
            )));
        }
        let query = Query {
            terms: terms
                .iter()
                .zip(&response.vo.terms)
                .map(|(&(term, f_qt), tv)| {
                    if tv.term != term {
                        return Err(VerifyError::QueryShapeMismatch(format!(
                            "proof for term {} where query has {term}",
                            tv.term
                        )));
                    }
                    Ok(QueryTerm {
                        term,
                        f_qt,
                        wq: self
                            .params
                            .okapi
                            .query_weight(self.params.num_docs, tv.ft, f_qt),
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        verify::verify_with_memo(&self.params, &query, r, response, memo)
    }

    /// Verify with an explicitly weighted query (used when weights are
    /// fixed externally, e.g. the paper's worked example).
    pub fn verify_query(
        &self,
        query: &Query,
        r: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, VerifyError> {
        verify::verify(&self.params, query, r, response)
    }

    /// Verify a batch of responses — the client-side counterpart of
    /// [`crate::SearchEngine::serve_batch`]. Each response is judged
    /// independently (result `i` corresponds to request `i`, and a bad
    /// response never taints its neighbors), but signature work is
    /// shared **across** the batch: every RSA check runs through
    /// [`authsearch_crypto::RsaPublicKey::verify_batch`] (distinct
    /// pairs checked once, deterministically, in one Montgomery
    /// domain, with exact culprit attribution), and a batch-wide memo
    /// of already-proven `(message, signature)` pairs means a hot-term,
    /// repeated-document, or dictionary signature recurring across many
    /// responses costs **one** RSA exponentiation total — the
    /// cross-response amortization that motivates serving and
    /// verifying in batches.
    pub fn verify_batch(
        &self,
        requests: &[(&[(TermId, u32)], &QueryResponse)],
        r: usize,
    ) -> Vec<Result<VerifiedResult, VerifyError>> {
        let mut memo = verify::SigMemo::new();
        requests
            .iter()
            .map(|&(terms, response)| self.verify_terms_with_memo(terms, r, response, &mut memo))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::engine::SearchEngine;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_corpus::SyntheticConfig;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn setup(mechanism: Mechanism) -> (SearchEngine, Client, Vec<TermId>) {
        let corpus = SyntheticConfig::tiny(120, 17).generate();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        let terms =
            authsearch_corpus::workload::synthetic(publication.auth.index().num_terms(), 1, 3, 7)
                .remove(0);
        let client = Client::new(publication.verifier_params);
        (SearchEngine::new(publication.auth, corpus), client, terms)
    }

    #[test]
    fn client_verifies_all_mechanisms_from_terms_alone() {
        for mechanism in Mechanism::ALL {
            let (engine, client, terms) = setup(mechanism);
            let query = Query::from_term_ids(engine.auth().index(), &terms);
            let response = engine.search(&query, 5);
            let pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            client
                .verify_terms(&pairs, 5, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
        }
    }

    #[test]
    fn client_verify_batch_round_trips_serve_batch() {
        let (engine, client, terms) = setup(Mechanism::TraCmht);
        let workloads: Vec<Vec<TermId>> =
            authsearch_corpus::workload::synthetic(engine.auth().index().num_terms(), 4, 2, 5);
        let queries: Vec<Query> = workloads
            .iter()
            .map(|t| Query::from_term_ids(engine.auth().index(), t))
            .collect();
        let responses = engine.serve_batch(&queries, 5);
        let pairs: Vec<Vec<(TermId, u32)>> = workloads
            .iter()
            .map(|w| w.iter().map(|&t| (t, 1)).collect())
            .collect();
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> = pairs
            .iter()
            .zip(&responses)
            .map(|(p, r)| (p.as_slice(), r))
            .collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert_eq!(verdicts.len(), queries.len());
        for (i, v) in verdicts.iter().enumerate() {
            let verified = v.as_ref().unwrap_or_else(|e| panic!("response {i}: {e}"));
            assert_eq!(verified.result, responses[i].result);
        }
        // One corrupted response is rejected without affecting the rest.
        let mut responses = responses;
        if let Some(sig) = responses[1].vo.terms[0].signature.as_mut() {
            sig[0] ^= 0x80;
        }
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> = pairs
            .iter()
            .zip(&responses)
            .map(|(p, r)| (p.as_slice(), r))
            .collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert!(verdicts[0].is_ok());
        assert!(matches!(
            verdicts[1],
            Err(VerifyError::TermSignature { .. })
        ));
        assert!(verdicts[2].is_ok());
        let _ = terms;
    }

    #[test]
    fn memoized_batch_verification_stays_sound() {
        // The same response repeated across a batch exercises the
        // cross-response signature memo (responses 2..n re-prove
        // nothing); a tampered copy in the middle must still be caught
        // — its (message, signature) pairs differ from the memoized
        // ones — and later honest copies must still pass.
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let honest = engine.search(&query, 5);
        let mut tampered = honest.clone();
        tampered.vo.terms[0].ft += 1; // changes the signed message
        let pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        let responses = [&honest, &honest, &tampered, &honest];
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> =
            responses.iter().map(|r| (pairs.as_slice(), *r)).collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert!(verdicts[0].is_ok());
        assert!(verdicts[1].is_ok());
        assert!(verdicts[2].is_err(), "tampered copy must not ride the memo");
        assert!(verdicts[3].is_ok());
    }

    #[test]
    fn client_rejects_wrong_term_alignment() {
        let (engine, client, terms) = setup(Mechanism::TnraMht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let response = engine.search(&query, 5);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.swap(0, 1);
        assert!(matches!(
            client.verify_terms(&pairs, 5, &response),
            Err(VerifyError::QueryShapeMismatch(_))
        ));
    }

    #[test]
    fn client_recomputed_weights_match_engine() {
        // The client's wq (from signed ft + public n) must agree with the
        // engine's (from the index) — otherwise honest replays would fail.
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let response = engine.search(&query, 5);
        for (qt, tv) in query.terms.iter().zip(&response.vo.terms) {
            let wq = client
                .params()
                .okapi
                .query_weight(client.params().num_docs, tv.ft, qt.f_qt);
            assert_eq!(wq, qt.wq);
        }
    }
}
