//! The user (paper §3.1 system model): poses queries and verifies
//! results against the data owner's public parameters — locally, or
//! over the wire against a running [`crate::server`].

use crate::auth::serve::QueryResponse;
use crate::types::{Query, QueryTerm};
use crate::verify::{self, VerifiedResult, VerifierParams, VerifyError};
use crate::wire::{self, Reply, Request, WireError};
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::Digest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A verifying client.
pub struct Client {
    params: VerifierParams,
}

impl Client {
    /// Client configured with the owner's broadcast parameters.
    pub fn new(params: VerifierParams) -> Client {
        Client { params }
    }

    /// The public parameters.
    pub fn params(&self) -> &VerifierParams {
        &self.params
    }

    /// Verify a response to a query the user posed as `(term, f_{Q,t})`
    /// pairs. The query-side weights are recomputed locally from the
    /// *signed* `f_t` values in the VO and the owner's public collection
    /// size — nothing the engine reports unsigned is trusted.
    pub fn verify_terms(
        &self,
        terms: &[(TermId, u32)],
        r: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, VerifyError> {
        self.verify_terms_with_memo(terms, r, response, &mut verify::SigMemo::new())
    }

    /// Rebuild the weighted query from the posed `(term, f_{Q,t})` pairs
    /// and the **signed** `f_t` values inside the VO — nothing the
    /// engine reports unsigned is trusted.
    fn query_from_signed_fts(
        &self,
        terms: &[(TermId, u32)],
        response: &QueryResponse,
    ) -> Result<Query, VerifyError> {
        if response.vo.terms.len() != terms.len() {
            return Err(VerifyError::QueryShapeMismatch(format!(
                "{} proofs for {} query terms",
                response.vo.terms.len(),
                terms.len()
            )));
        }
        Ok(Query {
            terms: terms
                .iter()
                .zip(&response.vo.terms)
                .map(|(&(term, f_qt), tv)| {
                    if tv.term != term {
                        return Err(VerifyError::QueryShapeMismatch(format!(
                            "proof for term {} where query has {term}",
                            tv.term
                        )));
                    }
                    Ok(QueryTerm {
                        term,
                        f_qt,
                        wq: self
                            .params
                            .okapi
                            .query_weight(self.params.num_docs, tv.ft, f_qt),
                    })
                })
                .collect::<Result<_, _>>()?,
        })
    }

    fn verify_terms_with_memo(
        &self,
        terms: &[(TermId, u32)],
        r: usize,
        response: &QueryResponse,
        memo: &mut verify::SigMemo,
    ) -> Result<VerifiedResult, VerifyError> {
        let query = self.query_from_signed_fts(terms, response)?;
        verify::verify_with_memo(&self.params, &query, r, response, memo)
    }

    /// Verify a **conjunctive** response to a query the user posed as
    /// `(term, f_{Q,t})` pairs. Like [`Client::verify_terms`], the
    /// query-side weights come from the signed `f_t` values in the VO;
    /// the replay then checks the intersection is exactly right
    /// ([`verify::verify_conjunctive`]).
    pub fn verify_conjunctive_terms(
        &self,
        terms: &[(TermId, u32)],
        r: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, VerifyError> {
        let query = self.query_from_signed_fts(terms, response)?;
        verify::verify_conjunctive(&self.params, &query, r, response)
    }

    /// Verify with an explicitly weighted query (used when weights are
    /// fixed externally, e.g. the paper's worked example).
    pub fn verify_query(
        &self,
        query: &Query,
        r: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, VerifyError> {
        verify::verify(&self.params, query, r, response)
    }

    /// Verify a batch of responses — the client-side counterpart of
    /// [`crate::SearchEngine::serve_batch`]. Each response is judged
    /// independently (result `i` corresponds to request `i`, and a bad
    /// response never taints its neighbors), but signature work is
    /// shared **across** the batch: every RSA check runs through
    /// [`authsearch_crypto::RsaPublicKey::verify_batch`] (distinct
    /// pairs checked once, deterministically, in one Montgomery
    /// domain, with exact culprit attribution), and a batch-wide memo
    /// of already-proven `(message, signature)` pairs means a hot-term,
    /// repeated-document, or dictionary signature recurring across many
    /// responses costs **one** RSA exponentiation total — the
    /// cross-response amortization that motivates serving and
    /// verifying in batches.
    pub fn verify_batch(
        &self,
        requests: &[(&[(TermId, u32)], &QueryResponse)],
        r: usize,
    ) -> Vec<Result<VerifiedResult, VerifyError>> {
        let mut memo = verify::SigMemo::new();
        requests
            .iter()
            .map(|&(terms, response)| self.verify_terms_with_memo(terms, r, response, &mut memo))
            .collect()
    }
}

/// Why a networked query failed. Everything except
/// [`ClientNetError::Verify`] is a transport- or server-level problem;
/// `Verify` means bytes arrived intact but the **proof** did not check
/// out — the signal the whole scheme exists to produce.
#[derive(Debug)]
pub enum ClientNetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode as a protocol frame.
    Wire(WireError),
    /// The server answered with a coded error frame
    /// (see [`crate::wire::errcode`]).
    Server {
        /// An [`crate::wire::errcode`] constant.
        code: u8,
        /// The server's message.
        message: String,
    },
    /// The reply decoded but broke the protocol contract (e.g. the term
    /// echo does not match the terms this client asked for).
    Protocol(String),
    /// The response failed cryptographic verification.
    Verify(VerifyError),
}

impl std::fmt::Display for ClientNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientNetError::Io(e) => write!(f, "network I/O: {e}"),
            ClientNetError::Wire(e) => write!(f, "protocol decode: {e}"),
            ClientNetError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientNetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientNetError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ClientNetError {}

impl From<io::Error> for ClientNetError {
    fn from(e: io::Error) -> Self {
        ClientNetError::Io(e)
    }
}
impl From<WireError> for ClientNetError {
    fn from(e: WireError) -> Self {
        ClientNetError::Wire(e)
    }
}
impl From<VerifyError> for ClientNetError {
    fn from(e: VerifyError) -> Self {
        ClientNetError::Verify(e)
    }
}

/// Backoff schedule for [`Connection::query_terms_retrying`]: capped
/// exponential with **decorrelating jitter** — attempt `i` waits
/// `min(base · 2^i, cap)`, then shaves off a seeded-random fraction of
/// up to [`RetryPolicy::jitter`] so a herd of clients shed by the same
/// overloaded server does not reconnect in lockstep and re-create the
/// spike that shed them. The cap keeps a long outage from growing
/// unbounded sleeps.
///
/// The jittered delay is a **pure function of `(seed, attempt)`**
/// ([`RetryPolicy::jittered_delay`]): per-client seeds (the entropy
/// default) decorrelate the herd, while a fixed seed makes every sleep
/// reproducible — which is how the schedule is unit-tested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (`1` = no retry).
    pub max_attempts: usize,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Largest fraction of the exponential delay that jitter may remove:
    /// attempt `i` sleeps uniformly in `[(1 − jitter) · dᵢ, dᵢ]`.
    /// Clamped to `[0, 1]`; `0.0` restores the exact deterministic
    /// schedule of [`RetryPolicy::delay`]. Default `0.5`.
    pub jitter: f64,
    /// Seed of the jitter stream. The default draws per-policy entropy
    /// (distinct clients → distinct schedules); pin it for reproducible
    /// sleeps in tests and simulations.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(800),
            jitter: 0.5,
            seed: entropy_seed(),
        }
    }
}

/// A per-call entropy seed: hasher-keyed randomness (the same source
/// the key cache uses — see `crypto::rsa`), good enough to decorrelate
/// client backoff schedules; no cryptographic claim.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

impl RetryPolicy {
    /// The undithered delay after failed attempt `attempt` (0-based) —
    /// the upper envelope of [`RetryPolicy::jittered_delay`].
    pub fn delay(&self, attempt: usize) -> Duration {
        // 2^attempt with the shift clamped so the multiply cannot
        // overflow before the cap applies.
        let factor = 1u32 << attempt.min(20) as u32;
        self.cap.min(self.base.saturating_mul(factor))
    }

    /// The delay actually slept after failed attempt `attempt`:
    /// [`RetryPolicy::delay`] minus a uniform random shave of up to
    /// [`RetryPolicy::jitter`] of it. Pure in `(seed, attempt)` — same
    /// inputs, same `Duration`, with no state carried between calls —
    /// so a retry loop that skips attempts (or several loops sharing a
    /// policy) stays reproducible.
    pub fn jittered_delay(&self, attempt: usize) -> Duration {
        let d = self.delay(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return d;
        }
        // Decorrelate attempts by mixing the attempt index into the
        // seed (SplitMix64's odd constant), then draw one uniform.
        let stream = self.seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u: f64 = StdRng::seed_from_u64(stream).gen();
        d.mul_f64(1.0 - jitter * u)
    }
}

/// A verifying client connected to a running [`crate::server`]: sends
/// framed queries, receives framed responses, and accepts **nothing**
/// until the VO inside checks out against the owner's public
/// parameters — the server stays untrusted end to end.
pub struct Connection {
    stream: TcpStream,
    client: Client,
    /// Resolved peer address, kept for [`Connection::reconnect`] (the
    /// retry-on-busy path needs a fresh socket — a shed connection is
    /// closed by the server right after the BUSY frame).
    addr: SocketAddr,
    /// Whether sockets are opened with `TCP_NODELAY` (see
    /// [`Connection::connect_with_nodelay`]).
    nodelay: bool,
    /// The stream's framing can no longer be trusted (a reply header
    /// failed to parse, so the next frame boundary is unknown). Every
    /// subsequent operation fails fast instead of misreading stale
    /// bytes as answers to new queries.
    desynced: bool,
    /// Dial timeout used by [`Connection::connect_timeout`] and
    /// remembered for [`Connection::reconnect`]; `None` dials with the
    /// OS default (which can block for minutes against a black-holed
    /// peer).
    dial_timeout: Option<Duration>,
}

impl Connection {
    /// Connect to a server and verify against `params` (obtained from
    /// the data owner's broadcast, *not* from the server).
    pub fn connect<A: ToSocketAddrs>(addr: A, params: VerifierParams) -> io::Result<Connection> {
        Connection::connect_with_nodelay(addr, params, true)
    }

    /// [`Connection::connect`] with `TCP_NODELAY` explicit. The default
    /// (`true`) is right for this protocol — request and reply frames
    /// are small, and Nagle batching adds a delayed-ACK round trip to
    /// every exchange; `false` exists for measurement (`bench_pr5`
    /// records the latency gap).
    pub fn connect_with_nodelay<A: ToSocketAddrs>(
        addr: A,
        params: VerifierParams,
        nodelay: bool,
    ) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        if nodelay {
            stream.set_nodelay(true)?;
        }
        let addr = stream.peer_addr()?;
        Ok(Connection {
            stream,
            client: Client::new(params),
            addr,
            nodelay,
            desynced: false,
            dial_timeout: None,
        })
    }

    /// [`Connection::connect`] with a bound on the TCP handshake
    /// itself. `TcpStream::connect` can block for the OS's connect
    /// timeout (minutes against a silently dropping peer); this helper
    /// dials each resolved address with a nonblocking connect polled up
    /// to `timeout` — the right client-side posture against the
    /// event-driven server core, whose accept queue (not a per-thread
    /// rendezvous) absorbs dial bursts. The timeout is remembered and
    /// reused by [`Connection::reconnect`].
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        params: VerifierParams,
        timeout: Duration,
    ) -> io::Result<Connection> {
        Connection::connect_timeout_with_nodelay(addr, params, timeout, true)
    }

    /// [`Connection::connect_timeout`] with `TCP_NODELAY` explicit (see
    /// [`Connection::connect_with_nodelay`] for the trade-off).
    pub fn connect_timeout_with_nodelay<A: ToSocketAddrs>(
        addr: A,
        params: VerifierParams,
        timeout: Duration,
        nodelay: bool,
    ) -> io::Result<Connection> {
        let mut last_err: Option<io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    if nodelay {
                        stream.set_nodelay(true)?;
                    }
                    let addr = stream.peer_addr()?;
                    return Ok(Connection {
                        stream,
                        client: Client::new(params),
                        addr,
                        nodelay,
                        desynced: false,
                        dial_timeout: Some(timeout),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to no candidates",
            )
        }))
    }

    /// Drop the current socket and dial the same server again, clearing
    /// any desynchronization — the transport is fresh; the verification
    /// parameters (and their trust root) are unchanged. A connection
    /// opened with [`Connection::connect_timeout`] redials under the
    /// same bound.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = match self.dial_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout)?,
            None => TcpStream::connect(self.addr)?,
        };
        if self.nodelay {
            stream.set_nodelay(true)?;
        }
        self.stream = stream;
        self.desynced = false;
        Ok(())
    }

    /// The local verifying client (for offline re-checks).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Pose a query as explicit `(term, f_{Q,t})` pairs (strictly
    /// ascending term ids) and verify the reply. The server's term echo
    /// must byte-match the posed pairs — a server answering a different
    /// query than asked is a protocol violation, caught before any
    /// crypto runs.
    pub fn query_terms(
        &mut self,
        terms: &[(TermId, u32)],
        r: usize,
    ) -> Result<(VerifiedResult, QueryResponse), ClientNetError> {
        self.send(&Request::Terms {
            terms: terms.to_vec(),
            r: request_r(r)?,
            want_digests: false,
        })?;
        let (echo, response) = self.receive()?;
        if echo != terms {
            return Err(ClientNetError::Protocol(format!(
                "server echoed terms {echo:?} for a query posing {terms:?}"
            )));
        }
        let verified = self.client.verify_terms(terms, r, &response)?;
        Ok((verified, response))
    }

    /// [`Connection::query_terms`] with retry-on-busy: a server at its
    /// connection cap answers with a typed
    /// [`crate::wire::errcode::BUSY`] frame and closes — this wrapper
    /// backs off per `policy` (capped exponential), reconnects, and
    /// tries again, up to `policy.max_attempts` total attempts.
    /// A [`crate::wire::errcode::TIMEOUT`] idle eviction and
    /// connection-level I/O failures (reset/EOF — the close racing a
    /// refusal frame, or a server mid-restart) retry the same way;
    /// every other error, above all a **verification failure**,
    /// surfaces immediately — retrying cannot make a forged proof
    /// honest.
    pub fn query_terms_retrying(
        &mut self,
        terms: &[(TermId, u32)],
        r: usize,
        policy: RetryPolicy,
    ) -> Result<(VerifiedResult, QueryResponse), ClientNetError> {
        let mut attempt = 0usize;
        loop {
            let result = self.query_terms(terms, r);
            let retriable = match &result {
                // TIMEOUT is the server's idle eviction ("reconnect to
                // continue") — the same condition surfaces as an I/O
                // error when the close wins the race, so treat both
                // uniformly.
                Err(ClientNetError::Server { code, .. }) => {
                    *code == wire::errcode::BUSY || *code == wire::errcode::TIMEOUT
                }
                Err(ClientNetError::Io(e)) => matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::BrokenPipe
                        | io::ErrorKind::UnexpectedEof
                ),
                _ => false,
            };
            if !retriable || attempt + 1 >= policy.max_attempts.max(1) {
                return result;
            }
            std::thread::sleep(policy.jittered_delay(attempt));
            attempt += 1;
            // A failed reconnect leaves the dead socket in place; the
            // next attempt fails fast with a retriable I/O error and
            // dials again, so the policy's budget still bounds the loop.
            // lint:allow(swallowed-result): a failed dial is retried by the bounded policy loop (see comment above)
            let _ = self.reconnect();
        }
    }

    /// Pose a term query in **digest mode**: ask the server to stream
    /// the VO with `(doc, h(content))` pairs instead of echoing full
    /// result-document contents ([`crate::wire::Reply::OkDigest`]).
    /// TNRA verification never consumes the contents, so the verdict is
    /// byte-identical to [`Connection::query_terms`] (regression-tested
    /// against the attack suite); the returned `response` has an empty
    /// `contents`. A TRA server falls back to the full echo — then the
    /// digests are computed locally from the delivered (and verified)
    /// contents, so the caller sees one shape either way.
    #[allow(clippy::type_complexity)]
    pub fn query_terms_digests(
        &mut self,
        terms: &[(TermId, u32)],
        r: usize,
    ) -> Result<(VerifiedResult, QueryResponse, Vec<(DocId, Digest)>), ClientNetError> {
        self.send(&Request::Terms {
            terms: terms.to_vec(),
            r: request_r(r)?,
            want_digests: true,
        })?;
        let (echo, response, digests) = self.receive_any()?;
        if echo != terms {
            return Err(ClientNetError::Protocol(format!(
                "server echoed terms {echo:?} for a query posing {terms:?}"
            )));
        }
        let verified = self.client.verify_terms(terms, r, &response)?;
        let digests = digests.unwrap_or_else(|| response.content_digests());
        Ok((verified, response, digests))
    }

    /// Pose a **conjunctive** query as explicit `(term, f_{Q,t})` pairs
    /// (strictly ascending term ids) and verify the reply: only
    /// documents containing every term may appear, and the client
    /// accepts nothing until the VO proves the intersection is exact
    /// ([`Client::verify_conjunctive_terms`] — verification runs
    /// *before* any verdict is returned). The server's term echo must
    /// byte-match the posed pairs, exactly as in
    /// [`Connection::query_terms`].
    pub fn query_conjunctive(
        &mut self,
        terms: &[(TermId, u32)],
        r: usize,
    ) -> Result<(VerifiedResult, QueryResponse), ClientNetError> {
        self.send(&Request::ConjunctiveTerms {
            terms: terms.to_vec(),
            r: request_r(r)?,
            want_digests: false,
        })?;
        let (echo, response) = self.receive()?;
        if echo != terms {
            return Err(ClientNetError::Protocol(format!(
                "server echoed terms {echo:?} for a conjunctive query posing {terms:?}"
            )));
        }
        let verified = self.client.verify_conjunctive_terms(terms, r, &response)?;
        Ok((verified, response))
    }

    /// Pose a natural-language query. The server parses it against its
    /// dictionary and echoes the parse; the echo is what gets verified
    /// (the parse only fixes *which* query is asked — all integrity
    /// guarantees then hold for exactly that query). Returns the parse
    /// alongside the verified result so the caller can inspect it.
    #[allow(clippy::type_complexity)]
    pub fn query_text(
        &mut self,
        text: &str,
        r: usize,
    ) -> Result<(Vec<(TermId, u32)>, VerifiedResult, QueryResponse), ClientNetError> {
        self.send(&Request::Text {
            text: text.to_string(),
            r: request_r(r)?,
            want_digests: false,
        })?;
        let (echo, response) = self.receive()?;
        let verified = self.client.verify_terms(&echo, r, &response)?;
        Ok((echo, verified, response))
    }

    /// Pose a batch of term queries, **pipelined**: up to
    /// [`PIPELINE_WINDOW`] requests are in flight before the oldest
    /// reply is read (amortizing round trips without a per-query wait),
    /// then every response is verified through [`Client::verify_batch`]
    /// so signatures shared across responses cost one RSA
    /// exponentiation total. Result `i` corresponds to query `i`; a bad
    /// response (or a verification failure) taints only its own slot,
    /// exactly like the local batch path.
    ///
    /// The window is what makes the pipeline deadlock-free against the
    /// server's read-one/write-one connection loop: with unbounded
    /// writes, a large batch of large responses can fill both TCP
    /// buffers while each side blocks in `write_all`. Bounding the
    /// in-flight requests keeps the client draining replies, so the
    /// server's writes always make progress.
    #[allow(clippy::type_complexity)]
    pub fn query_terms_batch(
        &mut self,
        queries: &[Vec<(TermId, u32)>],
        r: usize,
    ) -> Result<Vec<Result<(VerifiedResult, QueryResponse), ClientNetError>>, ClientNetError> {
        let wire_r = request_r(r)?;
        // Encode every request *before* sending the first one: an
        // unencodable query (e.g. > 2¹⁶ terms) must fail the batch while
        // the connection is still clean — aborting mid-batch would leave
        // pipelined replies unread and desynchronize the stream.
        let frames: Vec<Vec<u8>> = queries
            .iter()
            .map(|terms| {
                Request::Terms {
                    terms: terms.clone(),
                    r: wire_r,
                    want_digests: false,
                }
                .encode_frame()
            })
            .collect::<Result<_, _>>()?;
        let mut replies: Vec<Result<(Vec<(TermId, u32)>, QueryResponse), ClientNetError>> =
            Vec::with_capacity(queries.len());
        let mut in_flight = 0usize;
        for frame in &frames {
            if in_flight == PIPELINE_WINDOW {
                replies.push(self.receive());
                in_flight -= 1;
            }
            // A socket-level write failure means the connection is dead;
            // outstanding replies are unreadable anyway.
            self.stream.write_all(frame)?;
            in_flight += 1;
        }
        for _ in 0..in_flight {
            replies.push(self.receive());
        }
        // Verify the successfully received responses as one batch
        // (shared-signature memoization), then zip verdicts back.
        //
        // Alignment is structural, not positional: the pass that queues
        // a response for verification records, *in the same slot*, the
        // index its verdict will land at. A reply that arrived as an
        // error frame or with a mismatched echo surfaces as exactly
        // that slot's per-query error — it can never shift a neighbor
        // onto someone else's verdict (the bug a running `next()`
        // cursor over a separately-filtered iterator invites).
        let mut requests: Vec<(&[(TermId, u32)], &QueryResponse)> = Vec::new();
        let mut verdict_index: Vec<Option<usize>> = Vec::with_capacity(queries.len());
        for (terms, reply) in queries.iter().zip(&replies) {
            match reply {
                Ok((echo, response)) if echo == terms => {
                    verdict_index.push(Some(requests.len()));
                    requests.push((terms.as_slice(), response));
                }
                _ => verdict_index.push(None),
            }
        }
        let mut verdicts: Vec<Option<Result<VerifiedResult, VerifyError>>> = self
            .client
            .verify_batch(&requests, r)
            .into_iter()
            .map(Some)
            .collect();
        let out = queries
            .iter()
            .zip(replies)
            .zip(verdict_index)
            .map(|((terms, reply), vix)| {
                let (echo, response) = reply?;
                if echo != *terms {
                    return Err(ClientNetError::Protocol(format!(
                        "server echoed terms {echo:?} for a query posing {terms:?}"
                    )));
                }
                // Every well-echoed reply was queued above, so its slot
                // holds exactly one unconsumed verdict; anything else is
                // a protocol-level accounting failure, not a panic.
                let verdict = vix
                    .and_then(|ix| verdicts.get_mut(ix))
                    .and_then(Option::take)
                    .ok_or_else(|| {
                        ClientNetError::Protocol("verdict missing for a well-echoed reply".into())
                    })?;
                Ok((verdict?, response))
            })
            .collect();
        Ok(out)
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientNetError> {
        let bytes = request.encode_frame()?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Read one reply frame, surfacing server-side error frames as
    /// [`ClientNetError::Server`]. A header that fails to parse loses
    /// the frame boundary and permanently poisons the connection (see
    /// [`Connection::desynced`]); a well-framed reply whose *payload*
    /// is malformed keeps the stream in sync — exactly the advertised
    /// bytes were consumed — so later queries on the connection remain
    /// sound.
    fn receive_reply(&mut self) -> Result<Reply, ClientNetError> {
        if self.desynced {
            return Err(ClientNetError::Protocol(
                "connection desynchronized by an earlier framing error; reconnect".to_string(),
            ));
        }
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (kind, len) = match wire::decode_frame_header(&header) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.desynced = true;
                return Err(ClientNetError::Wire(e));
            }
        };
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        Ok(wire::decode_reply_payload(kind, &payload)?)
    }

    /// Receive for queries that did **not** ask for digest mode: a
    /// digest-mode reply is a protocol violation (a server must not
    /// strip contents the client never agreed to forgo).
    #[allow(clippy::type_complexity)]
    fn receive(&mut self) -> Result<(Vec<(TermId, u32)>, QueryResponse), ClientNetError> {
        match self.receive_reply()? {
            Reply::Ok { terms, response } => Ok((terms, response)),
            Reply::OkDigest { .. } => Err(ClientNetError::Protocol(
                "unsolicited digest-mode reply to a full-echo query".to_string(),
            )),
            Reply::Err { code, message } => Err(ClientNetError::Server { code, message }),
        }
    }

    /// Receive for digest-mode queries: accepts the digest reply
    /// (`Some(digests)`) or the full-echo fallback (`None` — the caller
    /// derives digests from the delivered contents).
    #[allow(clippy::type_complexity)]
    fn receive_any(
        &mut self,
    ) -> Result<
        (
            Vec<(TermId, u32)>,
            QueryResponse,
            Option<Vec<(DocId, Digest)>>,
        ),
        ClientNetError,
    > {
        match self.receive_reply()? {
            Reply::Ok { terms, response } => Ok((terms, response, None)),
            Reply::OkDigest {
                terms,
                response,
                digests,
            } => Ok((terms, response, Some(digests))),
            Reply::Err { code, message } => Err(ClientNetError::Server { code, message }),
        }
    }
}

/// Maximum requests in flight on one connection during
/// [`Connection::query_terms_batch`]. Requests are small (≤ ~0.5 MiB by
/// the u16 length prefixes, a few hundred bytes in practice), so eight
/// of them sit comfortably inside the kernel socket buffers — the
/// client's sends never block, which is the invariant the deadlock-
/// freedom argument in `query_terms_batch` rests on.
pub const PIPELINE_WINDOW: usize = 8;

/// Client-side **phrase** post-filter over a verified conjunctive
/// response: keep only the result documents whose delivered content
/// contains the phrase's tokens adjacently, in order.
///
/// This needs **no new server trust**. A TRA response already delivers
/// the full result-document contents, and verification has hashed each
/// one against the owner's *signed* document-MHT root (any altered byte
/// is a [`VerifyError::MissingContent`]-class rejection) — so by the
/// time this filter runs, the bytes it scans are provably the owner's.
/// The conjunctive VO proves every result document contains all the
/// phrase's words; adjacency is then a pure client-side predicate over
/// authenticated text. Call it only **after**
/// [`Client::verify_conjunctive_terms`] (or
/// [`Connection::query_conjunctive`], which verifies internally)
/// accepted the response.
///
/// Matching mirrors the indexing pipeline: the phrase and the contents
/// are tokenized with stopwords **kept** ([`tokenize_all`] — a phrase
/// is about exact adjacency, which stopword removal would fake), and
/// compared case-insensitively. An empty phrase (or one that tokenizes
/// to nothing) filters nothing: every result document is returned, in
/// result order.
///
/// [`tokenize_all`]: authsearch_corpus::tokenizer::tokenize_all
pub fn phrase_filter(phrase: &str, response: &QueryResponse) -> Vec<DocId> {
    let want: Vec<String> = authsearch_corpus::tokenizer::tokenize_all(phrase).collect();
    if want.is_empty() {
        return response.result.docs();
    }
    response
        .result
        .entries
        .iter()
        .map(|e| e.doc)
        .filter(|&d| {
            let Some((_, bytes)) = response.contents.iter().find(|(doc, _)| *doc == d) else {
                return false;
            };
            let text = String::from_utf8_lossy(bytes);
            let words: Vec<String> = authsearch_corpus::tokenizer::tokenize_all(&text).collect();
            words.windows(want.len()).any(|w| w == want.as_slice())
        })
        .collect()
}

/// An `r` a request frame can carry.
fn request_r(r: usize) -> Result<u32, ClientNetError> {
    u32::try_from(r)
        .map_err(|_| ClientNetError::Protocol(format!("r = {r} not representable on the wire")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::engine::SearchEngine;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_corpus::SyntheticConfig;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn setup(mechanism: Mechanism) -> (SearchEngine, Client, Vec<TermId>) {
        let corpus = SyntheticConfig::tiny(120, 17).generate();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        let terms =
            authsearch_corpus::workload::synthetic(publication.auth.index().num_terms(), 1, 3, 7)
                .remove(0);
        let client = Client::new(publication.verifier_params);
        (SearchEngine::new(publication.auth, corpus), client, terms)
    }

    #[test]
    fn client_verifies_all_mechanisms_from_terms_alone() {
        for mechanism in Mechanism::ALL {
            let (engine, client, terms) = setup(mechanism);
            let query = Query::from_term_ids(engine.auth().index(), &terms);
            let response = engine.search(&query, 5);
            let pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            client
                .verify_terms(&pairs, 5, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
        }
    }

    #[test]
    fn client_verify_batch_round_trips_serve_batch() {
        let (engine, client, terms) = setup(Mechanism::TraCmht);
        let workloads: Vec<Vec<TermId>> =
            authsearch_corpus::workload::synthetic(engine.auth().index().num_terms(), 4, 2, 5);
        let queries: Vec<Query> = workloads
            .iter()
            .map(|t| Query::from_term_ids(engine.auth().index(), t))
            .collect();
        let responses = engine.serve_batch(&queries, 5);
        let pairs: Vec<Vec<(TermId, u32)>> = workloads
            .iter()
            .map(|w| w.iter().map(|&t| (t, 1)).collect())
            .collect();
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> = pairs
            .iter()
            .zip(&responses)
            .map(|(p, r)| (p.as_slice(), r))
            .collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert_eq!(verdicts.len(), queries.len());
        for (i, v) in verdicts.iter().enumerate() {
            let verified = v.as_ref().unwrap_or_else(|e| panic!("response {i}: {e}"));
            assert_eq!(verified.result, responses[i].result);
        }
        // One corrupted response is rejected without affecting the rest.
        let mut responses = responses;
        if let Some(sig) = responses[1].vo.terms[0].signature.as_mut() {
            sig[0] ^= 0x80;
        }
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> = pairs
            .iter()
            .zip(&responses)
            .map(|(p, r)| (p.as_slice(), r))
            .collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert!(verdicts[0].is_ok());
        assert!(matches!(
            verdicts[1],
            Err(VerifyError::TermSignature { .. })
        ));
        assert!(verdicts[2].is_ok());
        let _ = terms;
    }

    #[test]
    fn memoized_batch_verification_stays_sound() {
        // The same response repeated across a batch exercises the
        // cross-response signature memo (responses 2..n re-prove
        // nothing); a tampered copy in the middle must still be caught
        // — its (message, signature) pairs differ from the memoized
        // ones — and later honest copies must still pass.
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let honest = engine.search(&query, 5);
        let mut tampered = honest.clone();
        tampered.vo.terms[0].ft += 1; // changes the signed message
        let pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        let responses = [&honest, &honest, &tampered, &honest];
        let requests: Vec<(&[(TermId, u32)], &crate::auth::serve::QueryResponse)> =
            responses.iter().map(|r| (pairs.as_slice(), *r)).collect();
        let verdicts = client.verify_batch(&requests, 5);
        assert!(verdicts[0].is_ok());
        assert!(verdicts[1].is_ok());
        assert!(verdicts[2].is_err(), "tampered copy must not ride the memo");
        assert!(verdicts[3].is_ok());
    }

    #[test]
    fn client_rejects_wrong_term_alignment() {
        let (engine, client, terms) = setup(Mechanism::TnraMht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let response = engine.search(&query, 5);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.swap(0, 1);
        assert!(matches!(
            client.verify_terms(&pairs, 5, &response),
            Err(VerifyError::QueryShapeMismatch(_))
        ));
    }

    fn loopback(mechanism: Mechanism) -> (crate::server::ServerHandle, Connection, Vec<TermId>) {
        let (engine, client, terms) = setup(mechanism);
        let params = client.params().clone();
        let handle = crate::server::Server::start(
            std::sync::Arc::new(engine),
            "127.0.0.1:0",
            crate::server::ServerConfig::default(),
        )
        .expect("bind loopback");
        let connection = Connection::connect(handle.addr(), params).expect("connect");
        (handle, connection, terms)
    }

    #[test]
    fn connected_client_verifies_term_queries() {
        let (handle, mut connection, terms) = loopback(Mechanism::TraCmht);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        let (verified, response) = connection.query_terms(&pairs, 5).expect("verified");
        assert_eq!(verified.result, response.result);
        handle.shutdown();
    }

    #[test]
    fn connect_timeout_dials_queries_and_redials_under_the_bound() {
        let (engine, client, terms) = setup(Mechanism::TraCmht);
        let params = client.params().clone();
        let handle = crate::server::Server::start(
            std::sync::Arc::new(engine),
            "127.0.0.1:0",
            crate::server::ServerConfig::default(),
        )
        .expect("bind loopback");
        let mut connection =
            Connection::connect_timeout(handle.addr(), params, Duration::from_secs(5))
                .expect("bounded dial");
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        let (verified, response) = connection.query_terms(&pairs, 5).expect("verified");
        assert_eq!(verified.result, response.result);
        // Redial reuses the remembered bound and yields a working frame
        // stream again.
        connection.reconnect().expect("bounded redial");
        let (verified, response) = connection.query_terms(&pairs, 5).expect("after redial");
        assert_eq!(verified.result, response.result);
        handle.shutdown();
    }

    #[test]
    fn connect_timeout_to_a_dead_port_fails_rather_than_hanging() {
        // Bind a port, then drop the listener: the port is known-dead,
        // so the bounded dial must fail promptly (refused), not park.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
            listener.local_addr().expect("probe addr").port()
        };
        let (_, client, _) = setup(Mechanism::TraCmht);
        let started = std::time::Instant::now();
        let result = Connection::connect_timeout(
            ("127.0.0.1", port),
            client.params().clone(),
            Duration::from_secs(2),
        );
        assert!(result.is_err(), "dial to a dead port must not succeed");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "bounded dial must not hang"
        );
    }

    #[test]
    fn connected_client_batch_is_pipelined_and_isolated() {
        let (handle, mut connection, _) = loopback(Mechanism::TnraCmht);
        let queries: Vec<Vec<(TermId, u32)>> = vec![
            vec![(0, 1), (3, 1)],
            vec![(999_999, 1)], // out of dictionary → server error slot
            vec![(0, 1), (3, 1)],
            vec![(2, 2)],
        ];
        let out = connection.query_terms_batch(&queries, 4).expect("batch");
        assert_eq!(out.len(), 4);
        assert!(out[0].is_ok(), "{:?}", out[0].as_ref().err());
        assert!(matches!(
            out[1],
            Err(ClientNetError::Server {
                code: crate::wire::errcode::BAD_QUERY,
                ..
            })
        ));
        assert!(out[2].is_ok());
        assert!(out[3].is_ok());
        // Repeated query: bit-identical responses.
        let (a, b) = (out[0].as_ref().unwrap(), out[2].as_ref().unwrap());
        assert_eq!(a.1, b.1);
        handle.shutdown();
    }

    #[test]
    fn connected_client_text_query_returns_server_parse() {
        let (engine, client, _) = setup(Mechanism::TnraMht);
        let params = client.params().clone();
        let engine = std::sync::Arc::new(engine);
        let handle = crate::server::Server::start(
            std::sync::Arc::clone(&engine),
            "127.0.0.1:0",
            crate::server::ServerConfig::default(),
        )
        .unwrap();
        let mut connection = Connection::connect(handle.addr(), params).unwrap();
        // Build a text query from real dictionary words.
        let text = engine.corpus().term(1).to_string();
        let (parse, verified, response) = connection.query_text(&text, 3).expect("verified");
        assert_eq!(parse.len(), 1);
        assert_eq!(verified.result, response.result);
        handle.shutdown();
    }

    #[test]
    fn retrying_query_waits_out_a_busy_server() {
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let params = client.params().clone();
        let handle = crate::server::Server::start(
            std::sync::Arc::new(engine),
            "127.0.0.1:0",
            crate::server::ServerConfig {
                max_connections: 1,
                poll_interval: Duration::from_millis(10),
                ..crate::server::ServerConfig::default()
            },
        )
        .unwrap();
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        // A occupies the single slot.
        let mut a = Connection::connect(handle.addr(), params.clone()).unwrap();
        a.query_terms(&pairs, 5).expect("A is admitted");
        // B without retry: the typed BUSY error, immediately.
        let mut b = Connection::connect(handle.addr(), params).unwrap();
        match b.query_terms(&pairs, 5) {
            Err(ClientNetError::Server { code, .. }) => {
                assert_eq!(code, crate::wire::errcode::BUSY)
            }
            other => panic!("expected BUSY, got {other:?}"),
        }
        // Free the slot shortly; B's retry loop must then get through.
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            drop(a);
        });
        let policy = RetryPolicy {
            max_attempts: 60,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let (verified, response) = b
            .query_terms_retrying(&pairs, 5, policy)
            .expect("retry succeeds once the slot frees");
        assert_eq!(verified.result, response.result);
        release.join().unwrap();
        let stats = handle.shutdown();
        assert!(stats.connections_shed >= 1, "B was shed at least once");
        assert_eq!(stats.active_highwater, 1);
    }

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(70),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.delay(0), Duration::from_millis(10));
        assert_eq!(policy.delay(1), Duration::from_millis(20));
        assert_eq!(policy.delay(2), Duration::from_millis(40));
        assert_eq!(policy.delay(3), Duration::from_millis(70)); // capped
        assert_eq!(policy.delay(60), Duration::from_millis(70)); // no overflow
    }

    #[test]
    fn jittered_backoff_is_deterministic_under_a_fixed_seed() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(800),
            jitter: 0.5,
            seed: 42,
        };
        for attempt in 0..8 {
            let a = policy.jittered_delay(attempt);
            let b = policy.jittered_delay(attempt);
            assert_eq!(a, b, "pure in (seed, attempt)");
            // Bounded by [(1 − jitter)·d, d].
            let d = policy.delay(attempt);
            assert!(a <= d, "attempt {attempt}: {a:?} > {d:?}");
            assert!(
                a >= d.mul_f64(0.5),
                "attempt {attempt}: {a:?} shaved too far"
            );
        }
        // Replays are independent of call order (no hidden RNG state).
        let late = policy.jittered_delay(5);
        let early = policy.jittered_delay(1);
        assert_eq!(late, policy.jittered_delay(5));
        assert_eq!(early, policy.jittered_delay(1));
    }

    #[test]
    fn jittered_backoff_decorrelates_across_seeds() {
        let base = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(10),
            jitter: 1.0,
            seed: 0,
        };
        // Across many seeds, some attempt must differ: identical full
        // schedules would mean the seed is ignored (the thundering-herd
        // bug this field exists to prevent).
        let schedule = |seed: u64| -> Vec<Duration> {
            let policy = RetryPolicy { seed, ..base };
            (0..6).map(|i| policy.jittered_delay(i)).collect()
        };
        let reference = schedule(1);
        assert!(
            (2..32).any(|s| schedule(s) != reference),
            "every seed produced the same schedule"
        );
    }

    #[test]
    fn zero_jitter_restores_the_exact_schedule() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(70),
            jitter: 0.0,
            seed: 7,
        };
        for attempt in 0..8 {
            assert_eq!(policy.jittered_delay(attempt), policy.delay(attempt));
        }
        // Out-of-range jitter clamps instead of inverting the range.
        let wild = RetryPolicy {
            jitter: 7.5,
            ..policy
        };
        for attempt in 0..8 {
            assert!(wild.jittered_delay(attempt) <= wild.delay(attempt));
        }
    }

    #[test]
    fn digest_query_verdict_matches_full_echo_over_loopback() {
        // TNRA: digest mode saves the contents echo and must verify to
        // the same verdict; the digests name exactly the result docs.
        let (handle, mut connection, terms) = loopback(Mechanism::TnraCmht);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let (full_verified, full_response) = connection.query_terms(&pairs, 5).expect("full echo");
        let (slim_verified, slim_response, digests) = connection
            .query_terms_digests(&pairs, 5)
            .expect("digest mode");
        assert_eq!(full_verified, slim_verified);
        assert_eq!(full_response.vo, slim_response.vo);
        assert!(slim_response.contents.is_empty());
        assert_eq!(digests, full_response.content_digests());
        handle.shutdown();
        // TRA: the server falls back to the full echo; the client
        // derives the digests locally so the caller sees one shape.
        let (handle, mut connection, terms) = loopback(Mechanism::TraCmht);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let (_, response, digests) = connection.query_terms_digests(&pairs, 5).expect("fallback");
        assert!(!response.contents.is_empty(), "TRA needs the contents");
        assert_eq!(digests, response.content_digests());
        handle.shutdown();
    }

    #[test]
    fn batch_slots_stay_aligned_through_a_misbehaving_server() {
        // Regression for the pipelined batch: an error frame in slot 1
        // and a tampered echo in slot 2 must surface as exactly those
        // slots' errors — and slot 3 must verify against its OWN
        // response, not inherit a neighbor's verdict.
        use std::net::TcpListener;
        let (engine, client, _) = setup(Mechanism::TnraCmht);
        let engine = std::sync::Arc::new(engine);
        let params = client.params().clone();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let engine = std::sync::Arc::clone(&engine);
            std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                let mut slot = 0usize;
                loop {
                    let mut header = [0u8; wire::FRAME_HEADER_LEN];
                    if stream.read_exact(&mut header).is_err() {
                        return; // client done
                    }
                    let (kind, len) = wire::decode_frame_header(&header).unwrap();
                    let mut payload = vec![0u8; len];
                    stream.read_exact(&mut payload).unwrap();
                    let Request::Terms { terms, r, .. } =
                        Request::decode_payload(kind, &payload).unwrap()
                    else {
                        panic!("term requests only")
                    };
                    let query = Query::from_term_pairs(engine.auth().index(), &terms);
                    let response = engine.search(&query, r as usize);
                    let bytes = match slot {
                        1 => wire::encode_err_reply(crate::wire::errcode::INTERNAL, "injected")
                            .unwrap(),
                        2 => {
                            // Honest response, lying echo.
                            let mut echo = terms.clone();
                            echo[0].1 += 7;
                            wire::encode_ok_reply(&echo, &response).unwrap()
                        }
                        _ => wire::encode_ok_reply(&terms, &response).unwrap(),
                    };
                    stream.write_all(&bytes).unwrap();
                    slot += 1;
                }
            })
        };
        let mut connection = Connection::connect(addr, params).unwrap();
        let queries: Vec<Vec<(TermId, u32)>> = vec![
            vec![(0, 1), (2, 1)],
            vec![(1, 1)],
            vec![(0, 1), (3, 1)],
            vec![(2, 2)],
        ];
        let out = connection.query_terms_batch(&queries, 5).expect("batch");
        assert_eq!(out.len(), 4);
        assert!(out[0].is_ok(), "{:?}", out[0].as_ref().err());
        assert!(matches!(
            out[1],
            Err(ClientNetError::Server {
                code: crate::wire::errcode::INTERNAL,
                ..
            })
        ));
        assert!(matches!(out[2], Err(ClientNetError::Protocol(_))));
        let (verified, response) = out[3].as_ref().expect("slot 3 is honest");
        assert_eq!(verified.result, response.result);
        // The alignment proof: slot 3's response is the engine's answer
        // to QUERY 3 (not a shifted neighbor's).
        let want = engine.search(
            &Query::from_term_pairs(engine.auth().index(), &queries[3]),
            5,
        );
        assert_eq!(response.result, want.result);
        assert_eq!(response.vo, want.vo);
        drop(connection);
        server.join().unwrap();
    }

    #[test]
    fn connected_client_verifies_conjunctive_queries() {
        for mechanism in [Mechanism::TraMht, Mechanism::TnraCmht] {
            let (handle, mut connection, terms) = loopback(mechanism);
            let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            pairs.sort_unstable();
            pairs.dedup_by_key(|p| p.0);
            let (verified, response) = connection
                .query_conjunctive(&pairs, 5)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            assert_eq!(verified.result, response.result);
            handle.shutdown();
        }
    }

    #[test]
    fn conjunctive_verdict_rejects_a_disjunctive_response() {
        // A server answering a conjunctive ask with its disjunctive VO
        // must be rejected by the client's conjunctive verifier.
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let mut pairs: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let query = Query::from_term_pairs(engine.auth().index(), &pairs);
        let conj = engine.search_conjunctive(&query, 5);
        let disj = engine.search(&query, 5);
        client
            .verify_conjunctive_terms(&pairs, 5, &conj)
            .expect("honest conjunctive response verifies");
        if disj.result != conj.result {
            assert!(
                client.verify_conjunctive_terms(&pairs, 5, &disj).is_err(),
                "disjunctive response must not pass the conjunctive verifier"
            );
        }
    }

    #[test]
    fn phrase_filter_keeps_adjacent_in_order_matches_only() {
        use crate::auth::AuthConfig;
        use authsearch_corpus::CorpusBuilder;
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep")
            .add_text("the keeper of night shifts")
            .add_text("night keeper night keeper")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraMht)
        };
        let publication = owner.publish(&corpus, config);
        let engine = SearchEngine::new(publication.auth, corpus);
        let query = Query::from_text(engine.corpus(), engine.auth().index(), "night keeper");
        let response = engine.search_conjunctive(&query, 5);
        let client = Client::new(publication.verifier_params);
        let pairs: Vec<(TermId, u32)> = query.terms.iter().map(|qt| (qt.term, qt.f_qt)).collect();
        client
            .verify_conjunctive_terms(&pairs, 5, &response)
            .expect("verify before filtering");
        // All three docs contain both words; only 0 and 2 have them
        // adjacent in order ("keeper of night" is reversed in doc 1).
        let hits = phrase_filter("night keeper", &response);
        assert!(hits.contains(&0), "{hits:?}");
        assert!(hits.contains(&2), "{hits:?}");
        assert!(!hits.contains(&1), "{hits:?}");
        // Result order is preserved.
        let order: Vec<DocId> = response
            .result
            .docs()
            .into_iter()
            .filter(|d| hits.contains(d))
            .collect();
        assert_eq!(hits, order);
        // An empty phrase filters nothing.
        assert_eq!(phrase_filter("", &response), response.result.docs());
        assert_eq!(phrase_filter("!!!", &response), response.result.docs());
        // A phrase absent everywhere filters everything.
        assert!(phrase_filter("keep the night", &response).is_empty());
    }

    #[test]
    fn client_recomputed_weights_match_engine() {
        // The client's wq (from signed ft + public n) must agree with the
        // engine's (from the index) — otherwise honest replays would fail.
        let (engine, client, terms) = setup(Mechanism::TnraCmht);
        let query = Query::from_term_ids(engine.auth().index(), &terms);
        let response = engine.search(&query, 5);
        for (qt, tv) in query.terms.iter().zip(&response.vo.terms) {
            let wq = client
                .params()
                .okapi
                .query_weight(client.params().num_docs, tv.ft, qt.f_qt);
            assert_eq!(wq, qt.wq);
        }
    }
}
