//! Conjunctive (AND-semantics) candidate ranking, shared verbatim by
//! the engine ([`crate::auth::AuthenticatedIndex::query_conjunctive`])
//! and the verifier's replay ([`crate::verify::verify_conjunctive`]).
//!
//! Both sides run *this exact code* over the same inputs: candidates in
//! anchor-list order, per-term weights queried in ascending query-term
//! index order, scores accumulated in `f64` in that same order, results
//! canonicalized by [`insert_ranked`]. That is what makes the verifier's
//! score comparison an equality check (modulo [`SCORE_EPS`]) rather than
//! a tolerance band, and what keeps conjunctive responses bit-identical
//! across thread counts.
//!
//! [`SCORE_EPS`]: crate::verify
//! [`insert_ranked`]: crate::types

use crate::types::{insert_ranked, QueryResult};
use authsearch_corpus::DocId;

/// The anchor list of a conjunctive query: the shortest posting list
/// (smallest `f_t`), ties broken by the lowest query-term index. Every
/// intersection member must appear in every list, so enumerating the
/// shortest one covers all candidates with the cheapest full reveal.
///
/// The engine computes this from list lengths; the verifier recomputes
/// it from the *signed* `f_t` values, so a lying server cannot steer the
/// choice without breaking a signature.
pub(crate) fn anchor_index(fts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &ft) in fts.iter().enumerate() {
        if ft < fts[best] {
            best = i;
        }
    }
    best
}

/// Rank the conjunctive top-`r` over `candidates` (the anchor list's
/// documents, in list order). `wq` carries one query-side weight per
/// query term, in query order.
///
/// `weight_of(d, i)` returns the weight `w_{d,t_i}` of query term `i` in
/// document `d`, `0.0` for a (proven) absence, or `None` when the caller
/// cannot substantiate the weight at all — the verifier's "VO is
/// insufficient" case, surfaced as `Err((d, i))`. Terms are probed in
/// ascending index order and the first absence short-circuits, so both
/// sides demand exactly the same weights.
pub(crate) fn rank_intersection<F>(
    candidates: &[DocId],
    wq: &[f64],
    weight_of: F,
    r: usize,
) -> Result<QueryResult, (DocId, usize)>
where
    F: Fn(DocId, usize) -> Option<f32>,
{
    let mut entries = Vec::new();
    for &d in candidates {
        let mut score = 0.0f64;
        let mut member = true;
        for (i, &wq_i) in wq.iter().enumerate() {
            let w = weight_of(d, i).ok_or((d, i))?;
            if w <= 0.0 {
                member = false;
                break;
            }
            score += wq_i * w as f64;
        }
        if member {
            insert_ranked(&mut entries, d, score);
        }
    }
    entries.truncate(r);
    Ok(QueryResult { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_is_smallest_ft_lowest_index_on_ties() {
        assert_eq!(anchor_index(&[5, 3, 9]), 1);
        assert_eq!(anchor_index(&[3, 3, 3]), 0);
        assert_eq!(anchor_index(&[7]), 0);
        assert_eq!(anchor_index(&[4, 2, 2, 8]), 1);
    }

    #[test]
    fn rank_intersection_keeps_only_full_members() {
        // Doc 1 has both terms, doc 2 misses term 1, doc 3 has both.
        let weights = |d: DocId, i: usize| -> Option<f32> {
            Some(match (d, i) {
                (1, _) => 1.0,
                (2, 0) => 2.0,
                (2, 1) => 0.0,
                (3, 0) => 3.0,
                (3, 1) => 1.0,
                _ => 0.0,
            })
        };
        let out = rank_intersection(&[1, 2, 3], &[1.0, 1.0], weights, 10).unwrap();
        assert_eq!(out.docs(), vec![3, 1]); // 4.0 > 2.0
        assert!(out.is_ordered());
    }

    #[test]
    fn rank_intersection_truncates_to_r() {
        let out = rank_intersection(&[4, 5, 6], &[1.0], |d, _| Some(d as f32), 2).unwrap();
        assert_eq!(out.docs(), vec![6, 5]);
    }

    #[test]
    fn unproven_weight_aborts_with_the_culprit() {
        let err = rank_intersection(
            &[7, 8],
            &[1.0, 1.0],
            |d, i| if d == 8 && i == 1 { None } else { Some(1.0) },
            10,
        )
        .unwrap_err();
        assert_eq!(err, (8, 1));
    }

    #[test]
    fn absence_short_circuits_before_later_terms() {
        // Term 0 already absent from doc 9: term 1 must never be probed,
        // so a None there is irrelevant (both sides behave identically).
        let out = rank_intersection(
            &[9],
            &[1.0, 1.0],
            |_, i| if i == 0 { Some(0.0) } else { None },
            10,
        )
        .unwrap();
        assert!(out.entries.is_empty());
    }

    #[test]
    fn enumeration_order_is_canonicalized() {
        let weights = |d: DocId, _: usize| Some(d as f32);
        let a = rank_intersection(&[1, 2, 3], &[1.0], weights, 10).unwrap();
        let b = rank_intersection(&[3, 1, 2], &[1.0], weights, 10).unwrap();
        assert_eq!(a, b);
    }
}
