//! The third-party search engine (paper §3.1 system model).
//!
//! Operates the collection and authenticated index it received from the
//! data owner: accepts natural-language queries, runs the threshold
//! algorithm, and returns results with their verification objects. The
//! engine is the *untrusted* party — [`crate::attacks`] models what a
//! compromised instance might return instead.
//!
//! The artifact handed over by [`crate::DataOwner::publish`] is
//! identical whatever [`crate::AuthConfig::threads`] the owner built it
//! with, so the engine (and the user's verifier) never needs to know the
//! owner's build parallelism. Serving is fully concurrent: the structure
//! caches behind [`AuthenticatedIndex`] are sharded by key hash (one
//! lock per shard), and [`SearchEngine::serve_batch`] fans independent
//! queries out over the same work-stealing pool the owner build uses —
//! with per-query responses bit-identical to the sequential path.

use crate::auth::serve::QueryResponse;
use crate::auth::AuthenticatedIndex;
use crate::types::Query;
use authsearch_corpus::Corpus;

/// A running search engine instance.
pub struct SearchEngine {
    auth: AuthenticatedIndex,
    corpus: Corpus,
}

impl SearchEngine {
    /// Stand up an engine from the owner's transfer.
    pub fn new(auth: AuthenticatedIndex, corpus: Corpus) -> SearchEngine {
        assert_eq!(
            auth.index().num_docs(),
            corpus.num_docs(),
            "index/collection mismatch"
        );
        SearchEngine { auth, corpus }
    }

    /// Parse a natural-language query against the dictionary (terms not
    /// in the dictionary are ignored, per the system model).
    pub fn parse_query(&self, text: &str) -> Query {
        Query::from_text(&self.corpus, self.auth.index(), text)
    }

    /// Answer a parsed query: the top-`r` documents plus the VO.
    pub fn search(&self, query: &Query, r: usize) -> QueryResponse {
        self.auth.query(query, r, &self.corpus)
    }

    /// Convenience: parse then search.
    pub fn search_text(&self, text: &str, r: usize) -> (Query, QueryResponse) {
        let query = self.parse_query(text);
        let response = self.search(&query, r);
        (query, response)
    }

    /// Answer a batch of parsed queries concurrently (top-`r` each),
    /// fanning VO construction across the serving pool sized by
    /// [`crate::AuthConfig::threads`]. Response `i` is bit-identical to
    /// `self.search(&queries[i], r)` at any thread count — see
    /// [`AuthenticatedIndex::serve_batch`].
    pub fn serve_batch(&self, queries: &[Query], r: usize) -> Vec<QueryResponse> {
        self.auth.serve_batch(queries, r, &self.corpus)
    }

    /// Resize the serving pool (see [`AuthenticatedIndex::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.auth.set_threads(threads);
    }

    /// The authenticated index (e.g. for space reports).
    pub fn auth(&self) -> &AuthenticatedIndex {
        &self.auth
    }

    /// The hosted collection.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::verify;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn engine(mechanism: Mechanism) -> (SearchEngine, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            SearchEngine::new(publication.auth, corpus),
            publication.verifier_params,
        )
    }

    #[test]
    fn text_search_end_to_end_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let (engine, params) = engine(mechanism);
            let (query, response) = engine.search_text("night keeper keep", 3);
            assert!(!response.result.entries.is_empty(), "{}", mechanism.name());
            let verified = verify::verify(&params, &query, 3, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            assert_eq!(verified.result, response.result);
        }
    }

    #[test]
    fn serve_batch_matches_sequential_search_at_any_width() {
        for mechanism in [Mechanism::TnraCmht, Mechanism::TraMht] {
            let (mut engine, params) = engine(mechanism);
            let texts = [
                "night keeper keep",
                "big old house",
                "the town",
                "night keeper keep", // repeat: hot-term cache path
                "old gown sleep",
            ];
            let queries: Vec<Query> = texts.iter().map(|t| engine.parse_query(t)).collect();
            let reference: Vec<QueryResponse> =
                queries.iter().map(|q| engine.search(q, 3)).collect();
            for threads in [1usize, 2, 4, 8] {
                engine.set_threads(threads);
                let batch = engine.serve_batch(&queries, 3);
                assert_eq!(batch.len(), queries.len());
                for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.vo,
                        want.vo,
                        "{} q{i} threads={threads}",
                        mechanism.name()
                    );
                    assert_eq!(got.result, want.result);
                    assert_eq!(got.io, want.io);
                    assert_eq!(got.entries_read, want.entries_read);
                    verify::verify(&params, &queries[i], 3, got)
                        .unwrap_or_else(|e| panic!("{} q{i}: {e}", mechanism.name()));
                }
            }
        }
    }

    #[test]
    fn serve_batch_of_nothing_is_empty() {
        let (engine, _) = engine(Mechanism::TnraMht);
        assert!(engine.serve_batch(&[], 5).is_empty());
    }

    #[test]
    fn unknown_words_are_ignored() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let query = engine.parse_query("keeper xyzzyqwerty");
        assert_eq!(query.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_corpus_rejected() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let other = CorpusBuilder::new().min_df(1).add_text("one doc").build();
        let auth = {
            // Rebuild a second engine and steal its auth artifact.
            let (e2, _) = super::tests::engine(Mechanism::TnraMht);
            let SearchEngine { auth, .. } = e2;
            auth
        };
        let _ = engine; // silence unused
        SearchEngine::new(auth, other);
    }
}
