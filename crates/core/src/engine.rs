//! The third-party search engine (paper §3.1 system model).
//!
//! Operates the collection and authenticated index it received from the
//! data owner: accepts natural-language queries, runs the threshold
//! algorithm, and returns results with their verification objects. The
//! engine is the *untrusted* party — [`crate::attacks`] models what a
//! compromised instance might return instead.
//!
//! The artifact handed over by [`crate::DataOwner::publish`] is
//! identical whatever [`crate::AuthConfig::threads`] the owner built it
//! with, so the engine (and the user's verifier) never needs to know the
//! owner's build parallelism. Serving is fully concurrent: the structure
//! caches behind [`AuthenticatedIndex`] are sharded by key hash (one
//! lock per shard), and [`SearchEngine::serve_batch`] fans independent
//! queries out over the same work-stealing pool the owner build uses —
//! with per-query responses bit-identical to the sequential path.

use crate::auth::serve::QueryResponse;
use crate::auth::AuthenticatedIndex;
use crate::types::Query;
use authsearch_corpus::{Corpus, TermId};

/// How one token of a natural-language query resolved against the
/// dictionary. `term: None` means the token is out of dictionary (or a
/// stopword-free token the collection never saw); the system model
/// drops it from a *disjunctive* query, but a *conjunctive* query that
/// names an unindexed word can match nothing — callers must see the
/// failure instead of a silently widened query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenResolution {
    /// The normalized token as tokenized from the query text.
    pub token: String,
    /// Its dictionary id, or `None` when unindexed.
    pub term: Option<TermId>,
}

/// The full outcome of parsing a natural-language query: the usable
/// [`Query`] (resolved terms only) *plus* the per-token resolution
/// record. The old `parse_query -> Query` silently dropped unknown
/// tokens, which is fine for OR semantics but silently **widens** an
/// AND query — this struct is the fix.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The query over the tokens that resolved (deduplicated, with
    /// `f_{Q,t}` counting repetitions).
    pub query: Query,
    /// One entry per token of the input, in text order.
    pub tokens: Vec<TokenResolution>,
}

impl ParsedQuery {
    /// Did every token resolve against the dictionary?
    pub fn fully_resolved(&self) -> bool {
        self.tokens.iter().all(|t| t.term.is_some())
    }

    /// The tokens that did not resolve, in text order.
    pub fn unresolved(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter(|t| t.term.is_none())
            .map(|t| t.token.as_str())
            .collect()
    }
}

/// A running search engine instance.
pub struct SearchEngine {
    auth: AuthenticatedIndex,
    corpus: Corpus,
}

impl SearchEngine {
    /// Stand up an engine from the owner's transfer.
    pub fn new(auth: AuthenticatedIndex, corpus: Corpus) -> SearchEngine {
        assert_eq!(
            auth.index().num_docs(),
            corpus.num_docs(),
            "index/collection mismatch"
        );
        SearchEngine { auth, corpus }
    }

    /// Parse a natural-language query against the dictionary. The
    /// returned [`ParsedQuery`] carries both the usable query (terms not
    /// in the dictionary are dropped, per the system model) and the
    /// per-token resolution record, so a caller with AND semantics can
    /// tell a narrowed parse from a complete one.
    pub fn parse_query(&self, text: &str) -> ParsedQuery {
        let tokens: Vec<TokenResolution> = authsearch_corpus::tokenizer::tokenize(text)
            .map(|token| {
                let term = self.corpus.term_id(&token);
                TokenResolution { token, term }
            })
            .collect();
        ParsedQuery {
            query: Query::from_text(&self.corpus, self.auth.index(), text),
            tokens,
        }
    }

    /// Answer a parsed query: the top-`r` documents plus the VO.
    pub fn search(&self, query: &Query, r: usize) -> QueryResponse {
        self.auth.query(query, r, &self.corpus)
    }

    /// Answer a parsed query with **AND semantics**: only documents
    /// containing every query term are candidates, and the VO proves the
    /// intersection is exact (see
    /// [`AuthenticatedIndex::query_conjunctive`]).
    pub fn search_conjunctive(&self, query: &Query, r: usize) -> QueryResponse {
        self.auth.query_conjunctive(query, r, &self.corpus)
    }

    /// Convenience: parse then search (disjunctive).
    pub fn search_text(&self, text: &str, r: usize) -> (Query, QueryResponse) {
        let query = self.parse_query(text).query;
        let response = self.search(&query, r);
        (query, response)
    }

    /// Parse then search with AND semantics. A query naming an
    /// **unindexed** token can match nothing, so instead of silently
    /// widening the intersection (the old lossy parse), the engine
    /// serves the empty conjunctive query — a trivially verifiable
    /// empty result — and the returned [`ParsedQuery`] tells the caller
    /// which token sank the query.
    pub fn search_text_conjunctive(&self, text: &str, r: usize) -> (ParsedQuery, QueryResponse) {
        let parsed = self.parse_query(text);
        let query = if parsed.fully_resolved() {
            parsed.query.clone()
        } else {
            Query::default()
        };
        let response = self.search_conjunctive(&query, r);
        (parsed, response)
    }

    /// Answer a batch of parsed queries concurrently (top-`r` each),
    /// fanning VO construction across the serving pool sized by
    /// [`crate::AuthConfig::threads`]. Response `i` is bit-identical to
    /// `self.search(&queries[i], r)` at any thread count — see
    /// [`AuthenticatedIndex::serve_batch`].
    pub fn serve_batch(&self, queries: &[Query], r: usize) -> Vec<QueryResponse> {
        self.auth.serve_batch(queries, r, &self.corpus)
    }

    /// [`SearchEngine::serve_batch`] with AND semantics: response `i` is
    /// bit-identical to `self.search_conjunctive(&queries[i], r)` at any
    /// thread count.
    pub fn serve_batch_conjunctive(&self, queries: &[Query], r: usize) -> Vec<QueryResponse> {
        self.auth.serve_batch_conjunctive(queries, r, &self.corpus)
    }

    /// Resize the serving pool (see [`AuthenticatedIndex::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.auth.set_threads(threads);
    }

    /// The authenticated index (e.g. for space reports).
    pub fn auth(&self) -> &AuthenticatedIndex {
        &self.auth
    }

    /// The hosted collection.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::verify;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn engine(mechanism: Mechanism) -> (SearchEngine, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            SearchEngine::new(publication.auth, corpus),
            publication.verifier_params,
        )
    }

    #[test]
    fn text_search_end_to_end_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let (engine, params) = engine(mechanism);
            let (query, response) = engine.search_text("night keeper keep", 3);
            assert!(!response.result.entries.is_empty(), "{}", mechanism.name());
            let verified = verify::verify(&params, &query, 3, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            assert_eq!(verified.result, response.result);
        }
    }

    #[test]
    fn serve_batch_matches_sequential_search_at_any_width() {
        for mechanism in [Mechanism::TnraCmht, Mechanism::TraMht] {
            let (mut engine, params) = engine(mechanism);
            let texts = [
                "night keeper keep",
                "big old house",
                "the town",
                "night keeper keep", // repeat: hot-term cache path
                "old gown sleep",
            ];
            let queries: Vec<Query> = texts.iter().map(|t| engine.parse_query(t).query).collect();
            let reference: Vec<QueryResponse> =
                queries.iter().map(|q| engine.search(q, 3)).collect();
            for threads in [1usize, 2, 4, 8] {
                engine.set_threads(threads);
                let batch = engine.serve_batch(&queries, 3);
                assert_eq!(batch.len(), queries.len());
                for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.vo,
                        want.vo,
                        "{} q{i} threads={threads}",
                        mechanism.name()
                    );
                    assert_eq!(got.result, want.result);
                    assert_eq!(got.io, want.io);
                    assert_eq!(got.entries_read, want.entries_read);
                    verify::verify(&params, &queries[i], 3, got)
                        .unwrap_or_else(|e| panic!("{} q{i}: {e}", mechanism.name()));
                }
            }
        }
    }

    #[test]
    fn serve_batch_of_nothing_is_empty() {
        let (engine, _) = engine(Mechanism::TnraMht);
        assert!(engine.serve_batch(&[], 5).is_empty());
    }

    #[test]
    fn unknown_words_are_ignored() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let query = engine.parse_query("keeper xyzzyqwerty").query;
        assert_eq!(query.len(), 1);
    }

    #[test]
    fn parse_reports_unresolved_tokens_instead_of_dropping_them() {
        // Regression: parse_query used to return a bare Query, silently
        // dropping out-of-dictionary tokens — which widens an AND query.
        let (engine, _) = engine(Mechanism::TnraMht);
        let parsed = engine.parse_query("keeper xyzzyqwerty night");
        assert_eq!(parsed.query.len(), 2);
        assert!(!parsed.fully_resolved());
        assert_eq!(parsed.unresolved(), vec!["xyzzyqwerty"]);
        assert_eq!(parsed.tokens.len(), 3);
        assert!(parsed.tokens[0].term.is_some());
        assert_eq!(parsed.tokens[1].token, "xyzzyqwerty");
        assert!(parsed.tokens[1].term.is_none());
        let clean = engine.parse_query("keeper night");
        assert!(clean.fully_resolved());
        assert!(clean.unresolved().is_empty());
    }

    #[test]
    fn conjunctive_text_search_with_unindexed_term_is_provably_empty() {
        // An AND query naming an unindexed word matches nothing; the
        // engine must serve (and the client must be able to verify) an
        // EMPTY result rather than the intersection of the other terms.
        for mechanism in [Mechanism::TraMht, Mechanism::TnraCmht] {
            let (engine, params) = engine(mechanism);
            let (parsed, response) = engine.search_text_conjunctive("night xyzzyqwerty", 3);
            assert!(!parsed.fully_resolved());
            assert!(response.result.entries.is_empty(), "{}", mechanism.name());
            verify::verify_conjunctive(&params, &Query::default(), 3, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            // The fully-resolved parse serves the real intersection.
            let (parsed, response) = engine.search_text_conjunctive("night keeper", 3);
            assert!(parsed.fully_resolved());
            assert!(!response.result.entries.is_empty());
            verify::verify_conjunctive(&params, &parsed.query, 3, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
        }
    }

    #[test]
    fn conjunctive_serve_batch_matches_sequential_at_any_width() {
        let (mut engine, params) = engine(Mechanism::TraCmht);
        let texts = ["night keeper", "big old house", "old keep", "night keeper"];
        let queries: Vec<Query> = texts.iter().map(|t| engine.parse_query(t).query).collect();
        let reference: Vec<QueryResponse> = queries
            .iter()
            .map(|q| engine.search_conjunctive(q, 3))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            engine.set_threads(threads);
            let batch = engine.serve_batch_conjunctive(&queries, 3);
            for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
                assert_eq!(got.vo, want.vo, "q{i} threads={threads}");
                assert_eq!(got.result, want.result);
                verify::verify_conjunctive(&params, &queries[i], 3, got)
                    .unwrap_or_else(|e| panic!("q{i}: {e}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_corpus_rejected() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let other = CorpusBuilder::new().min_df(1).add_text("one doc").build();
        let auth = {
            // Rebuild a second engine and steal its auth artifact.
            let (e2, _) = super::tests::engine(Mechanism::TnraMht);
            let SearchEngine { auth, .. } = e2;
            auth
        };
        let _ = engine; // silence unused
        SearchEngine::new(auth, other);
    }
}
