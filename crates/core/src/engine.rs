//! The third-party search engine (paper §3.1 system model).
//!
//! Operates the collection and authenticated index it received from the
//! data owner: accepts natural-language queries, runs the threshold
//! algorithm, and returns results with their verification objects. The
//! engine is the *untrusted* party — [`crate::attacks`] models what a
//! compromised instance might return instead.
//!
//! The artifact handed over by [`crate::DataOwner::publish`] is
//! identical whatever [`crate::AuthConfig::threads`] the owner built it
//! with, so the engine (and the user's verifier) never needs to know the
//! owner's build parallelism. Serving itself is thread-compatible — the
//! structure caches behind [`AuthenticatedIndex`] are mutex-guarded —
//! but still single-lock; sharding the term LRU is the ROADMAP follow-on
//! that makes the engine fully concurrent.

use crate::auth::serve::QueryResponse;
use crate::auth::AuthenticatedIndex;
use crate::types::Query;
use authsearch_corpus::Corpus;

/// A running search engine instance.
pub struct SearchEngine {
    auth: AuthenticatedIndex,
    corpus: Corpus,
}

impl SearchEngine {
    /// Stand up an engine from the owner's transfer.
    pub fn new(auth: AuthenticatedIndex, corpus: Corpus) -> SearchEngine {
        assert_eq!(
            auth.index().num_docs(),
            corpus.num_docs(),
            "index/collection mismatch"
        );
        SearchEngine { auth, corpus }
    }

    /// Parse a natural-language query against the dictionary (terms not
    /// in the dictionary are ignored, per the system model).
    pub fn parse_query(&self, text: &str) -> Query {
        Query::from_text(&self.corpus, self.auth.index(), text)
    }

    /// Answer a parsed query: the top-`r` documents plus the VO.
    pub fn search(&self, query: &Query, r: usize) -> QueryResponse {
        self.auth.query(query, r, &self.corpus)
    }

    /// Convenience: parse then search.
    pub fn search_text(&self, text: &str, r: usize) -> (Query, QueryResponse) {
        let query = self.parse_query(text);
        let response = self.search(&query, r);
        (query, response)
    }

    /// The authenticated index (e.g. for space reports).
    pub fn auth(&self) -> &AuthenticatedIndex {
        &self.auth
    }

    /// The hosted collection.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::verify;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn engine(mechanism: Mechanism) -> (SearchEngine, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            SearchEngine::new(publication.auth, corpus),
            publication.verifier_params,
        )
    }

    #[test]
    fn text_search_end_to_end_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let (engine, params) = engine(mechanism);
            let (query, response) = engine.search_text("night keeper keep", 3);
            assert!(!response.result.entries.is_empty(), "{}", mechanism.name());
            let verified = verify::verify(&params, &query, 3, &response)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            assert_eq!(verified.result, response.result);
        }
    }

    #[test]
    fn unknown_words_are_ignored() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let query = engine.parse_query("keeper xyzzyqwerty");
        assert_eq!(query.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_corpus_rejected() {
        let (engine, _) = engine(Mechanism::TnraMht);
        let other = CorpusBuilder::new().min_df(1).add_text("one doc").build();
        let auth = {
            // Rebuild a second engine and steal its auth artifact.
            let (e2, _) = super::tests::engine(Mechanism::TnraMht);
            let SearchEngine { auth, .. } = e2;
            auth
        };
        let _ = engine; // silence unused
        SearchEngine::new(auth, other);
    }
}
