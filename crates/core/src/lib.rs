//! # authsearch-core
//!
//! Authenticated text retrieval — a from-scratch reproduction of
//! *Pang & Mouratidis, "Authenticating the Query Results of Text Search
//! Engines", PVLDB 1(1), 2008*.
//!
//! A data owner outsources a document collection and its frequency-ordered
//! inverted index to an untrusted search engine. Every top-r similarity
//! query is answered together with a **verification object** (VO) that
//! lets the user check the result is *complete*, *correctly ranked*, and
//! *free of spurious documents* — exactly what an intact engine would have
//! returned.
//!
//! ## Components
//!
//! * [`types`] — queries, results, the per-document frequency table;
//! * [`pscan`] — the conventional Prioritized Scanning baseline (Fig. 2);
//! * [`tra`] / [`tnra`] — the threshold algorithms (Figs. 5, 10);
//! * [`auth`] — owner-side structures: term-MHTs, chain-MHTs, document-
//!   MHTs, dictionary-MHT, signatures; server-side VO construction with
//!   disk accounting and the engine structure cache; storage reports;
//! * [`cache`] — the bounded LRU underpinning the engine structure cache;
//! * [`pool`] — the scoped work-stealing thread pool behind the parallel
//!   owner build;
//! * [`verify`](mod@verify) — user-side verification (authenticate,
//!   then replay);
//! * [`buddy`] — the buddy-inclusion VO optimization (§3.3.2);
//! * [`owner`] / [`engine`] / [`client`] — the three-party system model;
//! * [`server`] — the long-running network front: framed queries over
//!   TCP, dispatched onto the persistent pool, warm-started caches;
//! * [`attacks`] — the threat-model attack catalogue;
//! * [`toy`] — the paper's worked example (Figures 1, 6, 11);
//! * [`metrics`] — per-query cost measurement for the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use authsearch_core::{AuthConfig, Client, DataOwner, Mechanism, SearchEngine};
//! use authsearch_corpus::CorpusBuilder;
//!
//! // The data owner indexes and signs the collection…
//! let corpus = CorpusBuilder::new()
//!     .min_df(1)
//!     .add_text("the night keeper keeps the keep in the town")
//!     .add_text("in the big old house in the big old gown")
//!     .build();
//! let mut config = AuthConfig::new(Mechanism::TnraCmht);
//! config.key_bits = 512; // paper uses 1024; tests favour speed
//! let owner = DataOwner::with_cached_key(config.key_bits);
//! let publication = owner.publish(&corpus, config);
//!
//! // …hands index + collection to the (untrusted) search engine…
//! let engine = SearchEngine::new(publication.auth, corpus);
//! let (query, response) = engine.search_text("night keeper", 5);
//!
//! // …and the user verifies each result against the owner's public key.
//! let client = Client::new(publication.verifier_params);
//! let verified = client.verify_query(&query, 5, &response).expect("honest result");
//! assert_eq!(verified.result, response.result);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod attacks;
pub mod auth;
pub mod baseline;
pub mod buddy;
pub mod cache;
pub mod client;
mod conjunctive;
pub mod engine;
pub mod metrics;
pub mod owner;
pub mod pool;
pub mod pscan;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod tnra;
pub mod toy;
pub mod tra;
pub mod types;
pub mod verify;
pub mod vo;
pub mod wire;

pub use auth::serve::QueryResponse;
pub use auth::{
    boot_authenticated_index, AuthConfig, AuthenticatedIndex, BootReport, BootSource, CacheStats,
    ContentProvider, WarmStats,
};
pub use cache::LruCache;
pub use client::{phrase_filter, Client, ClientNetError, Connection, RetryPolicy};
pub use engine::{ParsedQuery, SearchEngine, TokenResolution};
pub use metrics::{
    measure, QueryMetrics, ServerMetrics, ServerMetricsSnapshot, TransportStats,
    TransportStatsSnapshot,
};
pub use owner::{DataOwner, Publication};
pub use server::{Server, ServerConfig, ServerCore, ServerHandle};
pub use types::{DocTable, ProcessingOutcome, Query, QueryMode, QueryResult, ResultEntry};
pub use verify::{verify, verify_conjunctive, VerifiedResult, VerifierParams, VerifyError};
pub use vo::{Mechanism, VerificationObject, VoSize};
