//! Per-query measurement: the cost metrics of the paper's §4.1
//! ("performance metrics") — plus the live operational counters of the
//! long-running network server ([`crate::server`]).
//!
//! For one (query, mechanism) pair this captures: entries read per list
//! (Fig 13a/14a/15a), fraction of each list read (13b/14b/15b), simulated
//! disk time at the engine (13c/14c/15c), VO size with its Table 2
//! breakdown (13d/14d/15d), and wall-clock user verification time
//! (13e/14e/15e).

use crate::auth::serve::QueryResponse;
use crate::auth::{AuthenticatedIndex, ContentProvider};
use crate::types::Query;
use crate::verify::{self, VerifierParams, VerifyError};
use crate::vo::VoSize;
use authsearch_index::{DiskModel, IoStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Live counters of a running server, updated lock-free by every
/// connection handler; snapshot with [`ServerMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections admitted (shed connections are **not** counted here).
    pub connections: AtomicU64,
    /// Requests answered with a [`crate::wire::kind::REPLY_OK`] (or
    /// [`crate::wire::kind::REPLY_OK_DIGEST`]) frame.
    pub requests_ok: AtomicU64,
    /// Requests answered with a [`crate::wire::kind::REPLY_ERR`] frame.
    pub requests_err: AtomicU64,
    /// Request payload bytes read off the wire.
    pub bytes_in: AtomicU64,
    /// Reply frame bytes written to the wire.
    pub bytes_out: AtomicU64,
    /// Connections refused at admission because the server sat at
    /// [`crate::ServerConfig::max_connections`]. Each gets a typed
    /// [`crate::wire::errcode::BUSY`] reply while the polite-refusal
    /// path has capacity; past its bound (a connect flood) the
    /// remainder are dropped without one — both count here, because
    /// both were shed.
    pub connections_shed: AtomicU64,
    /// Connections evicted by the idle deadline (slow-loris peers and
    /// parked sockets), answered with a
    /// [`crate::wire::errcode::TIMEOUT`] reply.
    pub connections_timed_out: AtomicU64,
    /// High-water mark of simultaneously admitted connections — how
    /// close the server has come to its cap.
    pub active_highwater: AtomicU64,
    /// Boots served from a verified snapshot
    /// ([`crate::ServerConfig::snapshot_path`]) — the near-O(1) path.
    pub boot_snapshot_loads: AtomicU64,
    /// Boots that fell back to building the artifact from scratch
    /// (snapshot unconfigured, missing, stale, or corrupt).
    pub boot_fresh_builds: AtomicU64,
}

/// A point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerMetricsSnapshot {
    /// Connections admitted.
    pub connections: u64,
    /// Requests answered successfully (full-echo or digest-mode).
    pub requests_ok: u64,
    /// Requests answered with an error reply.
    pub requests_err: u64,
    /// Request payload bytes read.
    pub bytes_in: u64,
    /// Reply frame bytes written.
    pub bytes_out: u64,
    /// Connections shed at admission with a typed BUSY reply.
    pub connections_shed: u64,
    /// Connections evicted by the idle deadline.
    pub connections_timed_out: u64,
    /// High-water mark of simultaneously admitted connections.
    pub active_highwater: u64,
    /// Boots served from a verified snapshot.
    pub boot_snapshot_loads: u64,
    /// Boots that fell back to a fresh build.
    pub boot_fresh_builds: u64,
}

impl ServerMetrics {
    /// Read every counter at once (relaxed loads; counters are advisory).
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_err: self.requests_err.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            active_highwater: self.active_highwater.load(Ordering::Relaxed),
            boot_snapshot_loads: self.boot_snapshot_loads.load(Ordering::Relaxed),
            boot_fresh_builds: self.boot_fresh_builds.load(Ordering::Relaxed),
        }
    }
}

/// Transport-level syscall counters, kept **separate** from
/// [`ServerMetrics`] so that snapshot-equality comparisons between the
/// threaded and reactor server cores stay meaningful: the two cores
/// produce byte-identical `ServerMetrics`, but necessarily different
/// syscall mixes (the whole point of the reactor is fewer of them).
///
/// Read with [`TransportStats::snapshot`]; divide by `requests_ok` for
/// the syscalls-per-query figure reported in `BENCH_PR9.json`.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// `accept(2)` attempts (including the final `EAGAIN` probe that
    /// ends an accept burst).
    pub accepts: AtomicU64,
    /// `read(2)`/`recv(2)` calls issued on connection sockets.
    pub reads: AtomicU64,
    /// `write(2)`/`writev(2)` calls issued on connection sockets.
    pub writes: AtomicU64,
    /// Readiness waits: `epoll_wait(2)` returns on the reactor core,
    /// blocking-read poll ticks (`WouldBlock` wakeups) on the threaded
    /// core.
    pub polls: AtomicU64,
}

/// A point-in-time copy of [`TransportStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStatsSnapshot {
    /// `accept(2)` attempts.
    pub accepts: u64,
    /// Socket read calls.
    pub reads: u64,
    /// Socket write calls.
    pub writes: u64,
    /// Readiness waits / poll ticks.
    pub polls: u64,
}

impl TransportStats {
    /// Read every counter at once (relaxed loads; counters are advisory).
    pub fn snapshot(&self) -> TransportStatsSnapshot {
        TransportStatsSnapshot {
            accepts: self.accepts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
        }
    }
}

/// Measurements for one verified query.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// Entries fetched per query-term list.
    pub entries_read: Vec<usize>,
    /// True lengths of the query-term lists.
    pub list_lens: Vec<usize>,
    /// Engine disk trace.
    pub io: IoStats,
    /// Simulated engine I/O time in seconds.
    pub io_secs: f64,
    /// VO size breakdown.
    pub vo_size: VoSize,
    /// Wall-clock query processing + VO construction time at the engine.
    pub process_time: Duration,
    /// Wall-clock verification time at the user.
    pub verify_time: Duration,
}

impl QueryMetrics {
    /// Mean entries read per query term (Figure 13(a)'s y-axis).
    pub fn mean_entries_read(&self) -> f64 {
        if self.entries_read.is_empty() {
            return 0.0;
        }
        self.entries_read.iter().sum::<usize>() as f64 / self.entries_read.len() as f64
    }

    /// Mean list length over the query terms (the "List Length"
    /// baseline).
    pub fn mean_list_len(&self) -> f64 {
        if self.list_lens.is_empty() {
            return 0.0;
        }
        self.list_lens.iter().sum::<usize>() as f64 / self.list_lens.len() as f64
    }

    /// Mean percentage of each queried list that was read
    /// (Figure 13(b)'s y-axis).
    pub fn mean_pct_read(&self) -> f64 {
        if self.entries_read.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .entries_read
            .iter()
            .zip(&self.list_lens)
            .map(|(&k, &l)| {
                if l == 0 {
                    0.0
                } else {
                    100.0 * k as f64 / l as f64
                }
            })
            .sum();
        sum / self.entries_read.len() as f64
    }
}

/// Serve and verify one query, measuring everything.
pub fn measure<C: ContentProvider>(
    auth: &AuthenticatedIndex,
    params: &VerifierParams,
    query: &Query,
    r: usize,
    contents: &C,
    disk: &DiskModel,
) -> Result<QueryMetrics, VerifyError> {
    let t0 = Instant::now();
    let response: QueryResponse = auth.query(query, r, contents);
    let process_time = t0.elapsed();

    let t1 = Instant::now();
    let verified = verify::verify(params, query, r, &response)?;
    let verify_time = t1.elapsed();

    let list_lens = query
        .terms
        .iter()
        .map(|qt| auth.index().list(qt.term).len())
        .collect();

    Ok(QueryMetrics {
        entries_read: response.entries_read,
        list_lens,
        io: response.io,
        io_secs: disk.service_time(response.io),
        vo_size: verified.vo_size,
        process_time,
        verify_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    #[test]
    fn measure_toy_query() {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        let m = measure(
            &publication.auth,
            &publication.verifier_params,
            &toy_query(),
            2,
            &toy_contents(),
            &DiskModel::default(),
        )
        .unwrap();
        assert_eq!(m.entries_read, vec![1, 4, 4, 1]);
        assert_eq!(m.list_lens, vec![1, 6, 6, 1]);
        assert!((m.mean_entries_read() - 2.5).abs() < 1e-12);
        assert!(m.io_secs > 0.0);
        assert!(m.vo_size.total() > 0);
        // 1/1, 4/6, 4/6, 1/1 → mean %.
        let expect = (100.0 + 400.0 / 6.0 + 400.0 / 6.0 + 100.0) / 4.0;
        assert!((m.mean_pct_read() - expect).abs() < 1e-9);
    }
}
