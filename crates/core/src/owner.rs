//! The data owner (paper §3.1 system model).
//!
//! The owner manages the collection, builds the inverted index and all
//! authentication structures, signs their roots, and transfers everything
//! to the third-party search engine while broadcasting the public
//! verification parameters to users.
//!
//! Building and signing is the owner's dominant one-off cost (one RSA
//! signature per dictionary term, plus one per document under TRA), so
//! [`DataOwner::publish`] runs it on the parallel build path sized by
//! [`AuthConfig::threads`] — the default uses every core, `threads: 1`
//! is the paper's sequential model, and the published artifact is
//! bit-identical either way.

use crate::auth::{AuthConfig, AuthenticatedIndex};
use crate::verify::VerifierParams;
use authsearch_corpus::Corpus;
use authsearch_crypto::keys::cached_keypair;
use authsearch_crypto::RsaPrivateKey;
use authsearch_index::{build_index, InvertedIndex, OkapiParams};
use rand::Rng;

/// The data owner: holds the signing key.
pub struct DataOwner {
    key: RsaPrivateKey,
    okapi: OkapiParams,
}

/// Everything a publication produces: the engine-side artifact and the
/// user-side public parameters.
pub struct Publication {
    /// What is transferred to the (untrusted) search engine.
    pub auth: AuthenticatedIndex,
    /// What is broadcast to users.
    pub verifier_params: VerifierParams,
}

impl DataOwner {
    /// Owner with a freshly generated key.
    pub fn generate<R: Rng>(key_bits: usize, rng: &mut R) -> DataOwner {
        DataOwner {
            key: RsaPrivateKey::generate(key_bits, rng),
            okapi: OkapiParams::default(),
        }
    }

    /// Owner with the process-wide cached key of the given size (fast
    /// path for tests, examples, and benchmarks).
    pub fn with_cached_key(key_bits: usize) -> DataOwner {
        DataOwner {
            key: cached_keypair(key_bits),
            okapi: OkapiParams::default(),
        }
    }

    /// Override the Okapi parameters used at indexing time.
    pub fn okapi(mut self, okapi: OkapiParams) -> DataOwner {
        self.okapi = okapi;
        self
    }

    /// The signing key (exposed for advanced flows; handle with care).
    pub fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// Index a corpus and build + sign the authentication structures.
    pub fn publish(&self, corpus: &Corpus, config: AuthConfig) -> Publication {
        let index = build_index(corpus, self.okapi);
        self.publish_index(index, config, corpus)
    }

    /// Publish a pre-built index (used by the toy example, whose index is
    /// given by the paper rather than derived from text).
    pub fn publish_index<C: crate::auth::ContentProvider>(
        &self,
        index: InvertedIndex,
        config: AuthConfig,
        contents: &C,
    ) -> Publication {
        let num_docs = index.num_docs();
        let okapi = index.params();
        let auth = AuthenticatedIndex::build(index, &self.key, config, contents);
        Publication {
            verifier_params: VerifierParams {
                public_key: self.key.public_key().clone(),
                layout: config.layout,
                mechanism: config.mechanism,
                num_docs,
                okapi,
            },
            auth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vo::Mechanism;
    use authsearch_corpus::SyntheticConfig;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    #[test]
    fn publish_produces_consistent_parameters() {
        let corpus = SyntheticConfig::tiny(60, 3).generate();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TnraCmht)
        };
        let publication = owner.publish(&corpus, config);
        assert_eq!(publication.verifier_params.num_docs, 60);
        assert_eq!(publication.verifier_params.mechanism, Mechanism::TnraCmht);
        assert_eq!(
            publication.auth.public_key(),
            &publication.verifier_params.public_key
        );
    }

    #[test]
    fn publish_is_thread_count_invariant() {
        // The publication an engine receives must not depend on how many
        // cores the owner's build machine had.
        let corpus = SyntheticConfig::tiny(40, 3).generate();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let base = AuthConfig {
            key_bits: TEST_KEY_BITS,
            threads: 1,
            ..AuthConfig::new(Mechanism::TraCmht)
        };
        let sequential = owner.publish(&corpus, base);
        let parallel = owner.publish(&corpus, AuthConfig { threads: 4, ..base });
        for t in 0..sequential.auth.index().num_terms() as u32 {
            assert_eq!(sequential.auth.term_root(t), parallel.auth.term_root(t));
        }
        assert_eq!(
            sequential.verifier_params.public_key,
            parallel.verifier_params.public_key
        );
    }

    #[test]
    fn generated_owner_has_distinct_key() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let a = DataOwner::generate(256, &mut rng);
        let b = DataOwner::generate(256, &mut rng);
        assert_ne!(a.key.public_key(), b.key.public_key());
    }
}
