//! Hand-rolled scoped work-stealing thread pool for owner-side builds.
//!
//! The build environment has no external crates (no rayon), so the
//! parallel [`crate::auth::AuthenticatedIndex::build`] path runs on this
//! std-only pool. The design is the classic work-stealing shape:
//!
//! * **Scoped spawn** — tasks may borrow the caller's stack (the index,
//!   the signing key, output buffers); [`ThreadPool::scope`] joins every
//!   worker before it returns, so the borrows stay valid without `Arc`.
//! * **Per-worker deques** — [`Scope::spawn`] deals tasks round-robin
//!   onto one deque per worker; each worker pops its own deque from the
//!   front (submission order, which makes the single-threaded pool run
//!   tasks in exactly the order they were spawned).
//! * **Steal-on-empty** — a worker whose own deque is empty steals from
//!   the *back* of a sibling's deque, so uneven task costs (an RSA
//!   signature is ~1000x a leaf hash) still load-balance.
//!
//! Panics in a task poison the pool: remaining queued tasks are dropped
//! unrun, every worker drains and exits, and the first panic payload is
//! re-raised on the caller's thread once the scope has shut down cleanly
//! — the same contract as `std::thread::scope`.
//!
//! A pool with `threads == 1` never spawns an OS thread: the caller's
//! thread runs every task inline, which is the paper's sequential owner
//! model byte for byte.
//!
//! # Example
//!
//! ```
//! use authsearch_core::pool::ThreadPool;
//!
//! // Index-ordered parallel map: the result is identical for any
//! // thread count, only wall-clock time changes.
//! let pool = ThreadPool::new(4);
//! let squares = pool.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Scoped spawn borrows the caller's stack without `Arc`.
//! let inputs = vec![2u64, 3, 5, 7];
//! let mut doubled = vec![0u64; inputs.len()];
//! pool.scope(|s| {
//!     for (d, &x) in doubled.iter_mut().zip(&inputs) {
//!         s.spawn(move || *d = 2 * x);
//!     }
//! });
//! assert_eq!(doubled, vec![4, 6, 10, 14]);
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The machine's available parallelism (1 when it cannot be queried).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width scoped work-stealing pool (see the module docs).
///
/// The pool itself is a cheap value: worker threads exist only for the
/// duration of a [`ThreadPool::scope`] (or [`ThreadPool::map`]) call and
/// are joined before it returns.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

/// A queued unit of work; `'env` is the borrow of the caller's stack.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// State shared between the submitting thread and the workers of one
/// scope. Lives on the stack of [`ThreadPool::scope`].
struct Shared<'env> {
    /// One deque per worker; owner pops the front, thieves pop the back.
    deques: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks submitted and not yet finished (or dropped by poisoning).
    pending: AtomicUsize,
    /// Scope still accepting submissions; workers exit only when this is
    /// down *and* `pending` is zero.
    open: AtomicBool,
    /// A task panicked: drop queued tasks instead of running them.
    poisoned: AtomicBool,
    /// First panic payload, re-raised on the caller after shutdown.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl<'env> Shared<'env> {
    fn new(workers: usize) -> Shared<'env> {
        Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    /// Pop from our own deque's front, else steal from a sibling's back.
    fn grab(&self, me: usize) -> Option<Task<'env>> {
        if let Some(task) = self.deques[me].lock().expect("deque lock").pop_front() {
            return Some(task);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.deques[victim].lock().expect("deque lock").pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// Run (or, when poisoned, drop) one task and retire it.
    fn run_one(&self, task: Task<'env>) {
        if self.poisoned.load(Ordering::Acquire) {
            drop(task);
        } else if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(task)) {
            self.poisoned.store(true, Ordering::Release);
            let mut slot = self.panic_payload.lock().expect("panic slot lock");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task retired: wake everyone so workers can exit and a
            // caller blocked in `work` can return.
            let _guard = self.idle_lock.lock().expect("idle lock");
            self.idle_cv.notify_all();
        }
    }

    /// Worker loop: run until submissions are closed and no task remains.
    fn work(&self, me: usize) {
        loop {
            if let Some(task) = self.grab(me) {
                self.run_one(task);
                continue;
            }
            if !self.open.load(Ordering::Acquire) && self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Park until new work or shutdown. The timeout covers the
            // benign race where a task is pushed between our last `grab`
            // and this wait; re-checking the loop condition afterwards
            // keeps the pool live regardless of wakeup ordering.
            let guard = self.idle_lock.lock().expect("idle lock");
            let _ = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle wait");
        }
    }

    /// Close submissions and wake every parked worker.
    fn close(&self) {
        self.open.store(false, Ordering::Release);
        let _guard = self.idle_lock.lock().expect("idle lock");
        self.idle_cv.notify_all();
    }
}

/// Closes submissions even if the scope body panics, so workers never
/// wait forever for a producer that is already unwinding.
struct CloseGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Handle for spawning borrowed tasks inside a [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'scope Shared<'env>,
    /// Round-robin dealing cursor.
    next: AtomicUsize,
    /// Invariance over `'scope` (the `std::thread::scope` trick): keeps a
    /// scope from being smuggled into a longer-lived one.
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `f` to run on one of the scope's workers. Tasks may borrow
    /// anything that outlives the enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        // Count before publishing: a worker that pops and retires the
        // task must never observe `pending` at zero first.
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.deques[slot]
            .lock()
            .expect("deque lock")
            .push_back(Box::new(f));
        let _guard = self.shared.idle_lock.lock().expect("idle lock");
        self.shared.idle_cv.notify_one();
    }
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` is clamped to `1`.
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to [`available_parallelism`].
    pub fn auto() -> ThreadPool {
        ThreadPool::new(available_parallelism())
    }

    /// Number of workers (including the calling thread during a scope).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f`, which may spawn borrowed tasks on the scope; returns once
    /// every spawned task has finished. The calling thread is worker 0 —
    /// after `f` returns it drains deques alongside the helpers, so a
    /// one-thread pool spawns no OS threads at all.
    ///
    /// If any task panicked, the first payload is re-raised here after
    /// all workers have shut down.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let shared = Shared::new(self.threads);
        let result = std::thread::scope(|ts| {
            let close = CloseGuard(&shared);
            for worker in 1..self.threads {
                let shared = &shared;
                ts.spawn(move || shared.work(worker));
            }
            let scope = Scope {
                shared: &shared,
                next: AtomicUsize::new(0),
                _marker: PhantomData,
            };
            let out = f(&scope);
            drop(close); // stop accepting work, wake parked workers
            shared.work(0); // help drain until everything has retired
            out
        });
        if let Some(payload) = shared.panic_payload.lock().expect("panic slot lock").take() {
            panic::resume_unwind(payload);
        }
        result
    }

    /// Index-ordered parallel map: `(0..n).map(f).collect()`, with the
    /// calls distributed over the pool in stealable contiguous chunks.
    ///
    /// The output is **identical for every thread count** — element `i`
    /// is always `f(i)` and lands at index `i` — which is what makes the
    /// parallel owner build bit-compatible with the sequential paper
    /// model. A one-thread pool short-circuits to the plain sequential
    /// loop.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = chunk_size(n, self.threads);
        {
            let slots = SlotWriter(out.as_mut_ptr());
            let f = &f;
            self.scope(|s| {
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    s.spawn(move || {
                        // Capture the whole wrapper, not its raw-pointer
                        // field (edition-2021 closures capture per field,
                        // which would bypass the `Send` impl).
                        let slots = slots;
                        for i in start..end {
                            let value = f(i);
                            // SAFETY: chunks partition 0..n, so index i
                            // is written by exactly this task, and the
                            // scope joins every worker before `out` is
                            // read or dropped. Overwriting the `None`
                            // placeholder needs no drop.
                            unsafe { slots.0.add(i).write(Some(value)) };
                        }
                    });
                    start = end;
                }
            });
        }
        out.into_iter()
            .map(|v| v.expect("pool map task completed"))
            .collect()
    }
}

/// Raw pointer into the map output, sendable because disjoint indices go
/// to disjoint tasks (see the SAFETY comment at the write site).
struct SlotWriter<T>(*mut Option<T>);

impl<T> Clone for SlotWriter<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotWriter<T> {}

// SAFETY: each task writes a disjoint range and the scope joins all
// workers before the buffer is touched again.
unsafe impl<T: Send> Send for SlotWriter<T> {}

/// Chunk length targeting ~8 stealable units per worker, so the deques
/// stay long enough for stealing to smooth out uneven task costs.
fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 8).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential_for_all_thread_counts() {
        let expect: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let got = pool.map(257, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
        // Far fewer items than workers.
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn scope_tasks_can_borrow_mutable_disjoint_state() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0u32; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn single_thread_pool_spawns_inline_in_submission_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..16 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_shuts_down() {
        let pool = ThreadPool::new(4);
        let ran = AtomicU64::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..64u64 {
                    let ran = &ran;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("pool task failure 7");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("pool task failure 7"), "payload: {msg:?}");
        // Poisoning dropped *at most* the tasks queued behind the panic;
        // everything retired and the scope still joined cleanly.
        assert!(ran.load(Ordering::Relaxed) <= 63);
        // The pool value is reusable after a poisoned scope.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn map_panic_propagates_original_payload() {
        let pool = ThreadPool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map(32, |i| {
                if i == 13 {
                    panic!("unlucky 13");
                }
                i
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("unlucky 13"), "payload: {msg:?}");
    }

    #[test]
    fn stealing_balances_uneven_tasks() {
        // One task is ~100x the others; with stealing the short tasks
        // finish on other workers. We can only assert completion and
        // correctness here (timing is machine-dependent).
        let pool = ThreadPool::new(4);
        let out = pool.map(64, |i| {
            let reps = if i == 0 { 100_000 } else { 1_000 };
            let mut acc = i as u64;
            for _ in 0..reps {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn auto_pool_matches_available_parallelism() {
        assert_eq!(ThreadPool::auto().threads(), available_parallelism());
    }
}
