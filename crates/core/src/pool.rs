//! Hand-rolled **persistent** work-stealing thread pool.
//!
//! The build environment has no external crates (no rayon), so both the
//! parallel [`crate::auth::AuthenticatedIndex::build`] path and the
//! concurrent serving path ([`crate::auth::AuthenticatedIndex::serve_batch`],
//! [`crate::server`]) run on this std-only pool. Through PR 3 the pool was
//! *scoped*: every `scope`/`map` call spawned its OS workers and joined
//! them before returning — fine for a one-shot owner build, but a
//! per-call spawn/join tax for a long-running server looping over small
//! batches. The pool is now persistent:
//!
//! * **Workers live as long as the pool.** [`ThreadPool::new`] spawns
//!   `threads - 1` OS workers once; `scope` and `map` reuse them, and
//!   [`Drop`] drains outstanding work and joins. A `threads == 1` pool
//!   still spawns **no OS threads at all** — every task runs inline on
//!   the calling thread, the paper's sequential model byte for byte.
//! * **Submit queue feeding per-worker steal deques** — borrowed scope
//!   tasks are dealt round-robin onto one deque per worker (popped from
//!   the front by the owner, stolen from the back by siblings and by
//!   callers waiting on a scope), while [`ThreadPool::submit`] — the
//!   non-scoped entry point for long-lived callers such as server
//!   connection handlers — pushes `'static` tasks onto a shared inject
//!   queue that idle workers drain between scope tasks.
//! * **Scoped spawn without `Arc`** — tasks spawned through
//!   [`ThreadPool::scope`] may borrow the caller's stack (the index, the
//!   signing key, output buffers); `scope` does not return until every
//!   task it spawned has retired, and the caller *helps drain* the
//!   queues while it waits, so a burst of small scopes keeps all workers
//!   busy without any thread churn.
//!
//! Panics stay contained to their origin: a panicking **scope task**
//! poisons only its own scope (that scope's remaining queued tasks are
//! dropped unrun and the first payload is re-raised on the scope's
//! caller, the same contract as `std::thread::scope`), while a panicking
//! **submitted task** is caught and counted — a server worker never
//! takes the pool down. The outputs of [`ThreadPool::map`] are
//! **identical for every thread count**; only wall-clock time changes.
//!
//! # Example
//!
//! ```
//! use authsearch_core::pool::ThreadPool;
//!
//! // Index-ordered parallel map: the result is identical for any
//! // thread count, only wall-clock time changes.
//! let pool = ThreadPool::new(4);
//! let squares = pool.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Scoped spawn borrows the caller's stack without `Arc` — and the
//! // second scope reuses the workers the first one left parked.
//! let inputs = vec![2u64, 3, 5, 7];
//! let mut doubled = vec![0u64; inputs.len()];
//! pool.scope(|s| {
//!     for (d, &x) in doubled.iter_mut().zip(&inputs) {
//!         s.spawn(move || *d = 2 * x);
//!     }
//! });
//! assert_eq!(doubled, vec![4, 6, 10, 14]);
//!
//! // Non-scoped submission for long-lived callers (tasks own their
//! // state); completion is observed through the channel.
//! let (tx, rx) = std::sync::mpsc::channel();
//! pool.submit(move || tx.send(21 * 2).unwrap());
//! assert_eq!(rx.recv().unwrap(), 42);
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// The machine's available parallelism (1 when it cannot be queried).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A queued unit of work. Scope tasks are wrapped (retirement counter,
/// panic capture) before erasure, so the queues hold one uniform type.
type Task = Box<dyn FnOnce() + Send + 'static>;

use crate::cache::lock_recover;

/// State shared between the pool handle, its workers, and helping
/// scope callers.
struct PoolCore {
    /// One steal deque per OS worker (empty when `threads == 1`): the
    /// owner pops the front, thieves pop the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Shared inject queue: [`ThreadPool::submit`] pushes here, and
    /// scope spawns overflow here when the pool has no OS workers.
    inject: Mutex<VecDeque<Task>>,
    /// Round-robin dealing cursor for scope spawns.
    next: AtomicUsize,
    /// Pool is shutting down: workers drain every queue, then exit.
    shutdown: AtomicBool,
    /// Submitted (non-scope) tasks that panicked; see
    /// [`ThreadPool::submitted_panics`].
    submitted_panics: AtomicU64,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl PoolCore {
    /// Pop our own deque's front, else the inject queue, else steal from
    /// a sibling's back. `me` is the worker index, or `deques.len()` for
    /// a helping scope caller (no own deque; inject first, then steal).
    fn grab(&self, me: usize) -> Option<Task> {
        let n = self.deques.len();
        if me < n {
            if let Some(task) = lock_recover(&self.deques[me]).pop_front() {
                return Some(task);
            }
        }
        if let Some(task) = lock_recover(&self.inject).pop_front() {
            return Some(task);
        }
        for offset in 1..=n {
            let victim = (me + offset) % n.max(1);
            if victim == me || victim >= n {
                continue;
            }
            if let Some(task) = lock_recover(&self.deques[victim]).pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// Run one task, containing any panic. Scope tasks re-raise on their
    /// scope's caller through [`ScopeState`]; a bare submitted task's
    /// panic is counted and swallowed so the worker survives.
    fn run_one(&self, task: Task) {
        if panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.submitted_panics.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Any queue non-empty? Used to re-check for work *under the idle
    /// lock* before parking (see [`PoolCore::work`]).
    fn has_work(&self) -> bool {
        if !lock_recover(&self.inject).is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !lock_recover(d).is_empty())
    }

    /// Long-lived worker loop: run until shutdown *and* every queue has
    /// drained (graceful drop never strands a submitted task).
    fn work(&self, me: usize) {
        loop {
            if let Some(task) = self.grab(me) {
                self.run_one(task);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Park until new work or shutdown. Every push notifies
            // *under `idle_lock`*, so re-checking the queues while
            // holding it closes the push-vs-park race: if we see empty
            // here, any later push's notification must land after our
            // wait begins. The long timeout is belt-and-braces only —
            // an idle persistent worker wakes ~4x/s, not at 1 kHz.
            let guard = lock_recover(&self.idle_lock);
            if self.has_work() || self.shutdown.load(Ordering::Acquire) {
                continue;
            }
            let _ = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(250))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wake every parked worker (new work burst, or shutdown).
    fn notify_all(&self) {
        let _guard = lock_recover(&self.idle_lock);
        self.idle_cv.notify_all();
    }

    /// Wake one parked worker (single task pushed).
    fn notify_one(&self) {
        let _guard = lock_recover(&self.idle_lock);
        self.idle_cv.notify_one();
    }
}

/// Per-scope completion state, shared by the scope's caller and the
/// wrappers of every task the scope spawned.
struct ScopeState {
    /// Tasks spawned and not yet retired (run, or dropped by poisoning).
    pending: AtomicUsize,
    /// A task of this scope panicked: drop this scope's queued tasks
    /// instead of running them. Other scopes are unaffected.
    poisoned: AtomicBool,
    /// First panic payload, re-raised on the scope's caller.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Wakes the caller blocked in [`ThreadPool::help_until_done`].
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        })
    }

    /// Retire one task; the last retirement wakes the waiting caller.
    fn retire(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock_recover(&self.done_lock);
            self.done_cv.notify_all();
        }
    }
}

/// Handle for spawning borrowed tasks inside a [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    core: &'scope PoolCore,
    state: &'scope Arc<ScopeState>,
    /// Invariance over `'scope` (the `std::thread::scope` trick): keeps a
    /// scope from being smuggled into a longer-lived one.
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `f` to run on one of the pool's workers (or the caller,
    /// which helps drain while the scope waits). Tasks may borrow
    /// anything that outlives the enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = Arc::clone(self.state);
        // Count before publishing: a worker that pops and retires the
        // task must never observe `pending` at zero first.
        state.pending.fetch_add(1, Ordering::AcqRel);
        let wrapped = move || {
            // `f` must be consumed (run or dropped) **before** `retire`:
            // the moment `pending` hits zero the scope caller may return
            // and free the `'env` stack `f`'s captures (and their `Drop`
            // impls) borrow.
            if state.poisoned.load(Ordering::Acquire) {
                drop(f);
            } else if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                state.poisoned.store(true, Ordering::Release);
                let mut slot = lock_recover(&state.panic_payload);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.retire();
        };
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: the task (and everything its closure borrows from
        // `'env`) cannot outlive the enclosing `scope` call — `scope`
        // does not return, even by unwinding, until `pending` reaches
        // zero, and `pending` reaches zero only after this task has been
        // run *or dropped* by a worker. Erasing the lifetime is what
        // lets long-lived OS workers execute stack-borrowing tasks.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        let n = self.core.deques.len();
        if n == 0 {
            // No OS workers: the caller drains the inject queue in
            // submission order after the scope body returns.
            lock_recover(&self.core.inject).push_back(task);
        } else {
            let slot = self.core.next.fetch_add(1, Ordering::Relaxed) % n;
            lock_recover(&self.core.deques[slot]).push_back(task);
            self.core.notify_one();
        }
    }
}

/// Waits for a scope's tasks even when the scope body panics, so
/// borrowed state is never freed while a worker still holds a task.
struct ScopeWaitGuard<'a> {
    pool: &'a ThreadPool,
    state: &'a Arc<ScopeState>,
}

impl Drop for ScopeWaitGuard<'_> {
    fn drop(&mut self) {
        self.pool.help_until_done(self.state);
    }
}

/// A persistent work-stealing pool (see the module docs).
///
/// `threads` counts the caller: a pool of `n` spawns `n - 1` OS workers
/// and the thread calling [`ThreadPool::scope`] / [`ThreadPool::map`]
/// helps drain while it waits, so `threads == 1` runs everything inline
/// with no OS threads spawned, ever.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("os_workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` is clamped to `1`. The
    /// `threads - 1` OS workers are spawned here, once, and live until
    /// the pool is dropped.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let core = Arc::new(PoolCore {
            deques: (0..threads - 1)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            inject: Mutex::new(VecDeque::new()),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            submitted_panics: AtomicU64::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("authsearch-pool-{i}"))
                    .spawn(move || core.work(i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            core,
            workers,
            threads,
        }
    }

    /// A pool sized to [`available_parallelism`].
    pub fn auto() -> ThreadPool {
        ThreadPool::new(available_parallelism())
    }

    /// Number of workers (including the calling thread during a scope).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Panics from [`ThreadPool::submit`]-ed tasks caught so far (scope
    /// task panics re-raise on their caller instead and are not counted
    /// here). An ops counter: a serving process can alert on it.
    pub fn submitted_panics(&self) -> u64 {
        self.core.submitted_panics.load(Ordering::Relaxed)
    }

    /// Queue an owned (`'static`) task — the non-scoped entry point for
    /// long-lived callers such as server connection handlers. Completion
    /// is observed out of band (e.g. through a channel the task holds).
    ///
    /// On a `threads == 1` pool there are no OS workers to run queued
    /// tasks, so the task runs **inline, right here** — submission order
    /// and the no-spawn guarantee are both preserved. A panicking task
    /// is caught either way (counted in [`ThreadPool::submitted_panics`])
    /// so a bad request never takes a server worker down.
    pub fn submit<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.workers.is_empty() {
            self.core.run_one(Box::new(f));
            return;
        }
        lock_recover(&self.core.inject).push_back(Box::new(f));
        self.core.notify_one();
    }

    /// Help execute queued tasks until `state.pending` reaches zero.
    /// The caller may run tasks from *other* scopes while it waits —
    /// that only helps overall throughput and cannot deadlock, because
    /// no task in this system blocks on another scope's completion.
    fn help_until_done(&self, state: &Arc<ScopeState>) {
        let me = self.core.deques.len(); // virtual index: no own deque
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(task) = self.core.grab(me) {
                self.core.run_one(task);
                continue;
            }
            // Our remaining tasks are all *running* on workers (grab
            // found nothing queued), so park until a retirement wakes
            // us. `retire` notifies under `done_lock`, and we re-check
            // `pending` while holding it, so the wakeup cannot be lost;
            // the timeout is belt-and-braces.
            let guard = lock_recover(&state.done_lock);
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_millis(250))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Run `f`, which may spawn borrowed tasks on the scope; returns once
    /// every spawned task has finished. The calling thread helps drain
    /// the queues while it waits — on a one-thread pool it simply runs
    /// every task inline, in submission order, after `f` returns.
    ///
    /// If any task of this scope panicked, the first payload is re-raised
    /// here after all of the scope's tasks have retired. Other scopes
    /// sharing the pool are unaffected, and the pool stays usable.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = ScopeState::new();
        let result = {
            // Wait for spawned tasks even if `f` itself unwinds — the
            // tasks borrow the caller's stack, which must stay alive
            // until every one of them has retired.
            let wait = ScopeWaitGuard {
                pool: self,
                state: &state,
            };
            let scope = Scope {
                core: &self.core,
                state: &state,
                _marker: PhantomData,
            };
            let out = f(&scope);
            drop(wait); // help drain until everything has retired
            out
        };
        if let Some(payload) = lock_recover(&state.panic_payload).take() {
            panic::resume_unwind(payload);
        }
        result
    }

    /// Index-ordered parallel map: `(0..n).map(f).collect()`, with the
    /// calls distributed over the pool in stealable contiguous chunks.
    ///
    /// The output is **identical for every thread count** — element `i`
    /// is always `f(i)` and lands at index `i` — which is what makes the
    /// parallel owner build bit-compatible with the sequential paper
    /// model. A one-thread pool short-circuits to the plain sequential
    /// loop.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = chunk_size(n, self.threads);
        {
            let slots = SlotWriter(out.as_mut_ptr());
            let f = &f;
            self.scope(|s| {
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    s.spawn(move || {
                        // Capture the whole wrapper, not its raw-pointer
                        // field (edition-2021 closures capture per field,
                        // which would bypass the `Send` impl).
                        let slots = slots;
                        for i in start..end {
                            let value = f(i);
                            // SAFETY: chunks partition 0..n, so index i
                            // is written by exactly this task, and the
                            // scope joins every task before `out` is
                            // read or dropped. Overwriting the `None`
                            // placeholder needs no drop.
                            unsafe { slots.0.add(i).write(Some(value)) };
                        }
                    });
                    start = end;
                }
            });
        }
        out.into_iter()
            .map(|v| v.expect("pool map task completed"))
            .collect()
    }
}

impl Drop for ThreadPool {
    /// Graceful shutdown: wake everyone, let the workers drain every
    /// queue (submitted tasks still run), and join them.
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.notify_all();
        for handle in self.workers.drain(..) {
            // Worker bodies catch task panics and stash them in the
            // scope state, so a join error here is a pool bug, not a
            // task bug — surface it under test instead of swallowing.
            let joined = handle.join();
            debug_assert!(joined.is_ok(), "pool worker panicked outside a task");
        }
    }
}

/// Raw pointer into the map output, sendable because disjoint indices go
/// to disjoint tasks (see the SAFETY comment at the write site).
struct SlotWriter<T>(*mut Option<T>);

impl<T> Clone for SlotWriter<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotWriter<T> {}

// SAFETY: each task writes a disjoint range and the scope joins all
// tasks before the buffer is touched again.
unsafe impl<T: Send> Send for SlotWriter<T> {}

/// Chunk length targeting ~8 stealable units per worker, so the deques
/// stay long enough for stealing to smooth out uneven task costs.
fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 8).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn map_matches_sequential_for_all_thread_counts() {
        let expect: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let got = pool.map(257, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
        // Far fewer items than workers.
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn scope_tasks_can_borrow_mutable_disjoint_state() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0u32; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn single_thread_pool_spawns_inline_in_submission_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..16 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn workers_persist_across_scopes() {
        // The tentpole contract: consecutive scope/map calls reuse the
        // same OS workers instead of spawning fresh ones. Observe worker
        // thread ids across many scopes — the set must not grow beyond
        // the pool width (with fresh spawn/join per call it would
        // accumulate a new id per call).
        let pool = ThreadPool::new(3);
        let ids = Mutex::new(std::collections::HashSet::new());
        for _ in 0..32 {
            pool.scope(|s| {
                for _ in 0..8 {
                    let ids = &ids;
                    s.spawn(move || {
                        ids.lock().unwrap().insert(std::thread::current().id());
                    });
                }
            });
        }
        // Tasks run on the 2 OS workers and possibly the caller.
        assert!(ids.lock().unwrap().len() <= 3);
    }

    #[test]
    fn submit_runs_owned_tasks() {
        let pool = ThreadPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..64u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn submit_on_single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(std::thread::current().id()).unwrap());
        // Ran inline: same thread, already completed.
        assert_eq!(rx.try_recv().unwrap(), std::thread::current().id());
    }

    #[test]
    fn submitted_panic_is_contained_and_counted() {
        let pool = ThreadPool::new(2);
        pool.submit(|| panic!("submitted task failure"));
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).unwrap());
        // The worker survived the panic and keeps serving.
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        assert_eq!(pool.submitted_panics(), 1);
        // Scopes still work on the same pool.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn drop_drains_submitted_tasks() {
        let done = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..128 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Pool dropped here: shutdown must drain, not discard.
        }
        assert_eq!(done.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn worker_panic_propagates_and_pool_shuts_down() {
        let pool = ThreadPool::new(4);
        let ran = AtomicU64::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..64u64 {
                    let ran = &ran;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("pool task failure 7");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("pool task failure 7"), "payload: {msg:?}");
        // Poisoning dropped *at most* the tasks queued behind the panic;
        // everything retired and the scope still joined cleanly.
        assert!(ran.load(Ordering::Relaxed) <= 63);
        // The pool is reusable after a poisoned scope — the poison was
        // scoped, not pool-wide.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
        // Scope panics are not "submitted task" panics.
        assert_eq!(pool.submitted_panics(), 0);
    }

    #[test]
    fn map_panic_propagates_original_payload() {
        let pool = ThreadPool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map(32, |i| {
                if i == 13 {
                    panic!("unlucky 13");
                }
                i
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("unlucky 13"), "payload: {msg:?}");
    }

    #[test]
    fn concurrent_scopes_from_many_threads_share_one_pool() {
        // The server shape: several connection threads each running
        // scopes (serve_batch) against one shared pool. Poisoning one
        // scope must not leak into the others.
        let pool = Arc::new(ThreadPool::new(4));
        let mut handles = Vec::new();
        for caller in 0..6u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut acc = 0u64;
                for round in 0..8u64 {
                    let out = pool.map(32, |i| caller * 1_000_000 + round * 1_000 + i as u64);
                    acc += out.iter().sum::<u64>();
                }
                acc
            }));
        }
        let mut totals: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        totals.sort_unstable();
        let expect: Vec<u64> = (0..6u64)
            .map(|caller| {
                (0..8u64)
                    .map(|round| {
                        (0..32u64)
                            .map(|i| caller * 1_000_000 + round * 1_000 + i)
                            .sum::<u64>()
                    })
                    .sum()
            })
            .collect();
        assert_eq!(totals, expect);
    }

    #[test]
    fn stealing_balances_uneven_tasks() {
        // One task is ~100x the others; with stealing the short tasks
        // finish on other workers. We can only assert completion and
        // correctness here (timing is machine-dependent).
        let pool = ThreadPool::new(4);
        let out = pool.map(64, |i| {
            let reps = if i == 0 { 100_000 } else { 1_000 };
            let mut acc = i as u64;
            for _ in 0..reps {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn auto_pool_matches_available_parallelism() {
        assert_eq!(ThreadPool::auto().threads(), available_parallelism());
    }
}
