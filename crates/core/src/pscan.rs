//! PSCAN — Prioritized Scanning (paper Figure 2).
//!
//! The conventional, non-authenticated evaluation algorithm: repeatedly
//! consume the impact entry with the highest term score across the query
//! lists, accumulating partial scores until every list is exhausted. It
//! reads each list completely — this is the "List Length" baseline of
//! Figures 13(a), 14(a) and 15(a) — and is the reference implementation
//! the threshold algorithms are tested against.

use crate::access::{AccessError, ListAccess};
use crate::types::{insert_ranked, DocTable, ProcessingOutcome, Query, QueryResult, ResultEntry};
use authsearch_corpus::DocId;
use std::collections::HashMap;

/// Run PSCAN to find the top `r` documents.
pub fn run<L: ListAccess>(
    lists: &L,
    query: &Query,
    r: usize,
) -> Result<ProcessingOutcome, AccessError> {
    let q = query.terms.len();
    let mut pos = vec![0usize; q];
    let mut fronts: Vec<Option<f32>> = Vec::with_capacity(q);
    for i in 0..q {
        fronts.push(lists.entry(i, 0)?.map(|e| e.weight));
    }

    let mut accumulators: HashMap<DocId, f64> = HashMap::new();
    let mut encounter_order: Vec<DocId> = Vec::new();
    let mut iterations = 0usize;

    loop {
        // Step 2(a): highest term score c = w_{Q,t} · w_{d,t}.
        let mut best: Option<(usize, f64)> = None;
        for (i, front) in fronts.iter().enumerate() {
            if let Some(w) = front {
                let c = query.terms[i].wq * *w as f64;
                if best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((i, c));
                }
            }
        }
        let Some((i, c)) = best else { break };

        let entry = lists
            .entry(i, pos[i])?
            .expect("front tracked but entry missing");
        // Steps 2(b)-(c): accumulate.
        match accumulators.entry(entry.doc) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(c);
                encounter_order.push(entry.doc);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                *o.get_mut() += c;
            }
        }
        // Step 2(d): advance.
        pos[i] += 1;
        fronts[i] = lists.entry(i, pos[i])?.map(|e| e.weight);
        iterations += 1;
    }

    // Step 3: the r largest accumulators.
    let mut entries: Vec<ResultEntry> = Vec::new();
    for (&doc, &score) in &accumulators {
        insert_ranked(&mut entries, doc, score);
    }
    entries.truncate(r);

    let prefix_lens = (0..q).map(|i| lists.list_len(i)).collect();
    Ok(ProcessingOutcome {
        result: QueryResult { entries },
        prefix_lens,
        encountered: encounter_order,
        iterations,
    })
}

/// Reference scorer: compute `S(d|Q)` for every document by direct lookup
/// in the document table and return the top `r`. Used as the ground truth
/// in cross-algorithm tests.
pub fn naive_topk(table: &DocTable, query: &Query, r: usize) -> QueryResult {
    let mut entries: Vec<ResultEntry> = Vec::new();
    for d in 0..table.num_docs() as DocId {
        let mut s = 0.0f64;
        for qt in &query.terms {
            s += qt.wq * table.weight(d, qt.term) as f64;
        }
        if s > 0.0 {
            insert_ranked(&mut entries, d, s);
            if entries.len() > r {
                entries.truncate(r);
            }
        }
    }
    QueryResult { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::IndexLists;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_index::{build_index, OkapiParams};

    fn setup() -> (authsearch_corpus::Corpus, authsearch_index::InvertedIndex) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("night keeper keeps house house")
            .add_text("big house big gown")
            .add_text("old night keeper watch")
            .add_text("keeper keeper keeper night")
            .build();
        let index = build_index(&corpus, OkapiParams::default());
        (corpus, index)
    }

    #[test]
    fn pscan_matches_naive() {
        let (corpus, index) = setup();
        let table = DocTable::from_index(&index);
        let keeper = corpus.term_id("keeper").unwrap();
        let night = corpus.term_id("night").unwrap();
        let q = Query::from_term_ids(&index, &[keeper, night]);
        let lists = IndexLists::new(&index, &q);
        let pscan = run(&lists, &q, 3).unwrap();
        let naive = naive_topk(&table, &q, 3);
        assert_eq!(pscan.result.docs(), naive.docs());
        for (a, b) in pscan.result.entries.iter().zip(&naive.entries) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn pscan_reads_entire_lists() {
        let (corpus, index) = setup();
        let keeper = corpus.term_id("keeper").unwrap();
        let q = Query::from_term_ids(&index, &[keeper]);
        let lists = IndexLists::new(&index, &q);
        let out = run(&lists, &q, 1).unwrap();
        assert_eq!(out.prefix_lens, vec![index.list(keeper).len()]);
        assert_eq!(out.iterations, index.list(keeper).len());
    }

    #[test]
    fn result_is_ordered_and_truncated() {
        let (corpus, index) = setup();
        let keeper = corpus.term_id("keeper").unwrap();
        let night = corpus.term_id("night").unwrap();
        let q = Query::from_term_ids(&index, &[keeper, night]);
        let lists = IndexLists::new(&index, &q);
        let out = run(&lists, &q, 2).unwrap();
        assert!(out.result.is_ordered());
        assert_eq!(out.result.entries.len(), 2);
    }

    #[test]
    fn empty_query_yields_empty_result() {
        let (_, index) = setup();
        let q = Query::default();
        let lists = IndexLists::new(&index, &q);
        let out = run(&lists, &q, 5).unwrap();
        assert!(out.result.entries.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn naive_ignores_zero_score_docs() {
        let (corpus, index) = setup();
        let table = DocTable::from_index(&index);
        let gown = corpus.term_id("gown").unwrap();
        let q = Query::from_term_ids(&index, &[gown]);
        let res = naive_topk(&table, &q, 10);
        assert_eq!(res.entries.len(), 1); // only doc 1 contains 'gown'
        assert_eq!(res.entries[0].doc, 1);
    }
}
