//! Minimal readiness reactor over raw Linux `epoll` — a hand-rolled
//! `mio` subset, std-only.
//!
//! No async runtime or I/O crate exists in this build environment, so
//! the event-driven server core ([`crate::server`]) carries its own
//! readiness layer: [`Poll`] wraps an `epoll` instance created and
//! driven through direct C-ABI declarations (the symbols are in the
//! libc that `std` already links — no new dependency), [`Token`] and
//! [`Interest`] mirror their `mio` namesakes, [`Waker`] provides the
//! cross-thread wakeup fd that lets pool workers and `shutdown()`
//! interrupt a blocked [`Poll::poll`], and [`TimerWheel`] turns idle
//! and frame deadlines into O(1)-per-tick bookkeeping instead of
//! per-connection poll intervals.
//!
//! **Platform surface:** `epoll` is Linux-only, and so is this module
//! (`#[cfg(target_os = "linux")]` at the `lib.rs` declaration). On
//! other platforms the server falls back to the threaded
//! connection-per-thread core, which is pure std and runs everywhere —
//! see [`crate::server::ServerCore`] for the selection story.
//!
//! Registration is **level-triggered**: a socket with unread bytes (or
//! writable space) is reported on every [`Poll::poll`] until the
//! condition clears. The connection state machine therefore never
//! needs to drain-to-`WouldBlock` for correctness, only for
//! efficiency, which keeps its partial-read/partial-write logic easy
//! to verify — the property the 1-byte-at-a-time fuzz tests in
//! `server/conn.rs` pin down.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// One `struct epoll_event`, ABI-compatible with the kernel's. On
/// x86-64 the kernel declares it packed (a 12-byte struct); other
/// architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// The epoll syscall wrappers from the libc that std links. Declared by
// hand because no `libc` crate exists in this image; signatures match
// epoll_create1(2), epoll_ctl(2), epoll_wait(2), close(2).
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Caller-chosen identifier attached to a registration and echoed back
/// in every [`Event`] for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness conditions a registration subscribes to. An empty
/// interest keeps the fd registered (errors and hangups are always
/// reported by epoll) but delivers no read/write readiness — the state
/// the server parks a connection in while its query runs on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    bits: u32,
}

impl Interest {
    /// No readiness subscription (errors/hangups still delivered).
    pub const NONE: Interest = Interest { bits: 0 };
    /// Readable readiness (includes peer half-close via `EPOLLRDHUP`).
    pub const READABLE: Interest = Interest {
        bits: EPOLLIN | EPOLLRDHUP,
    };
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest { bits: EPOLLOUT };

    /// Whether this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.bits & EPOLLIN != 0
    }

    /// Whether this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.bits & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    /// Union of two interests.
    fn bitor(self, other: Interest) -> Interest {
        Interest {
            bits: self.bits | other.bits,
        }
    }
}

/// One readiness notification from [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the ready fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Bytes (or EOF) are waiting to be read. Peer half-close
    /// (`EPOLLRDHUP`) and full hangup both count — a read will return
    /// promptly either way.
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0
    }

    /// The fd can accept more bytes without blocking.
    pub fn is_writable(&self) -> bool {
        self.bits & EPOLLOUT != 0
    }

    /// The fd is in an error state (e.g. connection reset); the owner
    /// should close it.
    pub fn is_error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }

    /// The peer hung up entirely.
    pub fn is_hangup(&self) -> bool {
        self.bits & EPOLLHUP != 0
    }
}

/// Reusable buffer of readiness events for [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// An event buffer receiving at most `capacity` events per poll,
    /// clamped to `[1, 4096]` — a bigger batch per `epoll_wait` return
    /// buys nothing, and the clamp keeps the preallocation bounded.
    // lint:allow(unclamped-prealloc): this is the definition, not a call — the body clamps the operator-chosen capacity to [1, 4096] on the next line
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.clamp(1, 4096);
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Events delivered by the most recent [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().take(self.len).map(|ev| {
            // Copy out of the (potentially packed) struct before use.
            let bits = ev.events;
            let data = ev.data;
            Event {
                token: Token(data),
                bits,
            }
        })
    }

    /// Whether the most recent poll delivered no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An `epoll` instance: register fds with a [`Token`] and an
/// [`Interest`], then [`Poll::poll`] for readiness.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: epoll_create1 takes a flags word and returns an fd or
        // -1; no pointers cross the boundary.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, bits: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: bits,
            data: token.0,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. For EPOLL_CTL_DEL the kernel ignores the pointer
        // (passing a valid one keeps pre-2.6.9 semantics happy anyway).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` (level-triggered) under `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.bits, token)
    }

    /// Change an existing registration's interest (and/or token).
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.bits, token)
    }

    /// Stop watching `fd`. Closing an fd deregisters it implicitly, but
    /// an explicit deregister keeps the registration set in sync when a
    /// socket must outlive its registration (e.g. handing it off).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Token(0))
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or a [`Waker`] fires. Returns the
    /// number of events written into `events`. `EINTR` retries
    /// internally with the timeout re-derived, so callers never see
    /// spurious zero-event wakeups from signals.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let timeout_ms: c_int = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so we never spin on a sub-millisecond
                    // remainder; clamp far-future deadlines to a day.
                    let ms = left
                        .as_millis()
                        .saturating_add(u128::from(left.as_nanos() % 1_000_000 != 0));
                    c_int::try_from(ms.min(86_400_000)).unwrap_or(c_int::MAX)
                }
            };
            let max = c_int::try_from(events.buf.len()).unwrap_or(c_int::MAX);
            // SAFETY: the buffer holds `events.buf.len()` properly
            // initialized EpollEvent slots and `max` never exceeds it.
            let rc = unsafe { epoll_wait(self.epfd, events.buf.as_mut_ptr(), max, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    events.len = 0;
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Ok(0);
                    }
                    continue;
                }
                events.len = 0;
                return Err(err);
            }
            let n = usize::try_from(rc).unwrap_or(0);
            events.len = n.min(events.buf.len());
            return Ok(events.len);
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once; no other
        // wrapper closes it, so the descriptor cannot be reused by a
        // concurrent open between here and the syscall.
        let rc = unsafe { close(self.epfd) };
        debug_assert!(
            rc == 0,
            "close(epfd {}) failed: {}",
            self.epfd,
            io::Error::last_os_error()
        );
    }
}

/// Cross-thread wakeup for a blocked [`Poll::poll`].
///
/// Implemented over a nonblocking `UnixStream` pair instead of an
/// `eventfd` so the only raw syscalls in this module are the epoll
/// family: the read half is registered with the poll (readable
/// interest) and [`Waker::wake`] writes one byte into the write half
/// from any thread. Wakes coalesce — a full pipe means a wake is
/// already pending, which is exactly the semantic wanted.
pub struct Waker {
    /// Write half; `wake()` is `&self` and the socket write is atomic
    /// for one byte, so clones of the Arc'd waker can fire concurrently.
    tx: UnixStream,
    /// Read half, registered with the poll; `drain()` empties it.
    rx: UnixStream,
}

impl Waker {
    /// Build a waker from a fresh nonblocking socketpair.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register with the poll under the waker's token.
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Make the owning poll's next (or current) `poll` call return.
    /// Never blocks: a full pipe already guarantees a pending wake.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consume pending wake bytes so level-triggered readiness clears.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    }
}

/// A timer entry's identity: which connection, and which *arming* of
/// that connection's deadline. The wheel never deletes — a connection
/// that re-arms (new request, reply written) bumps its epoch and the
/// stale entry is ignored when its slot comes around. Expiry is
/// therefore a **candidate**, not a verdict: the owner re-checks the
/// connection's real deadline and re-inserts when it moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// Owner id (the reactor uses connection ids and sentinels).
    pub id: u64,
    /// The arming generation; stale generations are ignored at expiry.
    pub epoch: u64,
}

struct TimerSlotEntry {
    entry: TimerEntry,
    deadline_tick: u64,
}

/// Hashed timer wheel: deadlines bucketed into `tick`-wide slots. All
/// operations are O(1) amortized per entry per revolution; with the
/// server's 10 ms tick and 512 slots a 30-second idle deadline costs
/// one re-bucket roughly every 5 seconds of its life. Coarseness is
/// bounded by one tick (a deadline fires at most one tick late), which
/// is far inside the tolerance of idle/write deadlines measured in
/// hundreds of milliseconds to tens of seconds.
pub struct TimerWheel {
    slots: Vec<Vec<TimerSlotEntry>>,
    tick: Duration,
    start: Instant,
    /// Next tick index to sweep.
    cursor: u64,
    /// Live entries across all slots (stale epochs included — the owner
    /// filters those; this only gates "is any timeout outstanding").
    len: usize,
    /// Smallest `deadline_tick` that may be present, for
    /// [`TimerWheel::next_timeout`]. Re-derived on every sweep.
    hint: Option<u64>,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide. 512 × 10 ms covers
    /// a ~5 s revolution; longer deadlines survive extra revolutions in
    /// place (each entry stores its absolute deadline tick).
    pub fn new(slots: usize, tick: Duration) -> TimerWheel {
        let slots = slots.max(2);
        let tick = if tick.is_zero() {
            Duration::from_millis(10)
        } else {
            tick
        };
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            start: Instant::now(),
            cursor: 0,
            len: 0,
            hint: None,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        let t = elapsed.as_nanos() / self.tick.as_nanos().max(1);
        u64::try_from(t).unwrap_or(u64::MAX)
    }

    /// Arm `entry` to become an expiry candidate at `deadline` (rounded
    /// up to the next tick boundary, so it never fires early).
    pub fn insert(&mut self, deadline: Instant, entry: TimerEntry) {
        let deadline_tick = self.tick_of(deadline).saturating_add(1);
        let nslots = self.slots.len();
        let idx = usize::try_from(deadline_tick % u64::try_from(nslots).unwrap_or(1)).unwrap_or(0);
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.push(TimerSlotEntry {
                entry,
                deadline_tick,
            });
            self.len += 1;
            self.hint = Some(self.hint.map_or(deadline_tick, |h| h.min(deadline_tick)));
        }
    }

    /// Sweep every tick between the last sweep and `now`, appending the
    /// expired candidates to `expired`. Entries past their tick are
    /// removed; the owner decides whether each one is a real timeout
    /// (and re-inserts if the connection's deadline has moved).
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<TimerEntry>) {
        let now_tick = self.tick_of(now);
        if now_tick < self.cursor {
            return;
        }
        let nslots = u64::try_from(self.slots.len()).unwrap_or(1);
        let span = now_tick - self.cursor;
        if span >= nslots {
            // A full revolution (or more) passed: one pass over every
            // slot sees every possible candidate.
            for slot in self.slots.iter_mut() {
                slot.retain(|e| {
                    if e.deadline_tick <= now_tick {
                        expired.push(e.entry);
                        false
                    } else {
                        true
                    }
                });
            }
        } else {
            let mut t = self.cursor;
            while t <= now_tick {
                let idx = usize::try_from(t % nslots).unwrap_or(0);
                if let Some(slot) = self.slots.get_mut(idx) {
                    slot.retain(|e| {
                        if e.deadline_tick <= now_tick {
                            expired.push(e.entry);
                            false
                        } else {
                            true
                        }
                    });
                }
                t += 1;
            }
        }
        self.cursor = now_tick + 1;
        self.len -= expired.len().min(self.len);
        // Re-derive the earliest outstanding deadline for next_timeout.
        self.hint = self
            .slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.deadline_tick))
            .min();
    }

    /// How long [`Poll::poll`] may sleep before the next deadline could
    /// fire; `None` when no timers are armed.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let target_tick = self.hint?;
        let nanos = self.tick.as_nanos().saturating_mul(u128::from(target_tick));
        let offset = Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX));
        let target = self.start.checked_add(offset)?;
        Some(target.saturating_duration_since(now))
    }

    /// Are any entries armed (stale epochs included)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn poll_reports_readable_unix_stream() {
        let poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        {
            use std::os::fd::AsRawFd;
            poll.register(b.as_raw_fd(), Token(7), Interest::READABLE)
                .unwrap();
        }
        let mut events = Events::with_capacity(8);
        // Nothing to read yet: a short poll times out empty.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        (&a).write_all(b"x").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        assert!(!ev.is_writable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn reregister_changes_interest() {
        let poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        use std::os::fd::AsRawFd;
        (&a).write_all(b"y").unwrap();
        poll.register(b.as_raw_fd(), Token(1), Interest::NONE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        // Interest NONE: pending bytes do not wake the poll.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "empty interest must not deliver readable");
        poll.reregister(b.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        // Level-triggered: still reported until drained.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 1, "level-triggered readiness persists until read");
        poll.deregister(b.as_raw_fd()).unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd delivers nothing");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_coalesces() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poll.register(waker.fd(), Token(0), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Many wakes from another thread coalesce into >= 1 event.
            for _ in 0..1000 {
                w.wake();
            }
        });
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));
        t.join().unwrap();
        waker.drain();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "drained waker is quiet");
    }

    #[test]
    fn timer_wheel_orders_and_expires() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(5));
        let t0 = Instant::now();
        wheel.insert(
            t0 + Duration::from_millis(10),
            TimerEntry { id: 1, epoch: 0 },
        );
        wheel.insert(
            t0 + Duration::from_millis(500),
            TimerEntry { id: 2, epoch: 0 },
        );
        assert!(!wheel.is_empty());
        let mut expired = Vec::new();
        wheel.advance(t0, &mut expired);
        assert!(expired.is_empty(), "nothing expires at insert time");
        // Far enough for entry 1, not 2 — and 500ms > 8*5ms, so entry 2
        // must survive multiple revolutions in place.
        wheel.advance(t0 + Duration::from_millis(80), &mut expired);
        assert_eq!(expired, vec![TimerEntry { id: 1, epoch: 0 }]);
        expired.clear();
        wheel.advance(t0 + Duration::from_millis(400), &mut expired);
        assert!(
            expired.is_empty(),
            "multi-revolution entry fires only at its tick"
        );
        wheel.advance(t0 + Duration::from_millis(600), &mut expired);
        assert_eq!(expired, vec![TimerEntry { id: 2, epoch: 0 }]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout(Instant::now()), None);
    }

    #[test]
    fn timer_wheel_next_timeout_tracks_earliest() {
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10));
        let t0 = Instant::now();
        assert_eq!(wheel.next_timeout(t0), None);
        wheel.insert(
            t0 + Duration::from_millis(300),
            TimerEntry { id: 9, epoch: 3 },
        );
        let wait = wheel.next_timeout(t0).unwrap();
        assert!(
            wait >= Duration::from_millis(290) && wait <= Duration::from_millis(330),
            "{wait:?}"
        );
        wheel.insert(
            t0 + Duration::from_millis(50),
            TimerEntry { id: 4, epoch: 0 },
        );
        let wait = wheel.next_timeout(t0).unwrap();
        assert!(wait <= Duration::from_millis(80), "{wait:?}");
        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(120), &mut expired);
        assert_eq!(expired, vec![TimerEntry { id: 4, epoch: 0 }]);
        let wait = wheel.next_timeout(t0 + Duration::from_millis(120)).unwrap();
        assert!(wait <= Duration::from_millis(210), "{wait:?}");
    }

    #[test]
    fn poll_timeout_rounds_up_not_down() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(1);
        let start = Instant::now();
        let n = poll
            .poll(&mut events, Some(Duration::from_micros(1500)))
            .unwrap();
        assert_eq!(n, 0);
        // 1.5ms rounds up to 2ms, never down to 1ms-and-spin.
        assert!(start.elapsed() >= Duration::from_millis(1));
    }
}
