//! Long-running authenticated search server over the wire protocol.
//!
//! The paper's model is a one-shot pipeline — owner builds, engine
//! answers one query, user verifies. This module is the deployment shape
//! of *Verifying Search Results Over Web Collections* (Goodrich et al.):
//! a continuously running, **untrusted** server answering verifiable
//! queries from many clients over TCP. The trust model is unchanged —
//! nothing the server sends is believed until the client's
//! [`verify`](mod@crate::verify) accepts it against the owner's public key —
//! the server is just the engine with a socket in front of it.
//!
//! ## Architecture
//!
//! * **Thread-per-connection acceptor**: a background acceptor thread
//!   takes connections off the listener and hands each its own OS
//!   thread, which owns the socket and does all framing I/O
//!   ([`crate::wire`]: versioned length-prefixed frames).
//! * **Persistent pool dispatch**: query execution is
//!   [`submit`](crate::pool::ThreadPool::submit)-ted onto the engine's
//!   persistent work-stealing pool
//!   ([`AuthenticatedIndex::serve_pool`](crate::AuthenticatedIndex::serve_pool)
//!   — the same workers the owner build spawned), so N connections
//!   share one executor instead of oversubscribing the machine, and a
//!   `threads = 1` deployment still runs the paper's sequential model
//!   with no thread spawned anywhere.
//! * **Warm start**: startup pre-warms the sharded structure LRUs with
//!   the top-df terms ([`ServerConfig::warm_top_k`],
//!   [`crate::AuthenticatedIndex::warm_cache`]) so the first wave of
//!   traffic doesn't stampede the caches with concurrent cold builds.
//! * **Per-connection error isolation**: malformed bytes, unserviceable
//!   queries, and even a panicking query worker produce a coded
//!   [`crate::wire::kind::REPLY_ERR`] frame (or at worst close that one
//!   connection) — attacker-controlled input never panics the process
//!   and never touches other connections.
//! * **Graceful shutdown**: [`ServerHandle::shutdown`] stops the
//!   acceptor, unblocks and joins every connection thread, and returns
//!   the final [`ServerMetricsSnapshot`].

use crate::cache::lock_recover;
use crate::engine::SearchEngine;
use crate::metrics::{ServerMetrics, ServerMetricsSnapshot};
use crate::pool::ThreadPool;
use crate::types::Query;
use crate::wire::{self, Request, WireError};
use crate::WarmStats;
use authsearch_corpus::TermId;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Operational knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How many top-df terms to pre-warm into the structure caches at
    /// startup. `None` (the default) is **`AuthConfig`-driven**: warm up
    /// to the term LRU's configured capacity
    /// ([`crate::AuthConfig::term_cache_capacity`]); `Some(0)` disables
    /// warming; `Some(k)` warms exactly `k` (clamped to capacity).
    pub warm_top_k: Option<usize>,
    /// Largest `r` a request may ask for; bigger requests get a
    /// [`crate::wire::errcode::BAD_QUERY`] reply instead of letting a
    /// remote peer size engine-side allocations.
    pub max_r: usize,
    /// Socket read poll interval: how long a connection thread blocks in
    /// `read` before re-checking the shutdown flag. Bounds shutdown
    /// latency for idle connections.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            warm_top_k: None,
            max_r: 1024,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
    warmed: WarmStats,
}

/// One live connection's registry slot: the monitoring socket clone
/// (for unblocking reads at shutdown) and the handler thread (for
/// joining; `None` briefly, between registration and spawn).
type ConnEntry = (TcpStream, Option<JoinHandle<()>>);

/// State shared by the acceptor and every connection thread.
struct ServerState {
    engine: Arc<SearchEngine>,
    pool: Arc<ThreadPool>,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    /// Live connections by id. Each handler removes its own entry as
    /// it exits, so an idle server holds no fds or join handles for
    /// past connections — the map's size tracks *live* connections
    /// only.
    connections: Mutex<std::collections::HashMap<u64, ConnEntry>>,
}

/// The server front: binds, warms, and accepts.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), warm
    /// the caches per `config`, and start accepting in the background.
    /// Returns immediately; queries are served until
    /// [`ServerHandle::shutdown`] (or drop).
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<SearchEngine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Warm start: populate the sharded LRUs with the hot head of the
        // dictionary before the first connection lands.
        let warm_top_k = config
            .warm_top_k
            .unwrap_or(engine.auth().config().term_cache_capacity);
        let warmed = engine.auth().warm_cache(warm_top_k);
        let pool = engine.auth().serve_pool();
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServerState {
            engine,
            pool,
            config,
            metrics: ServerMetrics::default(),
            shutdown: Arc::clone(&shutdown),
            connections: Mutex::new(std::collections::HashMap::new()),
        });
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("authsearch-acceptor".into())
                .spawn(move || accept_loop(listener, state))?
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            state,
            warmed,
        })
    }
}

impl ServerHandle {
    /// The bound address (the ephemeral port when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup warming materialized.
    pub fn warmed(&self) -> WarmStats {
        self.warmed
    }

    /// Live counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.state.metrics.snapshot()
    }

    /// Stop accepting, unblock and join every connection thread, join
    /// the acceptor, and return the final counters. In-flight requests
    /// finish; idle connections are closed.
    pub fn shutdown(mut self) -> ServerMetricsSnapshot {
        self.shutdown_impl();
        self.state.metrics.snapshot()
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Fast-path wakeup for the acceptor; purely an optimization —
        // the nonblocking accept loop re-checks the flag every poll
        // interval regardless, so a failed connect (fd exhaustion)
        // cannot hang shutdown.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections = std::mem::take(&mut *lock_recover(&self.state.connections));
        for (_, (stream, handle)) in connections {
            // Readers wake with an error (or at the next poll tick) and
            // observe the flag.
            let _ = stream.shutdown(Shutdown::Both);
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Accept until shutdown; one OS thread per connection. The listener
/// runs **nonblocking** with a poll interval, so shutdown can never
/// hang on a blocked `accept` — the throwaway self-connect in
/// [`ServerHandle::shutdown`] is only a fast path, not a correctness
/// requirement (it can fail under fd exhaustion, exactly when an
/// operator is most likely to be shutting the server down).
fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let _ = listener.set_nonblocking(true);
    let mut next_id = 0u64;
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // WouldBlock is the idle tick; any other error (e.g.
                // EMFILE under fd exhaustion) also waits out the poll
                // interval — retrying immediately would spin a full
                // core exactly when the host is resource-starved.
                std::thread::sleep(state.config.poll_interval);
                continue;
            }
        };
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        // The listener's nonblocking flag is inherited by accepted
        // sockets on some platforms; connection I/O must block (with a
        // read timeout) instead.
        let _ = stream.set_nonblocking(false);
        state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let monitor = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let id = next_id;
        next_id += 1;
        // Register before spawning: the handler removes its own entry
        // when it exits, and removal of a not-yet-registered entry
        // would leak the monitor fd.
        lock_recover(&state.connections).insert(id, (monitor, None));
        let spawned = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("authsearch-conn-{id}"))
                .spawn(move || handle_connection(stream, state, id))
        };
        let mut connections = lock_recover(&state.connections);
        match spawned {
            // The handler may already have finished and removed its
            // entry — only fill the slot if it is still present.
            Ok(handle) => {
                if let Some(entry) = connections.get_mut(&id) {
                    entry.1 = Some(handle);
                }
            }
            Err(_) => {
                connections.remove(&id);
            }
        }
    }
}

/// Serve one connection, then close the underlying socket explicitly —
/// the acceptor holds a monitoring clone of it (for shutdown
/// unblocking), so dropping our handle alone would leave the peer
/// waiting on a connection that is already dead.
fn handle_connection(stream: TcpStream, state: Arc<ServerState>, id: u64) {
    connection_loop(&stream, &state);
    let _ = stream.shutdown(Shutdown::Both);
    // Self-prune: drop the monitor clone (and our registry slot) so an
    // idle server holds no resources for finished connections.
    lock_recover(&state.connections).remove(&id);
}

/// Read frames and answer them until the peer hangs up, the bytes stop
/// making sense, or the server shuts down. Never panics on input.
fn connection_loop(mut stream: &TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(state.config.poll_interval));
    let _ = stream.set_nodelay(true);
    loop {
        // Frame header (tolerating read-timeout ticks between frames).
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        match read_full(stream, &mut header, &state.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // clean EOF, peer error, or shutdown
        }
        // Lenient header parse: magic, version, and payload length must
        // check out (without them the frame boundary is unknowable and
        // the connection must drop), but an *unknown kind* still has a
        // trustworthy length — its payload is consumed below and
        // `answer` turns it into a coded error reply, keeping the
        // connection alive for forward compatibility.
        let (kind, len) = match wire::decode_frame_header_any(&header) {
            Ok(parsed) => parsed,
            Err(e) => {
                // Un-synchronizable: reply if possible, then drop the
                // connection (we can no longer find frame boundaries).
                let _ = send_error_frame(stream, state, wire::errcode::MALFORMED, &e.to_string());
                return;
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(stream, &mut payload, &state.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // truncated frame: peer is gone
        }
        state
            .metrics
            .bytes_in
            .fetch_add((wire::FRAME_HEADER_LEN + len) as u64, Ordering::Relaxed);
        let bytes = match answer(kind, &payload, state) {
            Ok(bytes) => bytes,
            Err((code, message)) => {
                if send_error_frame(stream, state, code, &message).is_err() {
                    return;
                }
                continue;
            }
        };
        state
            .metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        state.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
        if stream.write_all(&bytes).is_err() {
            return;
        }
    }
}

/// Decode, validate, and execute one request on the persistent pool,
/// returning the encoded OK reply or an error `(code, message)`.
fn answer(kind: u8, payload: &[u8], state: &Arc<ServerState>) -> Result<Vec<u8>, (u8, String)> {
    let request = Request::decode_payload(kind, payload)
        .map_err(|e| (wire::errcode::MALFORMED, e.to_string()))?;
    // Validate before spending engine time.
    let (pairs, query, r) = prepare(&state.engine, request, state.config.max_r)?;
    // Dispatch onto the persistent pool: connection threads do I/O,
    // pool workers do crypto. The channel observes completion; a
    // panicking worker drops the sender, which surfaces as a coded
    // internal error on this connection only.
    let (tx, rx) = mpsc::channel();
    let engine = Arc::clone(&state.engine);
    state.pool.submit(move || {
        let response = engine.search(&query, r);
        let _ = tx.send(wire::encode_ok_reply(&pairs, &response));
    });
    match rx.recv() {
        Ok(Ok(bytes)) => Ok(bytes),
        Ok(Err(WireError::TooLong { field, len, max })) => Err((
            wire::errcode::UNREPRESENTABLE,
            format!("response not representable: {field} holds {len} entries, wire carries {max}"),
        )),
        Ok(Err(e)) => Err((wire::errcode::UNREPRESENTABLE, e.to_string())),
        Err(_) => Err((
            wire::errcode::INTERNAL,
            "query worker failed; connection remains usable".to_string(),
        )),
    }
}

/// Turn a decoded request into the `(echo, query, r)` triple, rejecting
/// anything the engine should not be asked to do.
#[allow(clippy::type_complexity)]
fn prepare(
    engine: &SearchEngine,
    request: Request,
    max_r: usize,
) -> Result<(Vec<(TermId, u32)>, Query, usize), (u8, String)> {
    let (pairs, query, r) = match request {
        Request::Text { text, r } => {
            let query = engine.parse_query(&text);
            let pairs: Vec<(TermId, u32)> =
                query.terms.iter().map(|qt| (qt.term, qt.f_qt)).collect();
            (pairs, query, r)
        }
        Request::Terms { terms, r } => {
            let num_terms = engine.auth().index().num_terms() as TermId;
            for window in terms.windows(2) {
                if window[0].0 >= window[1].0 {
                    return Err((
                        wire::errcode::BAD_QUERY,
                        "query terms must be strictly ascending (no duplicates)".to_string(),
                    ));
                }
            }
            for &(t, f_qt) in &terms {
                if t >= num_terms {
                    return Err((
                        wire::errcode::BAD_QUERY,
                        format!("term {t} out of dictionary (m = {num_terms})"),
                    ));
                }
                if f_qt == 0 {
                    return Err((wire::errcode::BAD_QUERY, format!("term {t} has f_qt = 0")));
                }
            }
            let query = Query::from_term_pairs(engine.auth().index(), &terms);
            (terms, query, r)
        }
    };
    if query.is_empty() {
        return Err((
            wire::errcode::BAD_QUERY,
            "no query terms in dictionary".to_string(),
        ));
    }
    let r = r as usize;
    if r == 0 || r > max_r {
        return Err((
            wire::errcode::BAD_QUERY,
            format!("r = {r} outside the served range 1..={max_r}"),
        ));
    }
    Ok((pairs, query, r))
}

fn send_error_frame(
    mut stream: &TcpStream,
    state: &Arc<ServerState>,
    code: u8,
    message: &str,
) -> io::Result<()> {
    state.metrics.requests_err.fetch_add(1, Ordering::Relaxed);
    let bytes = wire::encode_err_reply(code, message)
        .expect("error replies are always representable (message truncated to u16)");
    state
        .metrics
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    stream.write_all(&bytes)
}

/// Fill `buf` completely, tolerating read-timeout ticks (re-checking
/// `shutdown` at each) and treating EOF *before the first byte* as a
/// clean close (`Ok(false)`). EOF mid-buffer is an error: the peer died
/// inside a frame.
fn read_full(mut stream: &TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(io::Error::other("server shutting down"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn test_engine(mechanism: Mechanism) -> (Arc<SearchEngine>, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            Arc::new(SearchEngine::new(publication.auth, corpus)),
            publication.verifier_params,
        )
    }

    fn roundtrip(stream: &mut TcpStream, request: &Request) -> wire::Reply {
        let bytes = request.encode_frame().unwrap();
        stream.write_all(&bytes).unwrap();
        read_reply(stream)
    }

    fn read_reply(stream: &mut TcpStream) -> wire::Reply {
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let (kind, len) = wire::decode_frame_header(&header).unwrap();
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        wire::decode_reply_payload(kind, &payload).unwrap()
    }

    #[test]
    fn server_answers_and_shuts_down_cleanly() {
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle =
            Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        assert!(handle.warmed().terms > 0, "startup warmed the term LRU");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper keep".into(),
                r: 3,
            },
        );
        let client = crate::Client::new(params);
        match reply {
            wire::Reply::Ok { terms, response } => {
                assert!(!terms.is_empty());
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.requests_err, 0);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn bad_requests_get_coded_errors_and_connection_survives() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let m = engine.auth().index().num_terms() as TermId;
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let cases: Vec<(Request, u8)> = vec![
            // Out-of-dictionary term.
            (
                Request::Terms {
                    terms: vec![(m + 5, 1)],
                    r: 3,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Duplicate terms.
            (
                Request::Terms {
                    terms: vec![(1, 1), (1, 1)],
                    r: 3,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Unsorted terms.
            (
                Request::Terms {
                    terms: vec![(3, 1), (1, 1)],
                    r: 3,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Zero query frequency.
            (
                Request::Terms {
                    terms: vec![(1, 0)],
                    r: 3,
                },
                wire::errcode::BAD_QUERY,
            ),
            // r outside the served range.
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: u32::MAX,
                },
                wire::errcode::BAD_QUERY,
            ),
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: 0,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Nothing survives dictionary parsing.
            (
                Request::Text {
                    text: "zzzz qqqq".into(),
                    r: 3,
                },
                wire::errcode::BAD_QUERY,
            ),
        ];
        let n_cases = cases.len() as u64;
        for (request, want_code) in cases {
            match roundtrip(&mut stream, &request) {
                wire::Reply::Err { code, .. } => assert_eq!(code, want_code, "{request:?}"),
                other => panic!("{request:?} → {other:?}"),
            }
        }
        // The same connection still serves a good query afterwards.
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("connection should have survived: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.requests_err, n_cases);
        assert_eq!(stats.requests_ok, 1);
    }

    #[test]
    fn malformed_frames_do_not_kill_the_server() {
        let (engine, _) = test_engine(Mechanism::TraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        // Garbage magic: server replies (or closes) without panicking.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink); // server closes after the error reply
        }
        // A frame advertising an over-cap payload is refused up front.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut header = [0u8; wire::FRAME_HEADER_LEN];
            header[..4].copy_from_slice(&wire::FRAME_MAGIC);
            header[4] = wire::WIRE_VERSION;
            header[5] = wire::kind::REQ_TEXT;
            header[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&header).unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        }
        // Mid-frame hangup: connection just ends.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let good = Request::Text {
                text: "night".into(),
                r: 1,
            }
            .encode_frame()
            .unwrap();
            stream.write_all(&good[..good.len() - 2]).unwrap();
            drop(stream);
        }
        // Unknown frame kind under a valid header: the frame boundary
        // is still known, so the server consumes the payload, answers a
        // coded error, and the SAME connection keeps working (forward
        // compatibility with future kinds).
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&wire::FRAME_MAGIC);
            frame.push(wire::WIRE_VERSION);
            frame.push(0x7f); // no such kind
            frame.extend_from_slice(&3u32.to_le_bytes());
            frame.extend_from_slice(&[1, 2, 3]);
            stream.write_all(&frame).unwrap();
            match read_reply(&mut stream) {
                wire::Reply::Err { code, .. } => assert_eq!(code, wire::errcode::MALFORMED),
                other => panic!("{other:?}"),
            }
            match roundtrip(
                &mut stream,
                &Request::Text {
                    text: "night keeper".into(),
                    r: 2,
                },
            ) {
                wire::Reply::Ok { .. } => {}
                other => panic!("unknown kind must not kill the connection: {other:?}"),
            }
        }
        // A fresh connection is served normally after all of the above.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("server should have survived: {other:?}"),
        }
        drop(stream);
        let stats = handle.shutdown();
        assert!(stats.requests_err >= 3);
        assert_eq!(stats.requests_ok, 2);
    }

    #[test]
    fn warm_start_is_config_driven() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let m = engine.auth().index().num_terms();
        // Explicitly disabled warming.
        let cold = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(0),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(cold.warmed(), WarmStats::default());
        cold.shutdown();
        engine.auth().clear_serve_cache();
        // Explicit k.
        let some = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(2),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(some.warmed().terms, 2);
        some.shutdown();
        engine.auth().clear_serve_cache();
        // Default: capacity-driven (toy dictionary is far below it).
        let auto =
            Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
        assert_eq!(auto.warmed().terms, m);
        auto.shutdown();
    }
}
