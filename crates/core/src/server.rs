//! Long-running authenticated search server over the wire protocol.
//!
//! The paper's model is a one-shot pipeline — owner builds, engine
//! answers one query, user verifies. This module is the deployment shape
//! of *Verifying Search Results Over Web Collections* (Goodrich et al.):
//! a continuously running, **untrusted** server answering verifiable
//! queries from many clients over TCP. The trust model is unchanged —
//! nothing the server sends is believed until the client's
//! [`verify`](mod@crate::verify) accepts it against the owner's public key —
//! the server is just the engine with a socket in front of it.
//!
//! ## Architecture
//!
//! * **Thread-per-connection acceptor**: a background acceptor thread
//!   takes connections off the listener and hands each its own OS
//!   thread, which owns the socket and does all framing I/O
//!   ([`crate::wire`]: versioned length-prefixed frames).
//! * **Persistent pool dispatch**: query execution is
//!   [`submit`](crate::pool::ThreadPool::submit)-ted onto the engine's
//!   persistent work-stealing pool
//!   ([`AuthenticatedIndex::serve_pool`](crate::AuthenticatedIndex::serve_pool)
//!   — the same workers the owner build spawned), so N connections
//!   share one executor instead of oversubscribing the machine, and a
//!   `threads = 1` deployment still runs the paper's sequential model
//!   with no thread spawned anywhere.
//! * **Warm start**: startup pre-warms the sharded structure LRUs with
//!   the top-df terms ([`ServerConfig::warm_top_k`],
//!   [`crate::AuthenticatedIndex::warm_cache`]) so the first wave of
//!   traffic doesn't stampede the caches with concurrent cold builds.
//! * **Per-connection error isolation**: malformed bytes, unserviceable
//!   queries, and even a panicking query worker produce a coded
//!   [`crate::wire::kind::REPLY_ERR`] frame (or at worst close that one
//!   connection) — attacker-controlled input never panics the process
//!   and never touches other connections.
//! * **Graceful shutdown**: [`ServerHandle::shutdown`] stops the
//!   acceptor, unblocks and joins every connection thread, and returns
//!   the final [`ServerMetricsSnapshot`].

use crate::auth::{boot_authenticated_index, AuthConfig, BootReport, BootSource};
use crate::cache::lock_recover;
use crate::engine::SearchEngine;
use crate::metrics::{ServerMetrics, ServerMetricsSnapshot};
use crate::pool::ThreadPool;
use crate::types::{Query, QueryMode};
use crate::wire::{self, Request, WireError};
use crate::WarmStats;
use authsearch_corpus::Corpus;
use authsearch_corpus::TermId;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Operational knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// How many top-df terms to pre-warm into the structure caches at
    /// startup. `None` (the default) is **`AuthConfig`-driven**: warm up
    /// to the term LRU's configured capacity
    /// ([`crate::AuthConfig::term_cache_capacity`]); `Some(0)` disables
    /// warming; `Some(k)` warms exactly `k` (clamped to capacity).
    pub warm_top_k: Option<usize>,
    /// Largest `r` a request may ask for; bigger requests get a
    /// [`crate::wire::errcode::BAD_QUERY`] reply instead of letting a
    /// remote peer size engine-side allocations.
    pub max_r: usize,
    /// Socket read poll interval: how long a connection thread blocks in
    /// `read` before re-checking the shutdown flag. Bounds shutdown
    /// latency for idle connections.
    pub poll_interval: Duration,
    /// Admission cap: the most connections served simultaneously
    /// (`0` = unlimited, the pre-PR-5 behavior). A connection accepted
    /// over the cap is **shed with an answer** — a
    /// [`crate::wire::errcode::BUSY`] reply frame, then a clean close —
    /// never a silent RST, so clients can back off and retry
    /// ([`crate::Connection::query_terms_retrying`]). The default reads
    /// `AUTHSEARCH_MAX_CONNECTIONS` (unset/`0` = unlimited), which is
    /// how CI runs the loopback suite in shedding mode.
    pub max_connections: usize,
    /// Idle deadline: a connection that receives **no byte** for this
    /// long — parked between requests, or dribbling a partial frame
    /// (the slow-loris shape) — is answered with a
    /// [`crate::wire::errcode::TIMEOUT`] frame and closed, releasing
    /// its thread. The clock restarts at every received byte **and**
    /// every written reply, so time the *server* spends computing an
    /// answer is never charged to the peer. `Duration::ZERO` disables
    /// the deadline (consistent with
    /// [`ServerConfig::max_connections`]'s `0` = unlimited). The
    /// default reads `AUTHSEARCH_IDLE_MS` (unset = 30 seconds).
    pub idle_deadline: Duration,
    /// Bound on writing one complete reply. This is a **total** budget
    /// for the frame, not a per-`write(2)` stall timeout: a peer
    /// trickling its reads just fast enough to keep individual writes
    /// "making progress" is the slow-loris attack moved to the write
    /// side, and it must not park the thread (or hang the graceful
    /// shutdown, which waits for in-flight replies to drain) any longer
    /// than a fully stalled one. A peer that exceeds it is dropped and
    /// counted as timed out (nothing can be *sent* through a clogged
    /// pipe). `Duration::ZERO` falls back to the 30-second default
    /// rather than disabling the bound.
    pub write_timeout: Duration,
    /// `TCP_NODELAY` on connection sockets (default on: request/reply
    /// frames are small, and Nagle batching just adds a delayed-ACK
    /// round trip to every exchange). Off exists for measurement —
    /// `bench_pr5` records the latency gap.
    pub nodelay: bool,
    /// Where [`Server::start_booted`] looks for (and heals) the
    /// authenticated snapshot
    /// ([`crate::AuthenticatedIndex::save_snapshot`]). `None` (the
    /// default) always builds fresh. A configured path that is missing,
    /// stale, or corrupt falls back to a fresh build — counted in
    /// [`ServerMetricsSnapshot::boot_fresh_builds`] — and the rebuilt
    /// artifact is written back so the next boot takes the fast path.
    pub snapshot_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            warm_top_k: None,
            max_r: 1024,
            poll_interval: Duration::from_millis(50),
            max_connections: env_usize("AUTHSEARCH_MAX_CONNECTIONS").unwrap_or(0),
            idle_deadline: env_usize("AUTHSEARCH_IDLE_MS")
                .map(|ms| Duration::from_millis(ms as u64))
                .unwrap_or(DEFAULT_IDLE_DEADLINE),
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            nodelay: true,
            snapshot_path: None,
        }
    }
}

/// Default [`ServerConfig::idle_deadline`].
pub const DEFAULT_IDLE_DEADLINE: Duration = Duration::from_secs(30);

/// Default [`ServerConfig::write_timeout`]; also substituted when the
/// configured value is zero (the write bound is what keeps a
/// non-draining peer from hanging graceful shutdown).
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Write `bytes` completely within a **total** budget of `bound`. The
/// socket's own write timeout caps any single stalled `write(2)`; the
/// elapsed check caps the sum, so a trickle-reading peer cannot stretch
/// one reply indefinitely by letting each call make token progress
/// (worst case ≈ `bound` plus one socket write timeout).
/// The write budget actually enforced: the configured value, or the
/// default when configured zero (never unbounded).
fn effective_write_timeout(config: &ServerConfig) -> Duration {
    if config.write_timeout.is_zero() {
        DEFAULT_WRITE_TIMEOUT
    } else {
        config.write_timeout
    }
}

fn write_all_bounded(mut stream: &TcpStream, bytes: &[u8], bound: Duration) -> io::Result<()> {
    let start = std::time::Instant::now();
    let mut written = 0;
    while written < bytes.len() {
        if start.elapsed() >= bound {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "peer not draining its replies",
            ));
        }
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0")),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read a `usize` environment override through the shared
/// [`crate::auth::parse_usize_env`] grammar, warning (once per process
/// *per variable* — a second malformed variable must not be masked by
/// the first one's warning) and ignoring the value when it does not
/// parse — a typo in a deployment manifest should surface in the logs,
/// not silently change admission behavior.
fn env_usize(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match crate::auth::parse_usize_env(name, &raw) {
        Ok(v) => Some(v),
        Err(why) => {
            static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());
            let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
            if !warned.iter().any(|n| n == name) {
                warned.push(name.to_string());
                eprintln!("warning: {why}; ignoring the override");
            }
            None
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
    warmed: WarmStats,
}

/// One live connection's registry slot: the monitoring socket clone
/// (for unblocking reads at shutdown) and the handler thread (for
/// joining; `None` briefly, between registration and spawn).
type ConnEntry = (TcpStream, Option<JoinHandle<()>>);

/// State shared by the acceptor and every connection thread.
struct ServerState {
    engine: Arc<SearchEngine>,
    pool: Arc<ThreadPool>,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    /// Live connections by id. Each handler removes its own entry as
    /// it exits, so an idle server holds no fds or join handles for
    /// past connections — the map's size tracks *live* connections
    /// only.
    connections: Mutex<std::collections::HashMap<u64, ConnEntry>>,
    /// Shed handshakes currently in flight (each owns a short-lived
    /// thread writing the BUSY frame); bounded by
    /// [`MAX_SHED_HANDSHAKES`] so a connect flood cannot turn the
    /// refusal path itself into a thread bomb.
    shedding: std::sync::atomic::AtomicU64,
}

/// The server front: binds, warms, and accepts.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), warm
    /// the caches per `config`, and start accepting in the background.
    /// Returns immediately; queries are served until
    /// [`ServerHandle::shutdown`] (or drop).
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<SearchEngine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Warm start: populate the sharded LRUs with the hot head of the
        // dictionary before the first connection lands.
        let warm_top_k = config
            .warm_top_k
            .unwrap_or(engine.auth().config().term_cache_capacity);
        let warmed = engine.auth().warm_cache(warm_top_k);
        let pool = engine.auth().serve_pool();
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServerState {
            engine,
            pool,
            config,
            metrics: ServerMetrics::default(),
            shutdown: Arc::clone(&shutdown),
            connections: Mutex::new(std::collections::HashMap::new()),
            shedding: std::sync::atomic::AtomicU64::new(0),
        });
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("authsearch-acceptor".into())
                .spawn(move || accept_loop(listener, state))?
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            state,
            warmed,
        })
    }

    /// Boot the engine's artifact through the snapshot decision tree
    /// ([`crate::auth::boot_authenticated_index`]) and start serving it.
    ///
    /// With [`ServerConfig::snapshot_path`] set and a valid snapshot on
    /// disk, the server is up in near-O(1) — load, verify the owner's
    /// signatures, serve — and `fallback` never runs. When the snapshot
    /// is unconfigured, missing, stale, or corrupt, `fallback` rebuilds
    /// the artifact (and the result is saved back, best effort). Either
    /// way the outcome is visible twice: in the returned
    /// [`BootReport`], and in the
    /// [`boot_snapshot_loads`](ServerMetricsSnapshot::boot_snapshot_loads) /
    /// [`boot_fresh_builds`](ServerMetricsSnapshot::boot_fresh_builds)
    /// counters.
    pub fn start_booted<A, F>(
        corpus: Corpus,
        expected: &AuthConfig,
        fallback: F,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<(ServerHandle, BootReport)>
    where
        A: ToSocketAddrs,
        F: FnOnce() -> crate::AuthenticatedIndex,
    {
        let (auth, report) =
            boot_authenticated_index(config.snapshot_path.as_deref(), expected, fallback);
        let engine = Arc::new(SearchEngine::new(auth, corpus));
        let handle = Server::start(engine, addr, config)?;
        let counter = match report.source {
            BootSource::Snapshot => &handle.state.metrics.boot_snapshot_loads,
            BootSource::FreshBuild => &handle.state.metrics.boot_fresh_builds,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok((handle, report))
    }
}

impl ServerHandle {
    /// The bound address (the ephemeral port when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup warming materialized.
    pub fn warmed(&self) -> WarmStats {
        self.warmed
    }

    /// Live counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.state.metrics.snapshot()
    }

    /// Stop accepting, unblock and join every connection thread, join
    /// the acceptor, and return the final counters. In-flight requests
    /// finish; idle connections are closed.
    pub fn shutdown(mut self) -> ServerMetricsSnapshot {
        self.shutdown_impl();
        self.state.metrics.snapshot()
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Fast-path wakeup for the acceptor; purely an optimization —
        // the nonblocking accept loop re-checks the flag every poll
        // interval regardless, so a failed connect (fd exhaustion)
        // cannot hang shutdown.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Graceful drain: close only the **read** side first. Blocked
        // readers wake with EOF (and the poll ticks observe the flag),
        // but a handler that already consumed a request keeps a working
        // write side, so its in-flight reply is delivered before the
        // join below — shutting down never swallows an answer the
        // server already owed.
        let connections = std::mem::take(&mut *lock_recover(&self.state.connections));
        for (stream, _) in connections.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, (stream, handle)) in connections {
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Accept until shutdown; one OS thread per connection. The listener
/// runs **nonblocking** with a poll interval, so shutdown can never
/// hang on a blocked `accept` — the throwaway self-connect in
/// [`ServerHandle::shutdown`] is only a fast path, not a correctness
/// requirement (it can fail under fd exhaustion, exactly when an
/// operator is most likely to be shutting the server down).
fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let _ = listener.set_nonblocking(true);
    let mut next_id = 0u64;
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // WouldBlock is the idle tick; any other error (e.g.
                // EMFILE under fd exhaustion) also waits out the poll
                // interval — retrying immediately would spin a full
                // core exactly when the host is resource-starved.
                std::thread::sleep(state.config.poll_interval);
                continue;
            }
        };
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        // The listener's nonblocking flag is inherited by accepted
        // sockets on some platforms; connection I/O must block (with a
        // read timeout) instead.
        let _ = stream.set_nonblocking(false);
        // Admission: at the cap, shed this connection with a typed BUSY
        // reply instead of parking another thread on it. The registry
        // holds live connections only (handlers self-prune on exit), so
        // its size *is* the live count.
        let live = lock_recover(&state.connections).len();
        if state.config.max_connections > 0 && live >= state.config.max_connections {
            shed_connection(stream, &state);
            continue;
        }
        state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let monitor = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let id = next_id;
        next_id += 1;
        // Register before spawning: the handler removes its own entry
        // when it exits, and removal of a not-yet-registered entry
        // would leak the monitor fd.
        {
            let mut connections = lock_recover(&state.connections);
            connections.insert(id, (monitor, None));
            state
                .metrics
                .active_highwater
                .fetch_max(connections.len() as u64, Ordering::Relaxed);
        }
        let spawned = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("authsearch-conn-{id}"))
                .spawn(move || handle_connection(stream, state, id))
        };
        let mut connections = lock_recover(&state.connections);
        match spawned {
            // The handler may already have finished and removed its
            // entry — only fill the slot if it is still present.
            Ok(handle) => {
                if let Some(entry) = connections.get_mut(&id) {
                    entry.1 = Some(handle);
                }
            }
            Err(_) => {
                connections.remove(&id);
            }
        }
    }
}

/// Most shed handshakes allowed in flight at once. Refusing a
/// connection politely takes a (short-lived) thread — writing the BUSY
/// frame, then draining briefly so closing with unread request bytes
/// does not turn into an RST that destroys the refusal in the peer's
/// receive buffer. Past this bound the server is under a connect flood
/// and sheds silently (drop), keeping the acceptor itself unblockable.
const MAX_SHED_HANDSHAKES: u64 = 64;

/// Refuse one over-cap connection: typed BUSY reply, FIN (not RST),
/// bounded drain, close. Runs on a detached short-lived thread so the
/// acceptor never blocks on a slow refused peer.
fn shed_connection(stream: TcpStream, state: &Arc<ServerState>) {
    state
        .metrics
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let inflight = state.shedding.fetch_add(1, Ordering::AcqRel);
    if inflight >= MAX_SHED_HANDSHAKES {
        // Connect flood: the polite path is saturated; dropping is the
        // only shed that cannot be weaponized against the acceptor.
        state.shedding.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let outer = Arc::clone(state);
    let state = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("authsearch-shed".into())
        .spawn(move || {
            let max = state.config.max_connections;
            let message = format!("server at capacity ({max} connections); retry with backoff");
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            if let Ok(bytes) = wire::encode_err_reply(wire::errcode::BUSY, &message) {
                if (&stream).write_all(&bytes).is_ok() {
                    state
                        .metrics
                        .bytes_out
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                }
            }
            // FIN first, then consume whatever request bytes are already
            // in our receive buffer: closing with unread data provokes
            // an RST on many stacks, which can wipe the BUSY frame out
            // of the peer's receive buffer before it is read. The drain
            // is bounded — a peer that keeps talking gets cut off.
            let _ = stream.shutdown(Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let mut sink = [0u8; 1024];
            for _ in 0..64 {
                match (&stream).read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            state.shedding.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        outer.shedding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Serve one connection, then close the underlying socket explicitly —
/// the acceptor holds a monitoring clone of it (for shutdown
/// unblocking), so dropping our handle alone would leave the peer
/// waiting on a connection that is already dead.
fn handle_connection(stream: TcpStream, state: Arc<ServerState>, id: u64) {
    connection_loop(&stream, &state);
    let _ = stream.shutdown(Shutdown::Both);
    // Self-prune: drop the monitor clone (and our registry slot) so an
    // idle server holds no resources for finished connections.
    lock_recover(&state.connections).remove(&id);
}

/// Why a [`read_full`] call stopped short of filling its buffer.
enum ReadAbort {
    /// EOF before the first byte: the peer closed cleanly between frames.
    CleanEof,
    /// No byte arrived within the idle deadline — the slow-loris shape
    /// (or a parked connection); the caller owes the peer a typed
    /// TIMEOUT reply before closing.
    IdleExpired,
    /// Server shutdown, mid-frame EOF, or a socket error; just close.
    Fatal,
}

/// Read frames and answer them until the peer hangs up, the bytes stop
/// making sense, the idle deadline expires, or the server shuts down.
/// Never panics on input.
fn connection_loop(stream: &TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(state.config.poll_interval));
    // The write bound is non-optional: a blocked `write` cannot be
    // interrupted, so without it one non-draining peer would hang the
    // graceful shutdown (which waits for in-flight replies). Zero falls
    // back to the default instead of meaning "unbounded".
    let write_timeout = effective_write_timeout(&state.config);
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(state.config.nodelay);
    // The idle clock restarts at every received byte, so a legitimately
    // slow sender is never evicted mid-frame for link speed — but
    // per-gap resets alone would let a peer *dribble* one byte per
    // almost-deadline and stretch a frame indefinitely, so read_full
    // additionally enforces a total per-buffer budget (frame_budget: a
    // minimum average byte rate). It also restarts at every written
    // reply (below), so server compute time is never charged to the
    // peer's idle budget.
    let mut last_byte = std::time::Instant::now();
    loop {
        // Frame header (tolerating read-timeout ticks between frames).
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        match read_full(stream, &mut header, state, &mut last_byte) {
            Ok(()) => {}
            Err(ReadAbort::CleanEof | ReadAbort::Fatal) => return,
            Err(ReadAbort::IdleExpired) => return evict_idle(stream, state),
        }
        // Lenient header parse: magic, version, and payload length must
        // check out (without them the frame boundary is unknowable and
        // the connection must drop), but an *unknown kind* still has a
        // trustworthy length — its payload is consumed below and
        // `answer` turns it into a coded error reply, keeping the
        // connection alive for forward compatibility.
        let (kind, len) = match wire::decode_frame_header_any(&header) {
            Ok(parsed) => parsed,
            Err(e) => {
                // Un-synchronizable: reply if possible, then drop the
                // connection (we can no longer find frame boundaries).
                let _ = send_error_frame(stream, state, wire::errcode::MALFORMED, &e.to_string());
                return;
            }
        };
        // Server-side request cap, far below the wire format's 64 MiB
        // frame cap (which replies legitimately need): the largest
        // encodable request is ~512 KiB of term pairs, so a bigger
        // declaration is either garbage or an attempt to size our
        // buffer — and consuming it would hand the dribble clock a
        // 64 Mi-byte frame to stretch. Refuse and drop.
        if len > MAX_REQUEST_PAYLOAD {
            let _ = send_error_frame(
                stream,
                state,
                wire::errcode::MALFORMED,
                &format!(
                    "request payload of {len} bytes exceeds the \
                     {MAX_REQUEST_PAYLOAD}-byte request cap"
                ),
            );
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full(stream, &mut payload, state, &mut last_byte) {
            Ok(()) => {}
            // Mid-frame EOF: the peer died inside a frame; just close.
            Err(ReadAbort::CleanEof | ReadAbort::Fatal) => return,
            Err(ReadAbort::IdleExpired) => return evict_idle(stream, state),
        }
        state
            .metrics
            .bytes_in
            .fetch_add((wire::FRAME_HEADER_LEN + len) as u64, Ordering::Relaxed);
        let bytes = match answer(kind, &payload, state) {
            Ok(bytes) => bytes,
            Err((code, message)) => {
                if send_error_frame(stream, state, code, &message).is_err() {
                    return;
                }
                // Serving the (failed) request consumed wall-clock the
                // peer has no control over; don't charge it as idleness.
                last_byte = std::time::Instant::now();
                continue;
            }
        };
        state
            .metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        state.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
        match write_all_bounded(stream, &bytes, write_timeout) {
            Ok(()) => {}
            Err(e) => {
                if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock {
                    // A non-draining peer is the write-side slow loris;
                    // count the eviction (no frame can tell it so — the
                    // pipe is the problem).
                    state
                        .metrics
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        // Restart the idle clock only after the reply has fully
        // drained: engine compute time AND our own (bounded) write time
        // are the server's wall-clock, not the peer's silence — its
        // next-request budget starts now.
        last_byte = std::time::Instant::now();
    }
}

/// Decode, validate, and execute one request on the persistent pool,
/// returning the encoded OK reply or an error `(code, message)`.
fn answer(kind: u8, payload: &[u8], state: &Arc<ServerState>) -> Result<Vec<u8>, (u8, String)> {
    let request = Request::decode_payload(kind, payload)
        .map_err(|e| (wire::errcode::MALFORMED, e.to_string()))?;
    // Validate before spending engine time.
    let (pairs, query, r, want_digests, mode) =
        prepare(&state.engine, request, state.config.max_r)?;
    // Digest mode is honored only for TNRA deployments: TRA
    // verification hashes the delivered result contents against the
    // signed document-MHT roots, so stripping them would turn every
    // honest TRA reply into a rejection. TNRA verification never reads
    // them, so the verdict is unchanged (the falls-back-to-full-echo
    // contract the client handles).
    let digest_mode = want_digests && !state.engine.auth().config().mechanism.is_tra();
    // Dispatch onto the persistent pool: connection threads do I/O,
    // pool workers do crypto. The channel observes completion; a
    // panicking worker drops the sender, which surfaces as a coded
    // internal error on this connection only.
    let (tx, rx) = mpsc::channel();
    let engine = Arc::clone(&state.engine);
    state.pool.submit(move || {
        let response = match mode {
            QueryMode::Disjunctive => engine.search(&query, r),
            QueryMode::Conjunctive => engine.search_conjunctive(&query, r),
        };
        let bytes = if digest_mode {
            wire::encode_ok_digest_reply(&pairs, &response)
        } else {
            wire::encode_ok_reply(&pairs, &response)
        };
        let _ = tx.send(bytes);
    });
    match rx.recv() {
        Ok(Ok(bytes)) => Ok(bytes),
        Ok(Err(WireError::TooLong { field, len, max })) => Err((
            wire::errcode::UNREPRESENTABLE,
            format!("response not representable: {field} holds {len} entries, wire carries {max}"),
        )),
        Ok(Err(e)) => Err((wire::errcode::UNREPRESENTABLE, e.to_string())),
        Err(_) => Err((
            wire::errcode::INTERNAL,
            "query worker failed; connection remains usable".to_string(),
        )),
    }
}

/// Validate one `(term, f_qt)`-pairs request body (shared by the
/// disjunctive and conjunctive kinds): strictly ascending distinct
/// terms, all in dictionary, no zero query frequencies.
fn validate_term_pairs(engine: &SearchEngine, terms: &[(TermId, u32)]) -> Result<(), (u8, String)> {
    let num_terms = engine.auth().index().num_terms() as TermId;
    for window in terms.windows(2) {
        if window[0].0 >= window[1].0 {
            return Err((
                wire::errcode::BAD_QUERY,
                "query terms must be strictly ascending (no duplicates)".to_string(),
            ));
        }
    }
    for &(t, f_qt) in terms {
        if t >= num_terms {
            return Err((
                wire::errcode::BAD_QUERY,
                format!("term {t} out of dictionary (m = {num_terms})"),
            ));
        }
        if f_qt == 0 {
            return Err((wire::errcode::BAD_QUERY, format!("term {t} has f_qt = 0")));
        }
    }
    Ok(())
}

/// Turn a decoded request into the `(echo, query, r, want_digests,
/// mode)` tuple, rejecting anything the engine should not be asked to
/// do.
#[allow(clippy::type_complexity)]
fn prepare(
    engine: &SearchEngine,
    request: Request,
    max_r: usize,
) -> Result<(Vec<(TermId, u32)>, Query, usize, bool, QueryMode), (u8, String)> {
    let (pairs, query, r, want_digests, mode) = match request {
        Request::Text {
            text,
            r,
            want_digests,
        } => {
            let query = engine.parse_query(&text).query;
            let pairs: Vec<(TermId, u32)> =
                query.terms.iter().map(|qt| (qt.term, qt.f_qt)).collect();
            (pairs, query, r, want_digests, QueryMode::Disjunctive)
        }
        Request::Terms {
            terms,
            r,
            want_digests,
        } => {
            validate_term_pairs(engine, &terms)?;
            let query = Query::from_term_pairs(engine.auth().index(), &terms);
            (terms, query, r, want_digests, QueryMode::Disjunctive)
        }
        Request::ConjunctiveTerms {
            terms,
            r,
            want_digests,
        } => {
            validate_term_pairs(engine, &terms)?;
            let query = Query::from_term_pairs(engine.auth().index(), &terms);
            (terms, query, r, want_digests, QueryMode::Conjunctive)
        }
    };
    if query.is_empty() {
        return Err((
            wire::errcode::BAD_QUERY,
            "no query terms in dictionary".to_string(),
        ));
    }
    let r = r as usize;
    if r == 0 || r > max_r {
        return Err((
            wire::errcode::BAD_QUERY,
            format!("r = {r} outside the served range 1..={max_r}"),
        ));
    }
    Ok((pairs, query, r, want_digests, mode))
}

fn send_error_frame(
    mut stream: &TcpStream,
    state: &Arc<ServerState>,
    code: u8,
    message: &str,
) -> io::Result<()> {
    state.metrics.requests_err.fetch_add(1, Ordering::Relaxed);
    let bytes = wire::encode_err_reply(code, message)
        .expect("error replies are always representable (message truncated to u16)");
    state
        .metrics
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    stream.write_all(&bytes)
}

/// Largest request payload the server will buffer. Well above the
/// largest encodable request (u16-capped term pairs ≈ 512 KiB) and far
/// below the wire format's [`wire::MAX_FRAME_PAYLOAD`], which exists
/// for *replies*.
pub const MAX_REQUEST_PAYLOAD: usize = 1 << 20;

/// Minimum average inbound byte rate a mid-frame peer must sustain.
/// Together with the per-gap idle deadline this bounds how long one
/// frame can be stretched: a dribbler sending one byte per
/// almost-deadline stays under the gap check but blows the total
/// budget ([`frame_budget`]).
const MIN_FRAME_BYTES_PER_SEC: u64 = 1024;

/// Total time allowed to fill one `len`-byte buffer: one full idle gap
/// (the wait for the first byte) plus the minimum-rate allowance for
/// the bytes themselves. For the 10-byte header this is ≈ the idle
/// deadline + 1 s; for a cap-sized request ≈ deadline + 17 min — long
/// enough for any honest link, finite for every dribbler.
fn frame_budget(idle_deadline: Duration, len: usize) -> Duration {
    idle_deadline + Duration::from_secs(len as u64 / MIN_FRAME_BYTES_PER_SEC + 1)
}

/// Fill `buf` completely, tolerating read-timeout ticks. At every tick
/// the shutdown flag, the per-gap idle deadline, and the total
/// [`frame_budget`] are re-checked — a peer that has sent nothing for
/// [`ServerConfig::idle_deadline`], or is dribbling below the minimum
/// frame rate, is reported as [`ReadAbort::IdleExpired`] so the caller
/// can answer it with a typed TIMEOUT frame instead of holding the
/// thread forever (the slow-loris fix, both the silent and the
/// trickling variant). `last_byte` restarts at every received byte.
fn read_full(
    mut stream: &TcpStream,
    buf: &mut [u8],
    state: &Arc<ServerState>,
    last_byte: &mut std::time::Instant,
) -> Result<(), ReadAbort> {
    let started = std::time::Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    ReadAbort::CleanEof
                } else {
                    ReadAbort::Fatal // peer closed mid-frame
                });
            }
            Ok(n) => {
                filled += n;
                *last_byte = std::time::Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutdown.load(Ordering::Acquire) {
                    return Err(ReadAbort::Fatal);
                }
                // A zero deadline disables eviction (0 = unlimited,
                // like `max_connections`), not "evict instantly".
                let deadline = state.config.idle_deadline;
                if !deadline.is_zero()
                    && (last_byte.elapsed() >= deadline
                        || started.elapsed() >= frame_budget(deadline, buf.len()))
                {
                    return Err(ReadAbort::IdleExpired);
                }
            }
            Err(_) => return Err(ReadAbort::Fatal),
        }
    }
    Ok(())
}

/// Evict a peer that outlived the idle deadline: typed TIMEOUT reply
/// (best effort — the write side has its own timeout), then the caller
/// closes the socket. Shed with an answer, never a silent RST. Counted
/// as a timed-out *connection*, not a request error — no request was
/// ever completed.
fn evict_idle(mut stream: &TcpStream, state: &Arc<ServerState>) {
    state
        .metrics
        .connections_timed_out
        .fetch_add(1, Ordering::Relaxed);
    let deadline = state.config.idle_deadline;
    let bytes = wire::encode_err_reply(
        wire::errcode::TIMEOUT,
        &format!("connection idle past the {deadline:?} deadline; reconnect to continue"),
    )
    .expect("error replies are always representable");
    if stream.write_all(&bytes).is_ok() {
        state
            .metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn test_engine(mechanism: Mechanism) -> (Arc<SearchEngine>, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            Arc::new(SearchEngine::new(publication.auth, corpus)),
            publication.verifier_params,
        )
    }

    fn roundtrip(stream: &mut TcpStream, request: &Request) -> wire::Reply {
        let bytes = request.encode_frame().unwrap();
        stream.write_all(&bytes).unwrap();
        read_reply(stream)
    }

    fn read_reply(stream: &mut TcpStream) -> wire::Reply {
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let (kind, len) = wire::decode_frame_header(&header).unwrap();
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        wire::decode_reply_payload(kind, &payload).unwrap()
    }

    #[test]
    fn server_answers_and_shuts_down_cleanly() {
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle =
            Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        assert!(handle.warmed().terms > 0, "startup warmed the term LRU");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper keep".into(),
                r: 3,
                want_digests: false,
            },
        );
        let client = crate::Client::new(params);
        match reply {
            wire::Reply::Ok { terms, response } => {
                assert!(!terms.is_empty());
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.requests_err, 0);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn bad_requests_get_coded_errors_and_connection_survives() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let m = engine.auth().index().num_terms() as TermId;
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let cases: Vec<(Request, u8)> = vec![
            // Out-of-dictionary term.
            (
                Request::Terms {
                    terms: vec![(m + 5, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Duplicate terms.
            (
                Request::Terms {
                    terms: vec![(1, 1), (1, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Unsorted terms.
            (
                Request::Terms {
                    terms: vec![(3, 1), (1, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Zero query frequency.
            (
                Request::Terms {
                    terms: vec![(1, 0)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // r outside the served range.
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: u32::MAX,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: 0,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Nothing survives dictionary parsing.
            (
                Request::Text {
                    text: "zzzz qqqq".into(),
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
        ];
        let n_cases = cases.len() as u64;
        for (request, want_code) in cases {
            match roundtrip(&mut stream, &request) {
                wire::Reply::Err { code, .. } => assert_eq!(code, want_code, "{request:?}"),
                other => panic!("{request:?} → {other:?}"),
            }
        }
        // The same connection still serves a good query afterwards.
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("connection should have survived: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.requests_err, n_cases);
        assert_eq!(stats.requests_ok, 1);
    }

    #[test]
    fn malformed_frames_do_not_kill_the_server() {
        let (engine, _) = test_engine(Mechanism::TraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        // Garbage magic: server replies (or closes) without panicking.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink); // server closes after the error reply
        }
        // A frame advertising an over-cap payload is refused up front.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut header = [0u8; wire::FRAME_HEADER_LEN];
            header[..4].copy_from_slice(&wire::FRAME_MAGIC);
            header[4] = wire::WIRE_VERSION;
            header[5] = wire::kind::REQ_TEXT;
            header[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&header).unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        }
        // Mid-frame hangup: connection just ends.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let good = Request::Text {
                text: "night".into(),
                r: 1,
                want_digests: false,
            }
            .encode_frame()
            .unwrap();
            stream.write_all(&good[..good.len() - 2]).unwrap();
            drop(stream);
        }
        // Unknown frame kind under a valid header: the frame boundary
        // is still known, so the server consumes the payload, answers a
        // coded error, and the SAME connection keeps working (forward
        // compatibility with future kinds).
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&wire::FRAME_MAGIC);
            frame.push(wire::WIRE_VERSION);
            frame.push(0x7f); // no such kind
            frame.extend_from_slice(&3u32.to_le_bytes());
            frame.extend_from_slice(&[1, 2, 3]);
            stream.write_all(&frame).unwrap();
            match read_reply(&mut stream) {
                wire::Reply::Err { code, .. } => assert_eq!(code, wire::errcode::MALFORMED),
                other => panic!("{other:?}"),
            }
            match roundtrip(
                &mut stream,
                &Request::Text {
                    text: "night keeper".into(),
                    r: 2,
                    want_digests: false,
                },
            ) {
                wire::Reply::Ok { .. } => {}
                other => panic!("unknown kind must not kill the connection: {other:?}"),
            }
        }
        // A fresh connection is served normally after all of the above.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("server should have survived: {other:?}"),
        }
        drop(stream);
        let stats = handle.shutdown();
        assert!(stats.requests_err >= 3);
        assert_eq!(stats.requests_ok, 2);
    }

    #[test]
    fn env_override_values_parse_strictly() {
        let parse = |raw| crate::auth::parse_usize_env("AUTHSEARCH_MAX_CONNECTIONS", raw);
        assert_eq!(parse("2"), Ok(2));
        assert_eq!(parse(" 16 "), Ok(16));
        assert_eq!(parse("0"), Ok(0));
        for bad in ["", "   ", "two", "-3"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("AUTHSEARCH_MAX_CONNECTIONS"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn over_cap_connection_is_shed_with_typed_busy() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Admit A (the completed roundtrip proves it is registered).
        let mut a = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(
            &mut a,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("admitted connection must serve: {other:?}"),
        }
        // B lands over the cap: a typed BUSY frame, then close — the
        // refusal arrives unprompted, before B sends a single byte.
        let mut b = TcpStream::connect(handle.addr()).unwrap();
        match read_reply(&mut b) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::BUSY);
                assert!(message.contains("capacity"), "{message}");
            }
            other => panic!("expected BUSY, got {other:?}"),
        }
        let mut rest = Vec::new();
        let _ = b.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing after the BUSY frame");
        // A is unaffected by the shed.
        match roundtrip(
            &mut a,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("shedding must not disturb admitted peers: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1, "only A was admitted");
        assert_eq!(stats.connections_shed, 1);
        assert_eq!(stats.active_highwater, 1);
        assert_eq!(stats.requests_ok, 2);
    }

    #[test]
    fn slow_loris_peer_evicted_by_idle_deadline() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::from_millis(250),
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Three bytes of a valid header, then silence — the classic
        // slow-loris shape that used to park a server thread forever.
        stream.write_all(&wire::FRAME_MAGIC[..3]).unwrap();
        let start = std::time::Instant::now();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::TIMEOUT);
                assert!(message.contains("idle"), "{message}");
            }
            other => panic!("expected TIMEOUT, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "eviction must happen within the deadline, not hang"
        );
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "connection closed after the eviction");
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 1);
        assert_eq!(stats.requests_err, 0, "an eviction is not a request error");
    }

    #[test]
    fn dribbling_peer_is_evicted_by_the_frame_budget() {
        // One byte every 100ms stays under the 200ms per-gap deadline
        // forever — the trickling slow loris. The total frame budget
        // (deadline + len/rate) must evict it anyway.
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::from_millis(200),
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // A valid header declaring a 600-byte payload: budget ≈ 1.2s.
        let header = wire::encode_frame_header(wire::kind::REQ_TEXT, 600).unwrap();
        stream.write_all(&header).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let dribbler = std::thread::spawn(move || {
            for _ in 0..60 {
                if writer.write_all(&[0u8]).is_err() {
                    break; // server evicted us
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let start = std::time::Instant::now();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, .. } => assert_eq!(code, wire::errcode::TIMEOUT),
            other => panic!("expected TIMEOUT, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the frame budget must bound the dribble, took {:?}",
            start.elapsed()
        );
        dribbler.join().unwrap();
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 1);
    }

    #[test]
    fn oversized_request_declaration_is_refused() {
        // 64 MiB frames exist for replies; a *request* claiming more
        // than MAX_REQUEST_PAYLOAD is refused before any buffering (it
        // would otherwise size our allocation and feed the dribble
        // clock a multi-megabyte frame to stretch).
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let header = wire::encode_frame_header(wire::kind::REQ_TERMS, MAX_REQUEST_PAYLOAD + 1)
            .expect("within the wire frame cap");
        stream.write_all(&header).unwrap();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::MALFORMED);
                assert!(message.contains("request cap"), "{message}");
            }
            other => panic!("expected MALFORMED, got {other:?}"),
        }
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "connection dropped after the refusal");
        handle.shutdown();
    }

    #[test]
    fn zero_idle_deadline_disables_eviction() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::ZERO,
                poll_interval: Duration::from_millis(10),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Sit silent across many poll ticks; a zero deadline must mean
        // "never evict", not "evict at the first tick".
        std::thread::sleep(Duration::from_millis(120));
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("idle connection must survive: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 0);
    }

    #[test]
    fn shutdown_drains_in_flight_reply() {
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle =
            Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let request = Request::Text {
            text: "night keeper keep".into(),
            r: 3,
            want_digests: false,
        };
        stream.write_all(&request.encode_frame().unwrap()).unwrap();
        // Give the connection thread time to consume the frame, then
        // shut down while the reply may still be in flight: the drain
        // contract says a request the server accepted is answered.
        std::thread::sleep(Duration::from_millis(150));
        let stats = handle.shutdown();
        assert_eq!(stats.requests_ok, 1, "the in-flight request completed");
        match read_reply(&mut stream) {
            wire::Reply::Ok { terms, response } => {
                let client = crate::Client::new(params);
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("drained reply expected, got {other:?}"),
        }
    }

    #[test]
    fn digest_mode_negotiated_for_tnra_only() {
        // TNRA: the flag is honored — OkDigest with empty contents.
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let request = Request::Text {
            text: "night keeper keep".into(),
            r: 3,
            want_digests: true,
        };
        match roundtrip(&mut stream, &request) {
            wire::Reply::OkDigest {
                terms,
                response,
                digests,
            } => {
                assert!(response.contents.is_empty());
                assert_eq!(digests.len(), response.result.entries.len());
                let client = crate::Client::new(params);
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("expected OkDigest, got {other:?}"),
        }
        handle.shutdown();
        // TRA: verification hashes delivered contents, so the server
        // falls back to the full echo rather than break every verdict.
        let (engine, _) = test_engine(Mechanism::TraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(&mut stream, &request) {
            wire::Reply::Ok { response, .. } => assert!(!response.contents.is_empty()),
            other => panic!("TRA must fall back to the full echo, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn warm_start_is_config_driven() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let m = engine.auth().index().num_terms();
        // Explicitly disabled warming.
        let cold = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(0),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(cold.warmed(), WarmStats::default());
        cold.shutdown();
        engine.auth().clear_serve_cache();
        // Explicit k.
        let some = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(2),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(some.warmed().terms, 2);
        some.shutdown();
        engine.auth().clear_serve_cache();
        // Default: capacity-driven (toy dictionary is far below it).
        let auto =
            Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
        assert_eq!(auto.warmed().terms, m);
        auto.shutdown();
    }
}
