//! Per-connection state machine for the reactor core.
//!
//! One [`Conn`] owns everything about a connection except the event
//! loop itself: the partially-read request frame, the partially-written
//! reply, the idle/budget/write deadlines, and the metric accounting.
//! It is **stream-generic** (any [`ConnStream`]) so every partial-read
//! and partial-write path is unit-tested here against scripted
//! in-memory streams, one byte at a time, without a socket in sight —
//! the reactor core then drives the exact same code over nonblocking
//! `TcpStream`s.
//!
//! The state graph:
//!
//! ```text
//! ReadingHeader → ReadingPayload → Dispatched → Writing ─┐
//!       ↑                                                │
//!       └──────────────── (reply flushed) ───────────────┘
//! ```
//!
//! with `Writing` also reachable directly for error replies, idle
//! evictions, and BUSY sheds (which continue to `ShedDraining` instead
//! of back to `ReadingHeader`).
//!
//! Every counter side effect replicates the threaded core's order
//! exactly (count-before-write for replies and error frames,
//! count-on-flush for eviction/BUSY frames), which is what lets the
//! parity suite assert byte-identical [`ServerMetrics`] snapshots
//! across the two cores. This module handles attacker-controlled bytes
//! and is on authlint's untrusted list: no panics, no slice indexing.

use super::{frame_budget, oversize_message, MAX_REQUEST_PAYLOAD};
use crate::metrics::{ServerMetrics, TransportStats};
use crate::wire;
use std::io::{self, IoSlice};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// The slice of a stream the state machine needs: nonblocking reads,
/// vectored nonblocking writes, and a half-close for the shed path.
/// `WouldBlock` from any of these parks the state machine until the
/// reactor reports readiness again.
pub(crate) trait ConnStream {
    /// Read into `buf`, returning 0 at EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write from `bufs` (gather), returning how many bytes left.
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize>;
    /// Send FIN; reads may continue.
    fn shutdown_write(&mut self) -> io::Result<()>;
}

impl ConnStream for std::net::TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        io::Write::write_vectored(self, bufs)
    }
    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

/// Deadlines and counter sinks the state machine charges against;
/// borrowed per call so tests can drive a [`Conn`] with nothing but
/// default-constructed metrics.
pub(crate) struct ConnEnv<'a> {
    /// Request/reply counters (the cross-core parity surface).
    pub metrics: &'a ServerMetrics,
    /// Syscall counters (diagnostics; intentionally per-core).
    pub transport: &'a TransportStats,
    /// Per-gap idle deadline; zero disables read-side eviction.
    pub idle_deadline: Duration,
    /// Total budget for flushing one reply (already defaulted — never
    /// zero).
    pub write_timeout: Duration,
}

/// What became of a reply once it is fully flushed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AfterWrite {
    /// Normal reply: back to `ReadingHeader` for the next request.
    NextRequest,
    /// Terminal reply (header garbage, oversize declaration, idle
    /// eviction): close the connection.
    Close,
    /// BUSY shed: FIN, then drain briefly so the refusal survives in
    /// the peer's receive buffer instead of being wiped by an RST.
    ShedDrain,
}

/// Where the connection is in its request/reply cycle.
enum State {
    /// Accumulating the 10-byte frame header.
    ReadingHeader,
    /// Header parsed; accumulating `payload.len()` payload bytes.
    ReadingPayload {
        /// Request frame kind (possibly unknown — resolved after the
        /// payload is consumed, keeping the connection alive for
        /// forward compatibility).
        kind: u8,
    },
    /// A full request is on a pool worker; no deadline runs (server
    /// compute time is never charged to the peer) and no bytes are
    /// read (requests are served one at a time, like the threaded
    /// core).
    Dispatched,
    /// Flushing `reply_head` + `reply_body` through vectored writes.
    Writing {
        /// Next state once flushed.
        after: AfterWrite,
        /// Total flush budget for this frame.
        bound: Duration,
        /// Whether a blown write budget counts as a timed-out
        /// connection (true only for OK replies, mirroring the
        /// threaded core).
        count_timeout_on_stall: bool,
        /// `bytes_out` to add only once the frame fully flushes
        /// (eviction and BUSY frames; zero for frames already counted
        /// up front).
        count_bytes_on_flush: u64,
    },
    /// BUSY flushed and FIN sent; consuming request bytes the peer
    /// already sent (bounded) before closing.
    ShedDraining,
    /// Terminal.
    Closed,
}

/// What the caller must do after handing the state machine an event.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Nothing actionable; re-derive interest and deadline and wait.
    Idle,
    /// A complete request frame is buffered ([`Conn::request`]); decode
    /// it, then either [`Conn::begin_error_reply`] or
    /// [`Conn::begin_dispatch`] + submit to the pool.
    Frame {
        /// The request frame's kind byte.
        kind: u8,
    },
    /// Close the connection and drop the [`Conn`]. All accounting is
    /// already done.
    Close,
}

/// An encoded reply frame ready to write — the fixed header array plus
/// the payload bytes — or the [`wire::WireError`] the encode step hit.
pub(crate) type EncodedReply = Result<([u8; wire::FRAME_HEADER_LEN], Vec<u8>), wire::WireError>;

/// Readiness interest the reactor should register for the current
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Want {
    /// Wait for readable.
    Read,
    /// Wait for writable.
    Write,
    /// No events wanted (dispatched to the pool; completion arrives via
    /// the waker, and peer-close is deliberately ignored until then so
    /// `requests_ok` stays identical to the threaded core, which also
    /// finishes computing before discovering the peer died).
    None,
}

/// How many `read` calls the shed drain will make before giving up on
/// a peer that keeps talking (mirrors the threaded core's bounded
/// drain loop).
const SHED_DRAIN_MAX_READS: u32 = 64;

/// How long the shed drain waits for the peer's next byte (or close)
/// before closing anyway (mirrors the threaded core's 100 ms drain
/// read timeout).
const SHED_DRAIN_GAP: Duration = Duration::from_millis(100);

/// One connection's complete transport state. Buffers are reused
/// across requests: the payload buffer grows to the largest request
/// seen and stays; the reply-body buffer makes a round trip through
/// the pool worker (moved into the job, returned in the completion) so
/// steady-state serving allocates nothing per reply.
pub(crate) struct Conn<S> {
    stream: S,
    state: State,
    /// Request frame header accumulator.
    hdr: [u8; wire::FRAME_HEADER_LEN],
    hdr_filled: usize,
    /// Request payload accumulator (sized to the declared length).
    payload: Vec<u8>,
    payload_filled: usize,
    /// Reply frame header (encoded once, written alongside the body).
    reply_head: [u8; wire::FRAME_HEADER_LEN],
    head_written: usize,
    /// Reply body; recycled through pool jobs.
    reply_body: Vec<u8>,
    body_written: usize,
    /// Last byte received from (or reply flushed to) the peer — the
    /// idle clock.
    last_byte: Instant,
    /// When the current frame's accumulation began — the total-budget
    /// clock that bounds dribblers.
    frame_start: Instant,
    /// When the current reply's flush began.
    write_start: Instant,
    /// Shed-drain read counter.
    drain_reads: u32,
    /// Timer-wheel generation owned by the reactor core: a fired wheel
    /// entry with a stale epoch is ignored (the cheap way to "cancel"
    /// timers when the state machine moves on).
    pub(crate) timer_epoch: u64,
}

impl<S: ConnStream> Conn<S> {
    /// A freshly admitted connection, waiting for its first header.
    pub(crate) fn new(stream: S, now: Instant) -> Conn<S> {
        Conn {
            stream,
            state: State::ReadingHeader,
            hdr: [0u8; wire::FRAME_HEADER_LEN],
            hdr_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            reply_head: [0u8; wire::FRAME_HEADER_LEN],
            head_written: 0,
            reply_body: Vec::new(),
            body_written: 0,
            last_byte: now,
            frame_start: now,
            write_start: now,
            drain_reads: 0,
            timer_epoch: 0,
        }
    }

    /// An over-cap connection being refused: starts life mid-`Writing`
    /// a BUSY frame, then FIN + drain + close. `bytes_out` is counted
    /// only if the frame fully flushes; `connections_shed` is the
    /// caller's (it counts silent sheds too).
    pub(crate) fn new_shed(stream: S, message: &str, now: Instant) -> Conn<S> {
        let mut conn = Conn::new(stream, now);
        let mut body = std::mem::take(&mut conn.reply_body);
        let framed = wire::encode_err_reply_payload(wire::errcode::BUSY, message, &mut body)
            .and_then(|kind| wire::encode_frame_header(kind, body.len()));
        conn.reply_body = body;
        match framed {
            Ok(head) => {
                let frame_len = (head.len() + conn.reply_body.len()) as u64;
                conn.reply_head = head;
                conn.head_written = 0;
                conn.body_written = 0;
                conn.write_start = now;
                conn.state = State::Writing {
                    after: AfterWrite::ShedDrain,
                    // Mirrors the threaded shed path's 500 ms write
                    // timeout: a refusal is not worth a long wait.
                    bound: Duration::from_millis(500),
                    count_timeout_on_stall: false,
                    count_bytes_on_flush: frame_len,
                };
            }
            // Error replies are always encodable (messages are
            // truncated to u16); if not, shed silently.
            Err(_) => conn.state = State::Closed,
        }
        conn
    }

    /// The readiness interest this state wants.
    pub(crate) fn want(&self) -> Want {
        match self.state {
            State::ReadingHeader | State::ReadingPayload { .. } | State::ShedDraining => Want::Read,
            State::Writing { .. } => Want::Write,
            State::Dispatched | State::Closed => Want::None,
        }
    }

    /// Whether the connection is parked on a pool worker.
    pub(crate) fn is_dispatched(&self) -> bool {
        matches!(self.state, State::Dispatched)
    }

    /// Whether the connection is flushing a reply.
    pub(crate) fn is_writing(&self) -> bool {
        matches!(self.state, State::Writing { .. })
    }

    /// Whether this is a shed handshake (BUSY flush or drain) rather
    /// than an admitted connection.
    #[cfg(test)]
    fn is_shedding(&self) -> bool {
        matches!(self.state, State::ShedDraining)
            || matches!(
                self.state,
                State::Writing {
                    after: AfterWrite::ShedDrain,
                    ..
                }
            )
    }

    /// The complete request frame payload (valid when the last step
    /// returned [`Step::Frame`]).
    pub(crate) fn request(&self) -> &[u8] {
        self.payload.get(..self.payload_filled).unwrap_or(&[])
    }

    /// Take the reply-body buffer for a pool job to encode into; it
    /// comes back through the completion and
    /// [`Conn::begin_ok_reply`], closing the reuse loop.
    pub(crate) fn take_reply_buf(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.reply_body)
    }

    /// When the state machine next needs the clock, if ever: the idle
    /// gap or total frame budget while reading, the flush bound while
    /// writing, the drain gap while shedding. `None` while dispatched
    /// (server compute time is the server's problem) and, for reads,
    /// when the idle deadline is disabled.
    pub(crate) fn deadline(&self, env: &ConnEnv<'_>) -> Option<Instant> {
        match &self.state {
            State::ReadingHeader => self.read_deadline(env, wire::FRAME_HEADER_LEN),
            State::ReadingPayload { .. } => self.read_deadline(env, self.payload.len()),
            State::Dispatched | State::Closed => None,
            State::Writing { bound, .. } => self.write_start.checked_add(*bound),
            State::ShedDraining => self.last_byte.checked_add(SHED_DRAIN_GAP),
        }
    }

    fn read_deadline(&self, env: &ConnEnv<'_>, buf_len: usize) -> Option<Instant> {
        if env.idle_deadline.is_zero() {
            return None;
        }
        let gap = self.last_byte.checked_add(env.idle_deadline)?;
        let total = self
            .frame_start
            .checked_add(frame_budget(env.idle_deadline, buf_len))?;
        Some(gap.min(total))
    }

    /// The peer is readable: pull bytes until the socket runs dry, a
    /// full frame lands, or the connection ends.
    pub(crate) fn on_readable(&mut self, env: &ConnEnv<'_>) -> Step {
        loop {
            match self.state {
                State::ReadingHeader => {
                    let filled = self.hdr_filled;
                    let was_empty = filled == 0;
                    env.transport.reads.fetch_add(1, Ordering::Relaxed);
                    let read = {
                        let buf = self.hdr.get_mut(filled..).unwrap_or(&mut []);
                        self.stream.read(buf)
                    };
                    match read {
                        Ok(0) => {
                            // EOF between frames is a clean goodbye;
                            // EOF mid-header is a peer dying — either
                            // way, just close (parity: no counters).
                            let _ = was_empty;
                            return Step::Close;
                        }
                        Ok(n) => {
                            self.hdr_filled += n;
                            self.last_byte = Instant::now();
                            if self.hdr_filled >= wire::FRAME_HEADER_LEN {
                                if let Some(step) = self.header_complete(env) {
                                    return step;
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Idle,
                        Err(_) => return Step::Close,
                    }
                }
                State::ReadingPayload { kind } => {
                    let filled = self.payload_filled;
                    env.transport.reads.fetch_add(1, Ordering::Relaxed);
                    let read = {
                        let buf = self.payload.get_mut(filled..).unwrap_or(&mut []);
                        self.stream.read(buf)
                    };
                    match read {
                        // Peer died mid-frame; close silently.
                        Ok(0) => return Step::Close,
                        Ok(n) => {
                            self.payload_filled += n;
                            self.last_byte = Instant::now();
                            if self.payload_filled >= self.payload.len() {
                                return self.frame_complete(env, kind);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Idle,
                        Err(_) => return Step::Close,
                    }
                }
                State::ShedDraining => {
                    let mut sink = [0u8; 1024];
                    env.transport.reads.fetch_add(1, Ordering::Relaxed);
                    match self.stream.read(&mut sink) {
                        Ok(0) => return Step::Close,
                        Ok(_) => {
                            self.drain_reads += 1;
                            self.last_byte = Instant::now();
                            if self.drain_reads >= SHED_DRAIN_MAX_READS {
                                return Step::Close;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Idle,
                        Err(_) => return Step::Close,
                    }
                }
                State::Closed => return Step::Close,
                // Spurious readiness for a state that doesn't read.
                State::Dispatched | State::Writing { .. } => return Step::Idle,
            }
        }
    }

    /// Ten header bytes are in: parse them, transition, or begin a
    /// terminal error reply. `None` means "keep reading" (the payload
    /// may already be in the socket buffer).
    fn header_complete(&mut self, env: &ConnEnv<'_>) -> Option<Step> {
        match wire::decode_frame_header_any(&self.hdr) {
            Ok((kind, len)) => {
                if len > MAX_REQUEST_PAYLOAD {
                    // Refuse to buffer it (or hand the dribble clock a
                    // multi-megabyte frame to stretch), reply, drop.
                    self.begin_error_reply(
                        env,
                        wire::errcode::MALFORMED,
                        &oversize_message(len),
                        AfterWrite::Close,
                    );
                    return Some(Step::Idle);
                }
                // The total-budget clock for the payload starts now,
                // exactly like the threaded core's per-read_full
                // budget.
                self.frame_start = Instant::now();
                self.payload.clear();
                self.payload.resize(len, 0);
                self.payload_filled = 0;
                if len == 0 {
                    return Some(self.frame_complete(env, kind));
                }
                self.state = State::ReadingPayload { kind };
                None
            }
            Err(e) => {
                // Un-synchronizable (bad magic/version/length): the
                // frame boundary is unknowable, so reply and drop.
                self.begin_error_reply(
                    env,
                    wire::errcode::MALFORMED,
                    &e.to_string(),
                    AfterWrite::Close,
                );
                Some(Step::Idle)
            }
        }
    }

    /// A whole request frame is buffered: count it and hand it up.
    fn frame_complete(&mut self, env: &ConnEnv<'_>, kind: u8) -> Step {
        env.metrics.bytes_in.fetch_add(
            (wire::FRAME_HEADER_LEN + self.payload_filled) as u64,
            Ordering::Relaxed,
        );
        Step::Frame { kind }
    }

    /// The request is on its way to a pool worker; park until the
    /// completion arrives.
    pub(crate) fn begin_dispatch(&mut self) {
        self.state = State::Dispatched;
    }

    /// Begin an OK reply (`head` + `body`, already encoded by the
    /// worker). Counts `requests_ok` and `bytes_out` **before** the
    /// first write — the threaded core's order — and charges a blown
    /// flush budget as a timed-out connection.
    pub(crate) fn begin_ok_reply(
        &mut self,
        env: &ConnEnv<'_>,
        head: [u8; wire::FRAME_HEADER_LEN],
        body: Vec<u8>,
    ) {
        let frame_len = (head.len() + body.len()) as u64;
        env.metrics
            .bytes_out
            .fetch_add(frame_len, Ordering::Relaxed);
        env.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
        self.reply_head = head;
        self.reply_body = body;
        self.head_written = 0;
        self.body_written = 0;
        self.write_start = Instant::now();
        self.state = State::Writing {
            after: AfterWrite::NextRequest,
            bound: env.write_timeout,
            count_timeout_on_stall: true,
            count_bytes_on_flush: 0,
        };
    }

    /// Begin a coded error reply. Counts `requests_err` and
    /// `bytes_out` up front (threaded parity: `send_error_frame`
    /// counts before writing, unconditionally). `after` decides
    /// whether the connection survives (decodable-but-bad requests) or
    /// closes (unsynchronizable bytes, oversize declarations).
    fn begin_error_reply(&mut self, env: &ConnEnv<'_>, code: u8, message: &str, after: AfterWrite) {
        env.metrics.requests_err.fetch_add(1, Ordering::Relaxed);
        let mut body = std::mem::take(&mut self.reply_body);
        let framed = wire::encode_err_reply_payload(code, message, &mut body)
            .and_then(|kind| wire::encode_frame_header(kind, body.len()));
        self.reply_body = body;
        match framed {
            Ok(head) => {
                let frame_len = (head.len() + self.reply_body.len()) as u64;
                env.metrics
                    .bytes_out
                    .fetch_add(frame_len, Ordering::Relaxed);
                self.reply_head = head;
                self.head_written = 0;
                self.body_written = 0;
                self.write_start = Instant::now();
                self.state = State::Writing {
                    after,
                    bound: env.write_timeout,
                    count_timeout_on_stall: false,
                    count_bytes_on_flush: 0,
                };
            }
            // Unreachable (error replies always encode); close rather
            // than panic on a protocol bug.
            Err(_) => self.state = State::Closed,
        }
    }

    /// Survivable error reply: back to `ReadingHeader` once flushed.
    pub(crate) fn begin_request_error(&mut self, env: &ConnEnv<'_>, code: u8, message: &str) {
        self.begin_error_reply(env, code, message, AfterWrite::NextRequest);
    }

    /// Begin an idle eviction: count the timed-out connection **now**
    /// (threaded parity), send the TIMEOUT frame best-effort (its
    /// bytes count only if it fully flushes), close after.
    pub(crate) fn begin_evict(&mut self, env: &ConnEnv<'_>, message: &str) {
        env.metrics
            .connections_timed_out
            .fetch_add(1, Ordering::Relaxed);
        let mut body = std::mem::take(&mut self.reply_body);
        let framed = wire::encode_err_reply_payload(wire::errcode::TIMEOUT, message, &mut body)
            .and_then(|kind| wire::encode_frame_header(kind, body.len()));
        self.reply_body = body;
        match framed {
            Ok(head) => {
                let frame_len = (head.len() + self.reply_body.len()) as u64;
                self.reply_head = head;
                self.head_written = 0;
                self.body_written = 0;
                self.write_start = Instant::now();
                self.state = State::Writing {
                    after: AfterWrite::Close,
                    bound: env.write_timeout,
                    count_timeout_on_stall: false,
                    count_bytes_on_flush: frame_len,
                };
            }
            Err(_) => self.state = State::Closed,
        }
    }

    /// The peer is writable: push reply bytes until the frame is
    /// flushed or the socket fills.
    pub(crate) fn on_writable(&mut self, env: &ConnEnv<'_>) -> Step {
        loop {
            let State::Writing {
                after,
                bound: _,
                count_timeout_on_stall: _,
                count_bytes_on_flush,
            } = self.state
            else {
                // Spurious writable for a non-writing state.
                return match self.state {
                    State::Closed => Step::Close,
                    _ => Step::Idle,
                };
            };
            let head_rem = self.reply_head.get(self.head_written..).unwrap_or(&[]);
            let body_rem = self.reply_body.get(self.body_written..).unwrap_or(&[]);
            if head_rem.is_empty() && body_rem.is_empty() {
                return self.flushed(after, count_bytes_on_flush, env);
            }
            env.transport.writes.fetch_add(1, Ordering::Relaxed);
            let wrote = self
                .stream
                .write_vectored(&[IoSlice::new(head_rem), IoSlice::new(body_rem)]);
            match wrote {
                Ok(0) => return Step::Close,
                Ok(n) => {
                    let into_head = n.min(wire::FRAME_HEADER_LEN - self.head_written);
                    self.head_written += into_head;
                    self.body_written += n - into_head;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Idle,
                // Hard write error: close without the timed-out count
                // (threaded parity — only stalls count).
                Err(_) => return Step::Close,
            }
        }
    }

    /// The reply frame is fully on the wire; settle deferred counters
    /// and move on.
    fn flushed(&mut self, after: AfterWrite, deferred_bytes: u64, env: &ConnEnv<'_>) -> Step {
        if deferred_bytes > 0 {
            env.metrics
                .bytes_out
                .fetch_add(deferred_bytes, Ordering::Relaxed);
        }
        match after {
            AfterWrite::NextRequest => {
                // Restart the idle clock only now that the reply has
                // fully drained: engine compute and flush time are the
                // server's wall-clock, not the peer's silence.
                let now = Instant::now();
                self.last_byte = now;
                self.frame_start = now;
                self.hdr_filled = 0;
                self.state = State::ReadingHeader;
                // The next request may already be buffered
                // (pipelining); the caller re-pumps reads.
                Step::Idle
            }
            AfterWrite::Close => Step::Close,
            AfterWrite::ShedDrain => {
                if self.stream.shutdown_write().is_err() {
                    // No FIN means the peer will never see EOF and the
                    // polite drain can only end at the deadline; a dead
                    // socket must not occupy a shed slot that long.
                    self.state = State::Closed;
                    return Step::Close;
                }
                self.last_byte = Instant::now();
                self.drain_reads = 0;
                self.state = State::ShedDraining;
                Step::Idle
            }
        }
    }

    /// A pool completion for this connection: `Some(Ok)` is the
    /// encoded reply, `Some(Err)` an unrepresentable response, `None`
    /// a panicked worker. Must be in `Dispatched`.
    pub(crate) fn on_completion(
        &mut self,
        env: &ConnEnv<'_>,
        result: Option<EncodedReply>,
    ) -> Step {
        if !matches!(self.state, State::Dispatched) {
            return Step::Idle;
        }
        match result {
            Some(Ok((head, body))) => self.begin_ok_reply(env, head, body),
            Some(Err(e)) => {
                let (code, message) = super::unrepresentable(e);
                self.begin_request_error(env, code, &message);
            }
            None => {
                self.begin_request_error(env, wire::errcode::INTERNAL, super::WORKER_FAILED);
            }
        }
        Step::Idle
    }

    /// The clock says `now`: if this connection's deadline has passed,
    /// take the expiry action (evict, charge a stalled writer, or end
    /// the shed drain). The reactor calls this when a timer fires; a
    /// deadline that moved later (bytes arrived since the timer was
    /// armed) just re-arms via [`Conn::deadline`].
    pub(crate) fn check_deadline(&mut self, env: &ConnEnv<'_>, now: Instant) -> Step {
        let Some(deadline) = self.deadline(env) else {
            return Step::Idle;
        };
        if now < deadline {
            return Step::Idle;
        }
        match self.state {
            State::ReadingHeader | State::ReadingPayload { .. } => {
                self.begin_evict(env, &super::idle_eviction_message(env.idle_deadline));
                Step::Idle
            }
            State::Writing {
                count_timeout_on_stall,
                ..
            } => {
                if count_timeout_on_stall {
                    // A non-draining peer is the write-side slow
                    // loris; count the eviction (no frame can tell it
                    // so — the pipe is the problem).
                    env.metrics
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                }
                Step::Close
            }
            State::ShedDraining => Step::Close,
            State::Dispatched | State::Closed => Step::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted stream: reads deliver pre-programmed chunks (then
    /// WouldBlock), writes accept at most a scripted quota per call
    /// (then WouldBlock) into a transcript buffer.
    struct ScriptedStream {
        reads: VecDeque<Vec<u8>>,
        eof_after_reads: bool,
        written: Vec<u8>,
        write_quota: VecDeque<usize>,
        unlimited_writes: bool,
        fin_sent: bool,
        fail_shutdown: bool,
    }

    impl ScriptedStream {
        fn new() -> ScriptedStream {
            ScriptedStream {
                reads: VecDeque::new(),
                eof_after_reads: false,
                written: Vec::new(),
                write_quota: VecDeque::new(),
                unlimited_writes: true,
                fin_sent: false,
                fail_shutdown: false,
            }
        }

        /// Queue incoming bytes split into `chunk`-sized reads.
        fn feed_chunked(&mut self, bytes: &[u8], chunk: usize) {
            for piece in bytes.chunks(chunk.max(1)) {
                self.reads.push_back(piece.to_vec());
            }
        }

        /// Accept writes only in `quota`-byte sips.
        fn sip_writes(&mut self, quota: usize, sips: usize) {
            self.unlimited_writes = false;
            for _ in 0..sips {
                self.write_quota.push_back(quota);
            }
        }
    }

    impl ConnStream for ScriptedStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(mut chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.reads.push_front(chunk.split_off(n));
                    }
                    Ok(n)
                }
                None if self.eof_after_reads => Ok(0),
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            }
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let quota = if self.unlimited_writes {
                usize::MAX
            } else {
                match self.write_quota.pop_front() {
                    Some(q) => q,
                    None => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
                }
            };
            let mut accepted = 0;
            for buf in bufs {
                let n = buf.len().min(quota - accepted);
                self.written.extend_from_slice(&buf[..n]);
                accepted += n;
                if accepted == quota {
                    break;
                }
            }
            if accepted == 0 && bufs.iter().any(|b| !b.is_empty()) {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            Ok(accepted)
        }

        fn shutdown_write(&mut self) -> io::Result<()> {
            if self.fail_shutdown {
                return Err(io::Error::from(io::ErrorKind::BrokenPipe));
            }
            self.fin_sent = true;
            Ok(())
        }
    }

    fn env<'a>(metrics: &'a ServerMetrics, transport: &'a TransportStats) -> ConnEnv<'a> {
        ConnEnv {
            metrics,
            transport,
            idle_deadline: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }

    fn request_frame() -> Vec<u8> {
        wire::Request::Terms {
            terms: vec![(1, 1), (7, 2)],
            r: 3,
            want_digests: false,
        }
        .encode_frame()
        .unwrap()
    }

    #[test]
    fn one_byte_at_a_time_reads_assemble_the_frame_at_every_boundary() {
        let frame = request_frame();
        // Every chunk size from 1 byte to the whole frame exercises
        // every partial-read boundary (header split, header/payload
        // split, payload split).
        for chunk in 1..=frame.len() {
            let metrics = ServerMetrics::default();
            let transport = TransportStats::default();
            let env = env(&metrics, &transport);
            let mut stream = ScriptedStream::new();
            stream.feed_chunked(&frame, chunk);
            let mut conn = Conn::new(stream, Instant::now());
            let step = conn.on_readable(&env);
            assert_eq!(
                step,
                Step::Frame {
                    kind: wire::kind::REQ_TERMS
                },
                "chunk size {chunk}"
            );
            assert_eq!(conn.request(), &frame[wire::FRAME_HEADER_LEN..]);
            assert_eq!(
                metrics.snapshot().bytes_in,
                frame.len() as u64,
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn one_byte_at_a_time_writes_flush_the_reply_at_every_boundary() {
        let body = b"some reply payload bytes".to_vec();
        let head = wire::encode_frame_header(wire::kind::REPLY_OK, body.len()).unwrap();
        let total = head.len() + body.len();
        for quota in 1..=total {
            let metrics = ServerMetrics::default();
            let transport = TransportStats::default();
            let env = env(&metrics, &transport);
            let mut stream = ScriptedStream::new();
            stream.sip_writes(quota, total.div_ceil(quota));
            let mut conn = Conn::new(stream, Instant::now());
            conn.begin_ok_reply(&env, head, body.clone());
            // Pump writable until the state machine settles back into
            // reading (quota-bounded, so multiple rounds).
            let mut rounds = 0;
            while conn.is_writing() {
                assert_eq!(conn.on_writable(&env), Step::Idle, "quota {quota}");
                rounds += 1;
                assert!(rounds <= total + 2, "flush must terminate (quota {quota})");
            }
            let mut expect = head.to_vec();
            expect.extend_from_slice(&body);
            assert_eq!(conn.stream.written, expect, "quota {quota}");
            assert_eq!(conn.want(), Want::Read, "back to reading (quota {quota})");
            let snap = metrics.snapshot();
            assert_eq!(snap.requests_ok, 1);
            assert_eq!(snap.bytes_out, total as u64);
        }
    }

    #[test]
    fn garbage_header_begins_terminal_malformed_reply() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut stream = ScriptedStream::new();
        stream.feed_chunked(b"GET / HTTP/1.1\r\n\r\n", 4);
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(conn.on_readable(&env), Step::Idle);
        assert!(conn.is_writing(), "MALFORMED reply pending");
        assert_eq!(conn.on_writable(&env), Step::Close, "terminal after flush");
        let snap = metrics.snapshot();
        assert_eq!(snap.requests_err, 1);
        assert!(snap.bytes_out > 0, "error frame counted up front");
        let head: [u8; 10] = conn.stream.written[..10].try_into().unwrap();
        let (kind, len) = wire::decode_frame_header_any(&head).unwrap();
        assert_eq!(kind, wire::kind::REPLY_ERR);
        assert_eq!(conn.stream.written.len(), wire::FRAME_HEADER_LEN + len);
    }

    #[test]
    fn oversize_declaration_is_refused_without_buffering() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let header = wire::encode_frame_header(wire::kind::REQ_TERMS, MAX_REQUEST_PAYLOAD + 1)
            .expect("within the frame cap");
        let mut stream = ScriptedStream::new();
        stream.feed_chunked(&header, 3);
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(conn.on_readable(&env), Step::Idle);
        assert!(conn.payload.is_empty(), "nothing allocated for the payload");
        assert!(conn.is_writing());
        assert_eq!(conn.on_writable(&env), Step::Close);
        let reply = wire::decode_reply_payload(
            wire::kind::REPLY_ERR,
            &conn.stream.written[wire::FRAME_HEADER_LEN..],
        )
        .unwrap();
        match reply {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::MALFORMED);
                assert!(message.contains("request cap"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_between_frames_closes_silently() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut stream = ScriptedStream::new();
        stream.eof_after_reads = true;
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(conn.on_readable(&env), Step::Close);
        let snap = metrics.snapshot();
        assert_eq!(snap.requests_err, 0);
        assert_eq!(snap.connections_timed_out, 0);
        assert_eq!(snap.bytes_out, 0);
    }

    #[test]
    fn eof_mid_frame_closes_silently() {
        let frame = request_frame();
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut stream = ScriptedStream::new();
        stream.feed_chunked(&frame[..frame.len() - 2], 5);
        stream.eof_after_reads = true;
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(conn.on_readable(&env), Step::Close);
        assert_eq!(metrics.snapshot().bytes_in, 0, "incomplete frame uncounted");
    }

    #[test]
    fn zero_length_payload_completes_immediately() {
        // No request kind uses len 0 today, but the state machine must
        // not wait forever on a payload that never comes.
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let header = wire::encode_frame_header(wire::kind::REQ_TEXT, 0).unwrap();
        let mut stream = ScriptedStream::new();
        stream.feed_chunked(&header, 1);
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(
            conn.on_readable(&env),
            Step::Frame {
                kind: wire::kind::REQ_TEXT
            }
        );
        assert!(conn.request().is_empty());
        assert_eq!(metrics.snapshot().bytes_in, wire::FRAME_HEADER_LEN as u64);
    }

    #[test]
    fn dispatched_connection_ignores_events_and_has_no_deadline() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut conn = Conn::new(ScriptedStream::new(), Instant::now());
        conn.begin_dispatch();
        assert_eq!(conn.want(), Want::None);
        assert!(conn.deadline(&env).is_none(), "compute time is uncharged");
        assert_eq!(conn.on_readable(&env), Step::Idle);
        assert_eq!(conn.on_writable(&env), Step::Idle);
        assert_eq!(
            conn.check_deadline(&env, Instant::now() + Duration::from_secs(3600)),
            Step::Idle
        );
    }

    #[test]
    fn completion_routes_ok_err_and_panic_to_the_right_replies() {
        // OK completion → OK frame, requests_ok.
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut conn = Conn::new(ScriptedStream::new(), Instant::now());
        conn.begin_dispatch();
        let body = b"vo bytes".to_vec();
        let head = wire::encode_frame_header(wire::kind::REPLY_OK, body.len()).unwrap();
        assert_eq!(conn.on_completion(&env, Some(Ok((head, body)))), Step::Idle);
        while conn.is_writing() {
            conn.on_writable(&env);
        }
        assert_eq!(metrics.snapshot().requests_ok, 1);
        assert_eq!(conn.want(), Want::Read, "connection survives");

        // TooLong completion → UNREPRESENTABLE, connection survives.
        conn.begin_dispatch();
        let err = wire::WireError::TooLong {
            field: "entries",
            len: 99999,
            max: 65535,
        };
        conn.on_completion(&env, Some(Err(err)));
        while conn.is_writing() {
            conn.on_writable(&env);
        }
        assert_eq!(metrics.snapshot().requests_err, 1);
        assert_eq!(conn.want(), Want::Read);

        // Panicked worker (None) → INTERNAL, connection survives.
        conn.begin_dispatch();
        conn.on_completion(&env, None);
        while conn.is_writing() {
            conn.on_writable(&env);
        }
        assert_eq!(metrics.snapshot().requests_err, 2);
        assert_eq!(conn.want(), Want::Read);
        // The transcript holds OK + 2 error frames back to back.
        let mut rest: &[u8] = &conn.stream.written;
        let mut kinds = Vec::new();
        while !rest.is_empty() {
            let head: [u8; 10] = rest[..10].try_into().unwrap();
            let (kind, len) = wire::decode_frame_header_any(&head).unwrap();
            kinds.push(kind);
            rest = &rest[wire::FRAME_HEADER_LEN + len..];
        }
        assert_eq!(
            kinds,
            vec![
                wire::kind::REPLY_OK,
                wire::kind::REPLY_ERR,
                wire::kind::REPLY_ERR
            ]
        );
    }

    #[test]
    fn idle_deadline_expiry_evicts_with_timeout_frame() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let mut e = env(&metrics, &transport);
        e.idle_deadline = Duration::from_millis(10);
        let mut conn = Conn::new(ScriptedStream::new(), Instant::now());
        let deadline = conn.deadline(&e).expect("read deadline armed");
        assert_eq!(
            conn.check_deadline(&e, deadline + Duration::from_millis(1)),
            Step::Idle,
            "eviction begins a TIMEOUT write, not an instant close"
        );
        assert_eq!(metrics.snapshot().connections_timed_out, 1);
        assert_eq!(conn.on_writable(&e), Step::Close, "close after the frame");
        let snap = metrics.snapshot();
        assert_eq!(
            snap.bytes_out,
            conn.stream.written.len() as u64,
            "eviction bytes counted only once flushed"
        );
        let reply = wire::decode_reply_payload(
            wire::kind::REPLY_ERR,
            &conn.stream.written[wire::FRAME_HEADER_LEN..],
        )
        .unwrap();
        match reply {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::TIMEOUT);
                assert!(message.contains("idle"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_idle_deadline_means_no_read_deadline() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let mut e = env(&metrics, &transport);
        e.idle_deadline = Duration::ZERO;
        let conn = Conn::new(ScriptedStream::new(), Instant::now());
        assert!(conn.deadline(&e).is_none());
    }

    #[test]
    fn frame_budget_bounds_a_trickling_peer_even_with_fresh_bytes() {
        // The regression for the trickle-evasion bug: a peer feeding
        // one byte per almost-deadline keeps the gap clock fresh
        // forever, but the total frame budget still expires.
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let mut e = env(&metrics, &transport);
        e.idle_deadline = Duration::from_millis(200);
        let mut stream = ScriptedStream::new();
        let frame = request_frame();
        stream.feed_chunked(&frame[..3], 1);
        let mut conn = Conn::new(stream, Instant::now());
        assert_eq!(conn.on_readable(&e), Step::Idle, "3 bytes in, parked");
        // Simulate "bytes keep arriving": last_byte is fresh, so the
        // gap deadline alone would never fire. The budget one must.
        conn.last_byte = Instant::now();
        let budget_expiry = conn.frame_start + frame_budget(e.idle_deadline, 10);
        let deadline = conn.deadline(&e).expect("armed");
        assert!(
            deadline <= budget_expiry,
            "deadline must be bounded by the total frame budget"
        );
        assert_eq!(
            conn.check_deadline(&e, budget_expiry + Duration::from_millis(1)),
            Step::Idle
        );
        assert_eq!(metrics.snapshot().connections_timed_out, 1);
    }

    #[test]
    fn stalled_ok_reply_counts_a_timed_out_connection() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let body = vec![0u8; 64];
        let head = wire::encode_frame_header(wire::kind::REPLY_OK, body.len()).unwrap();
        let mut stream = ScriptedStream::new();
        stream.sip_writes(4, 1); // accepts 4 bytes, then WouldBlock forever
        let mut conn = Conn::new(stream, Instant::now());
        conn.begin_ok_reply(&env, head, body);
        assert_eq!(conn.on_writable(&env), Step::Idle, "partial, parked");
        let deadline = conn.deadline(&env).expect("write bound armed");
        assert_eq!(
            conn.check_deadline(&env, deadline + Duration::from_millis(1)),
            Step::Close
        );
        assert_eq!(metrics.snapshot().connections_timed_out, 1);
    }

    #[test]
    fn shed_connection_whose_fin_fails_closes_instead_of_draining() {
        // Regression: this error used to be swallowed, leaving a dead
        // peer parked in ShedDraining until the drain deadline.
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut stream = ScriptedStream::new();
        stream.fail_shutdown = true;
        let mut conn = Conn::new_shed(stream, &super::super::busy_message(2), Instant::now());
        assert_eq!(
            conn.on_writable(&env),
            Step::Close,
            "a peer we cannot half-close must not occupy a drain slot"
        );
        assert!(!conn.stream.fin_sent);
        assert!(!conn.is_shedding(), "terminal, not draining");
    }

    #[test]
    fn shed_connection_writes_busy_then_fin_then_drains() {
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let stream = ScriptedStream::new();
        let mut conn = Conn::new_shed(stream, &super::super::busy_message(2), Instant::now());
        assert!(conn.is_shedding());
        assert_eq!(conn.want(), Want::Write);
        assert_eq!(conn.on_writable(&env), Step::Idle, "BUSY flushed, draining");
        assert!(conn.stream.fin_sent, "FIN follows the BUSY frame");
        assert_eq!(conn.want(), Want::Read);
        let reply = wire::decode_reply_payload(
            wire::kind::REPLY_ERR,
            &conn.stream.written[wire::FRAME_HEADER_LEN..],
        )
        .unwrap();
        match reply {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::BUSY);
                assert!(message.contains("capacity"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            metrics.snapshot().bytes_out,
            conn.stream.written.len() as u64,
            "BUSY bytes counted on flush"
        );
        // Peer bytes arrive during the drain; then it closes.
        conn.stream.reads.push_back(vec![0u8; 100]);
        conn.stream.eof_after_reads = true;
        assert_eq!(conn.on_readable(&env), Step::Close);
        // Drain is bounded in time too.
        let mut conn2 = Conn::new_shed(ScriptedStream::new(), "busy", Instant::now());
        assert_eq!(conn2.on_writable(&env), Step::Idle);
        let gap = conn2.deadline(&env).expect("drain gap armed");
        assert_eq!(
            conn2.check_deadline(&env, gap + SHED_DRAIN_GAP),
            Step::Close
        );
    }

    #[test]
    fn pipelined_second_request_waits_until_reply_flushes() {
        // Two requests arrive back to back; the state machine must
        // consume exactly one, serve it, and only then read the next —
        // the threaded core's one-at-a-time contract.
        let frame = request_frame();
        let mut both = frame.clone();
        both.extend_from_slice(&frame);
        let metrics = ServerMetrics::default();
        let transport = TransportStats::default();
        let env = env(&metrics, &transport);
        let mut stream = ScriptedStream::new();
        stream.feed_chunked(&both, 7);
        let mut conn = Conn::new(stream, Instant::now());
        assert!(matches!(conn.on_readable(&env), Step::Frame { .. }));
        conn.begin_dispatch();
        assert_eq!(conn.want(), Want::None, "no reads while dispatched");
        let body = b"ok".to_vec();
        let head = wire::encode_frame_header(wire::kind::REPLY_OK, body.len()).unwrap();
        conn.on_completion(&env, Some(Ok((head, body))));
        while conn.is_writing() {
            conn.on_writable(&env);
        }
        // Reply flushed; the buffered second request is now readable.
        assert!(matches!(conn.on_readable(&env), Step::Frame { .. }));
        assert_eq!(metrics.snapshot().bytes_in, 2 * frame.len() as u64);
    }
}
