//! Long-running authenticated search server over the wire protocol.
//!
//! The paper's model is a one-shot pipeline — owner builds, engine
//! answers one query, user verifies. This module is the deployment shape
//! of *Verifying Search Results Over Web Collections* (Goodrich et al.):
//! a continuously running, **untrusted** server answering verifiable
//! queries from many clients over TCP. The trust model is unchanged —
//! nothing the server sends is believed until the client's
//! [`verify`](mod@crate::verify) accepts it against the owner's public key —
//! the server is just the engine with a socket in front of it.
//!
//! ## Architecture
//!
//! Two interchangeable transport cores sit behind one public API and
//! one [`ServerMetrics`] contract ([`ServerCore`] selects; counters and
//! reply frames are byte-identical across the two, enforced by the
//! parity suite in `tests/server_reactor.rs`):
//!
//! * **Reactor core** (default on Linux, [`ServerCore::Reactor`]): a
//!   single event-loop thread drives every connection through a
//!   readiness reactor over raw `epoll` ([`crate::reactor`]). Each
//!   connection is an explicit state machine (`ReadingHeader →
//!   ReadingPayload → Dispatched → Writing`, the private `conn` module) over the
//!   [`crate::wire`] frame codec; replies leave through vectored
//!   writes from reused per-connection buffers (no staging copy, no
//!   per-reply allocation at steady state); idle and write deadlines
//!   are timer-wheel entries, so 10k+ parked connections cost zero
//!   syscalls until a byte arrives.
//! * **Threaded core** ([`ServerCore::Threaded`], the fallback on
//!   non-Linux platforms): a background acceptor hands each connection
//!   its own OS thread, which owns the socket and does blocking framing
//!   I/O with a read-timeout poll tick.
//!
//! Shared by both cores:
//!
//! * **Persistent pool dispatch**: query execution is
//!   [`submit`](crate::pool::ThreadPool::submit)-ted onto the engine's
//!   persistent work-stealing pool
//!   ([`AuthenticatedIndex::serve_pool`](crate::AuthenticatedIndex::serve_pool)
//!   — the same workers the owner build spawned), so N connections
//!   share one executor instead of oversubscribing the machine, and a
//!   `threads = 1` deployment still runs the paper's sequential model
//!   with no thread spawned anywhere.
//! * **Warm start**: startup pre-warms the sharded structure LRUs with
//!   the top-df terms ([`ServerConfig::warm_top_k`],
//!   [`crate::AuthenticatedIndex::warm_cache`]) so the first wave of
//!   traffic doesn't stampede the caches with concurrent cold builds.
//! * **Per-connection error isolation**: malformed bytes, unserviceable
//!   queries, and even a panicking query worker produce a coded
//!   [`crate::wire::kind::REPLY_ERR`] frame (or at worst close that one
//!   connection) — attacker-controlled input never panics the process
//!   and never touches other connections.
//! * **Typed overload**: connections over
//!   [`ServerConfig::max_connections`] are shed with a
//!   [`crate::wire::errcode::BUSY`] frame; peers idling (or trickling)
//!   past [`ServerConfig::idle_deadline`] are evicted with a
//!   [`crate::wire::errcode::TIMEOUT`] frame — never a silent RST.
//! * **Graceful shutdown**: [`ServerHandle::shutdown`] stops accepting,
//!   drains in-flight replies, and returns the final
//!   [`ServerMetricsSnapshot`].

pub(crate) mod conn;
#[cfg(target_os = "linux")]
mod reactor_core;
mod threaded;

use crate::auth::{boot_authenticated_index, AuthConfig, BootReport, BootSource};
use crate::engine::SearchEngine;
use crate::metrics::{
    ServerMetrics, ServerMetricsSnapshot, TransportStats, TransportStatsSnapshot,
};
use crate::pool::ThreadPool;
use crate::types::{Query, QueryMode};
use crate::wire::{self, Request, WireError};
use crate::WarmStats;
use authsearch_corpus::Corpus;
use authsearch_corpus::TermId;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which transport core serves connections; see the [module
/// docs](self) for the architecture of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// Single-threaded `epoll` event loop with per-connection state
    /// machines ([`crate::reactor`]). Linux-only; selecting it on
    /// another platform falls back to [`ServerCore::Threaded`] at
    /// startup.
    Reactor,
    /// One blocking OS thread per connection (the pre-reactor core;
    /// portable everywhere std is).
    Threaded,
}

impl Default for ServerCore {
    /// Reads `AUTHSEARCH_CORE` (`"reactor"` / `"threaded"`; a typo
    /// warns once and is ignored), then platform default: the reactor
    /// on Linux, the threaded core elsewhere.
    fn default() -> ServerCore {
        let platform = if cfg!(target_os = "linux") {
            ServerCore::Reactor
        } else {
            ServerCore::Threaded
        };
        match std::env::var("AUTHSEARCH_CORE") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "reactor" => ServerCore::Reactor,
                "threaded" => ServerCore::Threaded,
                _ => {
                    warn_once(
                        "AUTHSEARCH_CORE",
                        &format!(
                            "warning: AUTHSEARCH_CORE={raw:?} is not \"reactor\" or \
                             \"threaded\"; ignoring the override"
                        ),
                    );
                    platform
                }
            },
            Err(_) => platform,
        }
    }
}

/// Operational knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// How many top-df terms to pre-warm into the structure caches at
    /// startup. `None` (the default) is **`AuthConfig`-driven**: warm up
    /// to the term LRU's configured capacity
    /// ([`crate::AuthConfig::term_cache_capacity`]); `Some(0)` disables
    /// warming; `Some(k)` warms exactly `k` (clamped to capacity).
    pub warm_top_k: Option<usize>,
    /// Largest `r` a request may ask for; bigger requests get a
    /// [`crate::wire::errcode::BAD_QUERY`] reply instead of letting a
    /// remote peer size engine-side allocations.
    pub max_r: usize,
    /// **Threaded core:** socket read poll interval — how long a
    /// connection thread blocks in `read` before re-checking the
    /// shutdown flag (bounds shutdown latency for idle connections).
    /// **Reactor core:** the timer-wheel tick width — deadlines fire at
    /// most this much late; the loop itself sleeps event-driven, not on
    /// this interval.
    pub poll_interval: Duration,
    /// Admission cap: the most connections served simultaneously
    /// (`0` = unlimited, the pre-PR-5 behavior). A connection accepted
    /// over the cap is **shed with an answer** — a
    /// [`crate::wire::errcode::BUSY`] reply frame, then a clean close —
    /// never a silent RST, so clients can back off and retry
    /// ([`crate::Connection::query_terms_retrying`]). The default reads
    /// `AUTHSEARCH_MAX_CONNECTIONS` (unset/`0` = unlimited), which is
    /// how CI runs the loopback suite in shedding mode.
    pub max_connections: usize,
    /// Idle deadline: a connection that receives **no byte** for this
    /// long — parked between requests, or dribbling a partial frame
    /// (the slow-loris shape) — is answered with a
    /// [`crate::wire::errcode::TIMEOUT`] frame and closed, releasing
    /// its resources. The clock restarts at every received byte **and**
    /// every written reply, so time the *server* spends computing an
    /// answer is never charged to the peer; a total per-frame budget
    /// (`MIN_FRAME_BYTES_PER_SEC`) additionally bounds dribblers.
    /// `Duration::ZERO` disables the deadline (consistent with
    /// [`ServerConfig::max_connections`]'s `0` = unlimited). The
    /// default reads `AUTHSEARCH_IDLE_MS` (unset = 30 seconds).
    pub idle_deadline: Duration,
    /// Bound on writing one complete reply. This is a **total** budget
    /// for the frame, not a per-`write(2)` stall timeout: a peer
    /// trickling its reads just fast enough to keep individual writes
    /// "making progress" is the slow-loris attack moved to the write
    /// side, and it must not park the connection (or hang the graceful
    /// shutdown, which waits for in-flight replies to drain) any longer
    /// than a fully stalled one. A peer that exceeds it is dropped and
    /// counted as timed out (nothing can be *sent* through a clogged
    /// pipe). `Duration::ZERO` falls back to the 30-second default
    /// rather than disabling the bound.
    pub write_timeout: Duration,
    /// `TCP_NODELAY` on connection sockets (default on: request/reply
    /// frames are small, and Nagle batching just adds a delayed-ACK
    /// round trip to every exchange). Off exists for measurement —
    /// `bench_pr5` records the latency gap.
    pub nodelay: bool,
    /// Where [`Server::start_booted`] looks for (and heals) the
    /// authenticated snapshot
    /// ([`crate::AuthenticatedIndex::save_snapshot`]). `None` (the
    /// default) always builds fresh. A configured path that is missing,
    /// stale, or corrupt falls back to a fresh build — counted in
    /// [`ServerMetricsSnapshot::boot_fresh_builds`] — and the rebuilt
    /// artifact is written back so the next boot takes the fast path.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Which transport core serves connections. The default reads
    /// `AUTHSEARCH_CORE`, then picks the platform default (reactor on
    /// Linux, threaded elsewhere) — see [`ServerCore`].
    pub core: ServerCore,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            warm_top_k: None,
            max_r: 1024,
            poll_interval: Duration::from_millis(50),
            max_connections: env_usize("AUTHSEARCH_MAX_CONNECTIONS").unwrap_or(0),
            idle_deadline: env_usize("AUTHSEARCH_IDLE_MS")
                .map(|ms| Duration::from_millis(ms as u64))
                .unwrap_or(DEFAULT_IDLE_DEADLINE),
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            nodelay: true,
            snapshot_path: None,
            core: ServerCore::default(),
        }
    }
}

/// Default [`ServerConfig::idle_deadline`].
pub const DEFAULT_IDLE_DEADLINE: Duration = Duration::from_secs(30);

/// Default [`ServerConfig::write_timeout`]; also substituted when the
/// configured value is zero (the write bound is what keeps a
/// non-draining peer from hanging graceful shutdown).
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// The write budget actually enforced: the configured value, or the
/// default when configured zero (never unbounded).
pub(crate) fn effective_write_timeout(config: &ServerConfig) -> Duration {
    if config.write_timeout.is_zero() {
        DEFAULT_WRITE_TIMEOUT
    } else {
        config.write_timeout
    }
}

/// Warn exactly once per process per `key` (a second malformed variable
/// must not be masked by the first one's warning).
fn warn_once(key: &str, message: &str) {
    static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if !warned.iter().any(|n| n == key) {
        warned.push(key.to_string());
        eprintln!("{message}");
    }
}

/// Read a `usize` environment override through the shared
/// [`crate::auth::parse_usize_env`] grammar, warning and ignoring the
/// value when it does not parse — a typo in a deployment manifest
/// should surface in the logs, not silently change admission behavior.
fn env_usize(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match crate::auth::parse_usize_env(name, &raw) {
        Ok(v) => Some(v),
        Err(why) => {
            warn_once(name, &format!("warning: {why}; ignoring the override"));
            None
        }
    }
}

/// Largest request payload the server will buffer. Well above the
/// largest encodable request (u16-capped term pairs ≈ 512 KiB) and far
/// below the wire format's [`wire::MAX_FRAME_PAYLOAD`], which exists
/// for *replies*.
pub const MAX_REQUEST_PAYLOAD: usize = 1 << 20;

/// Minimum average inbound byte rate a mid-frame peer must sustain.
/// Together with the per-gap idle deadline this bounds how long one
/// frame can be stretched: a dribbler sending one byte per
/// almost-deadline stays under the gap check but blows the total
/// budget ([`frame_budget`]). Both cores enforce it — the threaded
/// core re-checks at every poll tick, the reactor core arms a
/// timer-wheel entry for the earlier of gap deadline and frame budget,
/// so **total** header/payload time is bounded regardless of how the
/// bytes trickle in.
pub(crate) const MIN_FRAME_BYTES_PER_SEC: u64 = 1024;

/// Total time allowed to fill one `len`-byte buffer: one full idle gap
/// (the wait for the first byte) plus the minimum-rate allowance for
/// the bytes themselves. For the 10-byte header this is ≈ the idle
/// deadline + 1 s; for a cap-sized request ≈ deadline + 17 min — long
/// enough for any honest link, finite for every dribbler.
pub(crate) fn frame_budget(idle_deadline: Duration, len: usize) -> Duration {
    idle_deadline + Duration::from_secs(len as u64 / MIN_FRAME_BYTES_PER_SEC + 1)
}

/// Most shed handshakes allowed in flight at once. Refusing a
/// connection politely costs resources — on the threaded core a
/// short-lived thread, on the reactor a registered fd — writing the
/// BUSY frame, then draining briefly so closing with unread request
/// bytes does not turn into an RST that destroys the refusal in the
/// peer's receive buffer. Past this bound the server is under a
/// connect flood and sheds silently (drop), keeping the acceptor
/// itself unblockable.
pub(crate) const MAX_SHED_HANDSHAKES: u64 = 64;

/// The BUSY refusal text; one definition so both cores shed with
/// byte-identical frames.
pub(crate) fn busy_message(max_connections: usize) -> String {
    format!("server at capacity ({max_connections} connections); retry with backoff")
}

/// The TIMEOUT eviction text; one definition so both cores evict with
/// byte-identical frames.
pub(crate) fn idle_eviction_message(deadline: Duration) -> String {
    format!("connection idle past the {deadline:?} deadline; reconnect to continue")
}

/// The over-cap request refusal text; one definition for both cores.
pub(crate) fn oversize_message(len: usize) -> String {
    format!("request payload of {len} bytes exceeds the {MAX_REQUEST_PAYLOAD}-byte request cap")
}

/// The INTERNAL error text for a panicked query worker.
pub(crate) const WORKER_FAILED: &str = "query worker failed; connection remains usable";

/// State shared by both transport cores: the engine, its persistent
/// pool, the configuration, and every observable counter.
pub(crate) struct Shared {
    pub(crate) engine: Arc<SearchEngine>,
    pub(crate) pool: Arc<ThreadPool>,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: ServerMetrics,
    pub(crate) transport: TransportStats,
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// A validated, decoded query ready for the pool: everything a worker
/// needs to execute and encode the reply, nothing it needs the socket
/// for.
pub(crate) struct QueryJob {
    pub(crate) pairs: Vec<(TermId, u32)>,
    pub(crate) query: Query,
    pub(crate) r: usize,
    pub(crate) digest_mode: bool,
    pub(crate) mode: QueryMode,
}

/// Decode and validate one request into a [`QueryJob`], or the coded
/// error reply it deserves. Both cores call this on the connection's
/// I/O side before spending any engine time.
pub(crate) fn prepare_job(
    kind: u8,
    payload: &[u8],
    engine: &SearchEngine,
    max_r: usize,
) -> Result<QueryJob, (u8, String)> {
    let request = Request::decode_payload(kind, payload)
        .map_err(|e| (wire::errcode::MALFORMED, e.to_string()))?;
    let (pairs, query, r, want_digests, mode) = prepare(engine, request, max_r)?;
    // Digest mode is honored only for TNRA deployments: TRA
    // verification hashes the delivered result contents against the
    // signed document-MHT roots, so stripping them would turn every
    // honest TRA reply into a rejection. TNRA verification never reads
    // them, so the verdict is unchanged (the falls-back-to-full-echo
    // contract the client handles).
    let digest_mode = want_digests && !engine.auth().config().mechanism.is_tra();
    Ok(QueryJob {
        pairs,
        query,
        r,
        digest_mode,
        mode,
    })
}

/// Execute a [`QueryJob`] and encode the reply **payload** into `buf`
/// (cleared first), returning the reply frame kind. Runs on a pool
/// worker in both cores.
pub(crate) fn execute_job(
    engine: &SearchEngine,
    job: &QueryJob,
    buf: &mut Vec<u8>,
) -> Result<u8, WireError> {
    let response = match job.mode {
        QueryMode::Disjunctive => engine.search(&job.query, job.r),
        QueryMode::Conjunctive => engine.search_conjunctive(&job.query, job.r),
    };
    if job.digest_mode {
        wire::encode_ok_digest_reply_payload(&job.pairs, &response, buf)
    } else {
        wire::encode_ok_reply_payload(&job.pairs, &response, buf)
    }
}

/// Map an encoding failure to the coded error reply the client sees;
/// one definition so both cores reply byte-identically.
pub(crate) fn unrepresentable(e: WireError) -> (u8, String) {
    match e {
        WireError::TooLong { field, len, max } => (
            wire::errcode::UNREPRESENTABLE,
            format!("response not representable: {field} holds {len} entries, wire carries {max}"),
        ),
        other => (wire::errcode::UNREPRESENTABLE, other.to_string()),
    }
}

/// Validate one `(term, f_qt)`-pairs request body (shared by the
/// disjunctive and conjunctive kinds): strictly ascending distinct
/// terms, all in dictionary, no zero query frequencies.
fn validate_term_pairs(engine: &SearchEngine, terms: &[(TermId, u32)]) -> Result<(), (u8, String)> {
    let num_terms = engine.auth().index().num_terms() as TermId;
    for window in terms.windows(2) {
        if window[0].0 >= window[1].0 {
            return Err((
                wire::errcode::BAD_QUERY,
                "query terms must be strictly ascending (no duplicates)".to_string(),
            ));
        }
    }
    for &(t, f_qt) in terms {
        if t >= num_terms {
            return Err((
                wire::errcode::BAD_QUERY,
                format!("term {t} out of dictionary (m = {num_terms})"),
            ));
        }
        if f_qt == 0 {
            return Err((wire::errcode::BAD_QUERY, format!("term {t} has f_qt = 0")));
        }
    }
    Ok(())
}

/// Turn a decoded request into the `(echo, query, r, want_digests,
/// mode)` tuple, rejecting anything the engine should not be asked to
/// do.
#[allow(clippy::type_complexity)]
fn prepare(
    engine: &SearchEngine,
    request: Request,
    max_r: usize,
) -> Result<(Vec<(TermId, u32)>, Query, usize, bool, QueryMode), (u8, String)> {
    let (pairs, query, r, want_digests, mode) = match request {
        Request::Text {
            text,
            r,
            want_digests,
        } => {
            let query = engine.parse_query(&text).query;
            let pairs: Vec<(TermId, u32)> =
                query.terms.iter().map(|qt| (qt.term, qt.f_qt)).collect();
            (pairs, query, r, want_digests, QueryMode::Disjunctive)
        }
        Request::Terms {
            terms,
            r,
            want_digests,
        } => {
            validate_term_pairs(engine, &terms)?;
            let query = Query::from_term_pairs(engine.auth().index(), &terms);
            (terms, query, r, want_digests, QueryMode::Disjunctive)
        }
        Request::ConjunctiveTerms {
            terms,
            r,
            want_digests,
        } => {
            validate_term_pairs(engine, &terms)?;
            let query = Query::from_term_pairs(engine.auth().index(), &terms);
            (terms, query, r, want_digests, QueryMode::Conjunctive)
        }
    };
    if query.is_empty() {
        return Err((
            wire::errcode::BAD_QUERY,
            "no query terms in dictionary".to_string(),
        ));
    }
    let r = r as usize;
    if r == 0 || r > max_r {
        return Err((
            wire::errcode::BAD_QUERY,
            format!("r = {r} outside the served range 1..={max_r}"),
        ));
    }
    Ok((pairs, query, r, want_digests, mode))
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    warmed: WarmStats,
    shared: Arc<Shared>,
    inner: CoreHandle,
}

/// The per-core shutdown machinery behind a [`ServerHandle`].
enum CoreHandle {
    Threaded(threaded::ThreadedHandle),
    #[cfg(target_os = "linux")]
    Reactor(reactor_core::ReactorHandle),
}

/// The server front: binds, warms, and accepts.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), warm
    /// the caches per `config`, and start accepting in the background
    /// on the configured [`ServerCore`]. Returns immediately; queries
    /// are served until [`ServerHandle::shutdown`] (or drop).
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<SearchEngine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Warm start: populate the sharded LRUs with the hot head of the
        // dictionary before the first connection lands.
        let warm_top_k = config
            .warm_top_k
            .unwrap_or(engine.auth().config().term_cache_capacity);
        let warmed = engine.auth().warm_cache(warm_top_k);
        let pool = engine.auth().serve_pool();
        let shutdown = Arc::new(AtomicBool::new(false));
        let core = config.core;
        let shared = Arc::new(Shared {
            engine,
            pool,
            config,
            metrics: ServerMetrics::default(),
            transport: TransportStats::default(),
            shutdown,
        });
        let inner = match core {
            #[cfg(target_os = "linux")]
            ServerCore::Reactor => {
                CoreHandle::Reactor(reactor_core::start(listener, Arc::clone(&shared))?)
            }
            #[cfg(not(target_os = "linux"))]
            ServerCore::Reactor => {
                // No epoll on this platform; the threaded core is the
                // documented fallback.
                CoreHandle::Threaded(threaded::start(listener, Arc::clone(&shared))?)
            }
            ServerCore::Threaded => {
                CoreHandle::Threaded(threaded::start(listener, Arc::clone(&shared))?)
            }
        };
        Ok(ServerHandle {
            addr,
            warmed,
            shared,
            inner,
        })
    }

    /// Boot the engine's artifact through the snapshot decision tree
    /// ([`crate::auth::boot_authenticated_index`]) and start serving it.
    ///
    /// With [`ServerConfig::snapshot_path`] set and a valid snapshot on
    /// disk, the server is up in near-O(1) — load, verify the owner's
    /// signatures, serve — and `fallback` never runs. When the snapshot
    /// is unconfigured, missing, stale, or corrupt, `fallback` rebuilds
    /// the artifact (and the result is saved back, best effort). Either
    /// way the outcome is visible twice: in the returned
    /// [`BootReport`], and in the
    /// [`boot_snapshot_loads`](ServerMetricsSnapshot::boot_snapshot_loads) /
    /// [`boot_fresh_builds`](ServerMetricsSnapshot::boot_fresh_builds)
    /// counters.
    pub fn start_booted<A, F>(
        corpus: Corpus,
        expected: &AuthConfig,
        fallback: F,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<(ServerHandle, BootReport)>
    where
        A: ToSocketAddrs,
        F: FnOnce() -> crate::AuthenticatedIndex,
    {
        let (auth, report) =
            boot_authenticated_index(config.snapshot_path.as_deref(), expected, fallback);
        let engine = Arc::new(SearchEngine::new(auth, corpus));
        let handle = Server::start(engine, addr, config)?;
        let counter = match report.source {
            BootSource::Snapshot => &handle.shared.metrics.boot_snapshot_loads,
            BootSource::FreshBuild => &handle.shared.metrics.boot_fresh_builds,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok((handle, report))
    }
}

impl ServerHandle {
    /// The bound address (the ephemeral port when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup warming materialized.
    pub fn warmed(&self) -> WarmStats {
        self.warmed
    }

    /// Live counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Transport-level diagnostics: syscalls issued by the serving core
    /// (reads, writes, accepts, poll wakeups). Deliberately **not**
    /// part of [`ServerMetricsSnapshot`] — the two cores are
    /// byte-identical on the metrics contract but necessarily differ
    /// here (that difference is the perf story `bench_pr9` measures).
    pub fn transport_stats(&self) -> TransportStatsSnapshot {
        self.shared.transport.snapshot()
    }

    /// Which core is serving this handle (after any platform fallback).
    pub fn core(&self) -> ServerCore {
        match self.inner {
            CoreHandle::Threaded(_) => ServerCore::Threaded,
            #[cfg(target_os = "linux")]
            CoreHandle::Reactor(_) => ServerCore::Reactor,
        }
    }

    /// Stop accepting, drain in-flight replies, release every
    /// connection, and return the final counters. In-flight requests
    /// finish; idle connections are closed.
    pub fn shutdown(mut self) -> ServerMetricsSnapshot {
        self.shutdown_impl();
        self.shared.metrics.snapshot()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        match &mut self.inner {
            CoreHandle::Threaded(h) => h.shutdown(self.addr),
            #[cfg(target_os = "linux")]
            CoreHandle::Reactor(h) => h.shutdown(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::vo::Mechanism;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_crypto::keys::TEST_KEY_BITS;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_engine(mechanism: Mechanism) -> (Arc<SearchEngine>, crate::verify::VerifierParams) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("the night keeper keeps the keep in the town")
            .add_text("in the big old house in the big old gown")
            .add_text("the house in the town had the big old keep")
            .add_text("where the old night keeper never did sleep")
            .add_text("the night keeper keeps the keep in the night")
            .build();
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish(&corpus, config);
        (
            Arc::new(SearchEngine::new(publication.auth, corpus)),
            publication.verifier_params,
        )
    }

    fn roundtrip(stream: &mut TcpStream, request: &Request) -> wire::Reply {
        let bytes = request.encode_frame().unwrap();
        stream.write_all(&bytes).unwrap();
        read_reply(stream)
    }

    fn read_reply(stream: &mut TcpStream) -> wire::Reply {
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let (kind, len) = wire::decode_frame_header(&header).unwrap();
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        wire::decode_reply_payload(kind, &payload).unwrap()
    }

    #[test]
    fn server_answers_and_shuts_down_cleanly() {
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle =
            Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        assert!(handle.warmed().terms > 0, "startup warmed the term LRU");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper keep".into(),
                r: 3,
                want_digests: false,
            },
        );
        let client = crate::Client::new(params);
        match reply {
            wire::Reply::Ok { terms, response } => {
                assert!(!terms.is_empty());
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests_ok, 1);
        assert_eq!(stats.requests_err, 0);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn bad_requests_get_coded_errors_and_connection_survives() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let m = engine.auth().index().num_terms() as TermId;
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let cases: Vec<(Request, u8)> = vec![
            // Out-of-dictionary term.
            (
                Request::Terms {
                    terms: vec![(m + 5, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Duplicate terms.
            (
                Request::Terms {
                    terms: vec![(1, 1), (1, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Unsorted terms.
            (
                Request::Terms {
                    terms: vec![(3, 1), (1, 1)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Zero query frequency.
            (
                Request::Terms {
                    terms: vec![(1, 0)],
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // r outside the served range.
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: u32::MAX,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            (
                Request::Terms {
                    terms: vec![(1, 1)],
                    r: 0,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
            // Nothing survives dictionary parsing.
            (
                Request::Text {
                    text: "zzzz qqqq".into(),
                    r: 3,
                    want_digests: false,
                },
                wire::errcode::BAD_QUERY,
            ),
        ];
        let n_cases = cases.len() as u64;
        for (request, want_code) in cases {
            match roundtrip(&mut stream, &request) {
                wire::Reply::Err { code, .. } => assert_eq!(code, want_code, "{request:?}"),
                other => panic!("{request:?} → {other:?}"),
            }
        }
        // The same connection still serves a good query afterwards.
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("connection should have survived: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.requests_err, n_cases);
        assert_eq!(stats.requests_ok, 1);
    }

    #[test]
    fn malformed_frames_do_not_kill_the_server() {
        let (engine, _) = test_engine(Mechanism::TraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        // Garbage magic: server replies (or closes) without panicking.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink); // server closes after the error reply
        }
        // A frame advertising an over-cap payload is refused up front.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut header = [0u8; wire::FRAME_HEADER_LEN];
            header[..4].copy_from_slice(&wire::FRAME_MAGIC);
            header[4] = wire::WIRE_VERSION;
            header[5] = wire::kind::REQ_TEXT;
            header[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&header).unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        }
        // Mid-frame hangup: connection just ends.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let good = Request::Text {
                text: "night".into(),
                r: 1,
                want_digests: false,
            }
            .encode_frame()
            .unwrap();
            stream.write_all(&good[..good.len() - 2]).unwrap();
            drop(stream);
        }
        // Unknown frame kind under a valid header: the frame boundary
        // is still known, so the server consumes the payload, answers a
        // coded error, and the SAME connection keeps working (forward
        // compatibility with future kinds).
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&wire::FRAME_MAGIC);
            frame.push(wire::WIRE_VERSION);
            frame.push(0x7f); // no such kind
            frame.extend_from_slice(&3u32.to_le_bytes());
            frame.extend_from_slice(&[1, 2, 3]);
            stream.write_all(&frame).unwrap();
            match read_reply(&mut stream) {
                wire::Reply::Err { code, .. } => assert_eq!(code, wire::errcode::MALFORMED),
                other => panic!("{other:?}"),
            }
            match roundtrip(
                &mut stream,
                &Request::Text {
                    text: "night keeper".into(),
                    r: 2,
                    want_digests: false,
                },
            ) {
                wire::Reply::Ok { .. } => {}
                other => panic!("unknown kind must not kill the connection: {other:?}"),
            }
        }
        // A fresh connection is served normally after all of the above.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("server should have survived: {other:?}"),
        }
        drop(stream);
        let stats = handle.shutdown();
        assert!(stats.requests_err >= 3);
        assert_eq!(stats.requests_ok, 2);
    }

    #[test]
    fn env_override_values_parse_strictly() {
        let parse = |raw| crate::auth::parse_usize_env("AUTHSEARCH_MAX_CONNECTIONS", raw);
        assert_eq!(parse("2"), Ok(2));
        assert_eq!(parse(" 16 "), Ok(16));
        assert_eq!(parse("0"), Ok(0));
        for bad in ["", "   ", "two", "-3"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("AUTHSEARCH_MAX_CONNECTIONS"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn over_cap_connection_is_shed_with_typed_busy() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Admit A (the completed roundtrip proves it is registered).
        let mut a = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(
            &mut a,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("admitted connection must serve: {other:?}"),
        }
        // B lands over the cap: a typed BUSY frame, then close — the
        // refusal arrives unprompted, before B sends a single byte.
        let mut b = TcpStream::connect(handle.addr()).unwrap();
        match read_reply(&mut b) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::BUSY);
                assert!(message.contains("capacity"), "{message}");
            }
            other => panic!("expected BUSY, got {other:?}"),
        }
        let mut rest = Vec::new();
        let _ = b.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing after the BUSY frame");
        // A is unaffected by the shed.
        match roundtrip(
            &mut a,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("shedding must not disturb admitted peers: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1, "only A was admitted");
        assert_eq!(stats.connections_shed, 1);
        assert_eq!(stats.active_highwater, 1);
        assert_eq!(stats.requests_ok, 2);
    }

    #[test]
    fn slow_loris_peer_evicted_by_idle_deadline() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::from_millis(250),
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Three bytes of a valid header, then silence — the classic
        // slow-loris shape that used to park a server thread forever.
        stream.write_all(&wire::FRAME_MAGIC[..3]).unwrap();
        let start = std::time::Instant::now();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::TIMEOUT);
                assert!(message.contains("idle"), "{message}");
            }
            other => panic!("expected TIMEOUT, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "eviction must happen within the deadline, not hang"
        );
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "connection closed after the eviction");
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 1);
        assert_eq!(stats.requests_err, 0, "an eviction is not a request error");
    }

    #[test]
    fn dribbling_peer_is_evicted_by_the_frame_budget() {
        // One byte every 100ms stays under the 200ms per-gap deadline
        // forever — the trickling slow loris. The total frame budget
        // (deadline + len/rate) must evict it anyway.
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::from_millis(200),
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // A valid header declaring a 600-byte payload: budget ≈ 1.2s.
        let header = wire::encode_frame_header(wire::kind::REQ_TEXT, 600).unwrap();
        stream.write_all(&header).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let dribbler = std::thread::spawn(move || {
            for _ in 0..60 {
                if writer.write_all(&[0u8]).is_err() {
                    break; // server evicted us
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let start = std::time::Instant::now();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, .. } => assert_eq!(code, wire::errcode::TIMEOUT),
            other => panic!("expected TIMEOUT, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the frame budget must bound the dribble, took {:?}",
            start.elapsed()
        );
        dribbler.join().unwrap();
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 1);
    }

    #[test]
    fn oversized_request_declaration_is_refused() {
        // 64 MiB frames exist for replies; a *request* claiming more
        // than MAX_REQUEST_PAYLOAD is refused before any buffering (it
        // would otherwise size our allocation and feed the dribble
        // clock a multi-megabyte frame to stretch).
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let header = wire::encode_frame_header(wire::kind::REQ_TERMS, MAX_REQUEST_PAYLOAD + 1)
            .expect("within the wire frame cap");
        stream.write_all(&header).unwrap();
        match read_reply(&mut stream) {
            wire::Reply::Err { code, message } => {
                assert_eq!(code, wire::errcode::MALFORMED);
                assert!(message.contains("request cap"), "{message}");
            }
            other => panic!("expected MALFORMED, got {other:?}"),
        }
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "connection dropped after the refusal");
        handle.shutdown();
    }

    #[test]
    fn zero_idle_deadline_disables_eviction() {
        let (engine, _) = test_engine(Mechanism::TnraMht);
        let handle = Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                idle_deadline: Duration::ZERO,
                poll_interval: Duration::from_millis(10),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Sit silent across many poll ticks; a zero deadline must mean
        // "never evict", not "evict at the first tick".
        std::thread::sleep(Duration::from_millis(120));
        match roundtrip(
            &mut stream,
            &Request::Text {
                text: "night keeper".into(),
                r: 2,
                want_digests: false,
            },
        ) {
            wire::Reply::Ok { .. } => {}
            other => panic!("idle connection must survive: {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.connections_timed_out, 0);
    }

    #[test]
    fn shutdown_drains_in_flight_reply() {
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle =
            Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let request = Request::Text {
            text: "night keeper keep".into(),
            r: 3,
            want_digests: false,
        };
        stream.write_all(&request.encode_frame().unwrap()).unwrap();
        // Give the server time to consume the frame, then shut down
        // while the reply may still be in flight: the drain contract
        // says a request the server accepted is answered.
        std::thread::sleep(Duration::from_millis(150));
        let stats = handle.shutdown();
        assert_eq!(stats.requests_ok, 1, "the in-flight request completed");
        match read_reply(&mut stream) {
            wire::Reply::Ok { terms, response } => {
                let client = crate::Client::new(params);
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("drained reply expected, got {other:?}"),
        }
    }

    #[test]
    fn digest_mode_negotiated_for_tnra_only() {
        // TNRA: the flag is honored — OkDigest with empty contents.
        let (engine, params) = test_engine(Mechanism::TnraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let request = Request::Text {
            text: "night keeper keep".into(),
            r: 3,
            want_digests: true,
        };
        match roundtrip(&mut stream, &request) {
            wire::Reply::OkDigest {
                terms,
                response,
                digests,
            } => {
                assert!(response.contents.is_empty());
                assert_eq!(digests.len(), response.result.entries.len());
                let client = crate::Client::new(params);
                client.verify_terms(&terms, 3, &response).expect("verifies");
            }
            other => panic!("expected OkDigest, got {other:?}"),
        }
        handle.shutdown();
        // TRA: verification hashes delivered contents, so the server
        // falls back to the full echo rather than break every verdict.
        let (engine, _) = test_engine(Mechanism::TraCmht);
        let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        match roundtrip(&mut stream, &request) {
            wire::Reply::Ok { response, .. } => assert!(!response.contents.is_empty()),
            other => panic!("TRA must fall back to the full echo, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn warm_start_is_config_driven() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        let m = engine.auth().index().num_terms();
        // Explicitly disabled warming.
        let cold = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(0),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(cold.warmed(), WarmStats::default());
        cold.shutdown();
        engine.auth().clear_serve_cache();
        // Explicit k.
        let some = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                warm_top_k: Some(2),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(some.warmed().terms, 2);
        some.shutdown();
        engine.auth().clear_serve_cache();
        // Default: capacity-driven (toy dictionary is far below it).
        let auto =
            Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
        assert_eq!(auto.warmed().terms, m);
        auto.shutdown();
    }

    #[test]
    fn both_cores_are_selectable_and_reported() {
        let (engine, _) = test_engine(Mechanism::TnraCmht);
        for core in [ServerCore::Threaded, ServerCore::Reactor] {
            let handle = Server::start(
                Arc::clone(&engine),
                "127.0.0.1:0",
                ServerConfig {
                    core,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            if cfg!(target_os = "linux") {
                assert_eq!(handle.core(), core);
            } else {
                assert_eq!(handle.core(), ServerCore::Threaded);
            }
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            match roundtrip(
                &mut stream,
                &Request::Text {
                    text: "night keeper".into(),
                    r: 2,
                    want_digests: false,
                },
            ) {
                wire::Reply::Ok { .. } => {}
                other => panic!("{core:?} core must serve: {other:?}"),
            }
            drop(stream);
            let stats = handle.shutdown();
            assert_eq!(stats.requests_ok, 1);
        }
    }
}
