//! The event-driven transport core: one thread, one `epoll` instance,
//! every connection a [`Conn`] state machine.
//!
//! The loop owns three kinds of registrations: the listener (accept
//! readiness), the [`Waker`] (pool completions and shutdown), and one
//! per connection (interest derived from the state machine's
//! [`Want`]). Deadlines — idle gaps, total frame budgets, reply flush
//! bounds, shed drains — live in a [`TimerWheel`] keyed by connection
//! id and epoch; entries are never deleted, just outlived: a fired
//! entry whose epoch is stale, or whose connection's real deadline has
//! moved later, is dropped or re-armed. The result is that an *idle*
//! connection costs nothing per poll tick — no thread, no stack, no
//! per-connection syscall — which is what lets one loop hold 10k+
//! parked peers (`tests/server_reactor.rs` smoke-tests this,
//! env-scaled for small CI containers).
//!
//! Query execution still happens on the engine's persistent pool: a
//! complete request is decoded on the loop, dispatched with
//! [`super::execute_job`], and the encoded reply (or its error) comes
//! back through a completion queue + waker. A `threads = 1` deployment
//! degenerates exactly like the threaded core: `submit` runs the job
//! inline and the completion is queued before `submit` returns.

use super::conn::{Conn, ConnEnv, ConnStream, EncodedReply, Step, Want};
use super::{busy_message, effective_write_timeout, execute_job, prepare_job, Shared};
use crate::cache::lock_recover;
use crate::reactor::{Events, Interest, Poll, TimerEntry, TimerWheel, Token, Waker};
use crate::wire;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Token of the accept listener.
const TOKEN_LISTENER: Token = Token(0);
/// Token of the waker's read half.
const TOKEN_WAKER: Token = Token(1);
/// Connection ids start here; `Token(id)` for a connection is its id
/// (ids are never reused, so a late event for a closed connection
/// simply misses the map).
const FIRST_CONN_ID: u64 = 2;
/// Timer-wheel id of the "resume the paused listener" entry.
const LISTENER_TIMER_ID: u64 = u64::MAX;

/// A finished (or failed, or panicked) pool job for one connection.
struct Completion {
    conn_id: u64,
    /// `Some(Ok)` = encoded header + body; `Some(Err)` = response not
    /// representable; `None` = the worker panicked.
    result: Option<EncodedReply>,
}

/// State shared between the loop thread, pool workers, and the
/// shutdown path.
struct ReactorInner {
    waker: Waker,
    completions: Mutex<VecDeque<Completion>>,
}

/// Delivers exactly one completion for a dispatched job — through
/// [`CompletionGuard::deliver`] on success, or through `Drop` when the
/// job panics (the pool catches the unwind; this guard is what turns
/// that into an INTERNAL reply instead of a connection parked forever
/// in `Dispatched`).
struct CompletionGuard {
    inner: Arc<ReactorInner>,
    conn_id: u64,
    delivered: bool,
}

impl CompletionGuard {
    fn deliver(&mut self, result: Option<EncodedReply>) {
        if self.delivered {
            return;
        }
        self.delivered = true;
        lock_recover(&self.inner.completions).push_back(Completion {
            conn_id: self.conn_id,
            result,
        });
        self.inner.waker.wake();
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        self.deliver(None);
    }
}

/// Shutdown machinery for the reactor core.
pub(super) struct ReactorHandle {
    thread: Option<JoinHandle<()>>,
    inner: Arc<ReactorInner>,
}

impl ReactorHandle {
    /// Wake the loop (the caller has already raised the shutdown flag)
    /// and wait for it to drain in-flight replies and exit.
    pub(super) fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.inner.waker.wake();
            // lint:allow(blocking-in-reactor): shutdown runs on the caller's thread after the loop exits, never inside it
            let joined = thread.join();
            debug_assert!(joined.is_ok(), "reactor thread panicked");
        }
    }
}

/// Build the poll + waker (propagating setup errors to `Server::start`)
/// and spawn the loop thread.
pub(super) fn start(listener: TcpListener, shared: Arc<Shared>) -> io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    let waker = Waker::new()?;
    poll.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poll.register(waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
    let inner = Arc::new(ReactorInner {
        waker,
        completions: Mutex::new(VecDeque::new()),
    });
    let thread = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("authsearch-reactor".into())
            .spawn(move || {
                let mut event_loop = EventLoop::new(poll, listener, shared, inner);
                event_loop.run();
            })?
    };
    Ok(ReactorHandle {
        thread: Some(thread),
        inner,
    })
}

/// One registered connection: the state machine plus the loop-side
/// bookkeeping the machine itself doesn't need to know about.
struct Slot {
    conn: Conn<TcpStream>,
    fd: RawFd,
    /// Interest currently registered with epoll (re-registered only on
    /// change).
    interest: Interest,
    /// The instant the currently-armed wheel entry targets, if any.
    armed_until: Option<Instant>,
    /// Whether this is a shed handshake (counted against the shed
    /// budget, not the admission registry).
    shed: bool,
}

struct EventLoop {
    poll: Poll,
    /// `None` once shutdown begins (dropping it closes + deregisters).
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    inner: Arc<ReactorInner>,
    conns: HashMap<u64, Slot>,
    next_id: u64,
    wheel: TimerWheel,
    /// Set while the listener is deaf after an accept error (EMFILE);
    /// a wheel entry re-enables it.
    listener_paused: bool,
    /// Live admitted connections — the reactor's equivalent of the
    /// threaded core's registry size, and the value the admission cap
    /// and `active_highwater` are checked against.
    admitted: u64,
    /// Live shed handshakes, bounded by
    /// [`super::MAX_SHED_HANDSHAKES`].
    shed_live: u64,
    shutting_down: bool,
}

/// Borrow the [`ConnEnv`] out of the shared state (a free function so
/// the borrow is scoped to a local clone of the `Arc`, not to the
/// whole event loop).
fn conn_env(shared: &Shared) -> ConnEnv<'_> {
    ConnEnv {
        metrics: &shared.metrics,
        transport: &shared.transport,
        idle_deadline: shared.config.idle_deadline,
        write_timeout: effective_write_timeout(&shared.config),
    }
}

impl EventLoop {
    fn new(
        poll: Poll,
        listener: TcpListener,
        shared: Arc<Shared>,
        inner: Arc<ReactorInner>,
    ) -> EventLoop {
        let tick = shared.config.poll_interval;
        EventLoop {
            poll,
            listener: Some(listener),
            shared,
            inner,
            conns: HashMap::new(),
            next_id: FIRST_CONN_ID,
            wheel: TimerWheel::new(512, tick),
            listener_paused: false,
            admitted: 0,
            shed_live: 0,
            shutting_down: false,
        }
    }

    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        let mut expired: Vec<TimerEntry> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) && !self.shutting_down {
                self.begin_shutdown();
            }
            if self.shutting_down && self.conns.is_empty() {
                return;
            }
            let now = Instant::now();
            let mut timeout = self.wheel.next_timeout(now);
            if self.shutting_down {
                // Safety net: re-sweep at the poll interval while
                // draining, so a missed edge cannot park shutdown.
                let cap = self.shared.config.poll_interval;
                timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
            }
            self.shared.transport.polls.fetch_add(1, Ordering::Relaxed);
            match self.poll.poll(&mut events, timeout) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // A broken poll fd cannot be recovered from inside
                    // the loop; sleep one interval to avoid spinning
                    // and re-check the shutdown flag.
                    // lint:allow(blocking-in-reactor): deliberate back-off on an unrecoverable poll fd; nothing else can make progress
                    std::thread::sleep(self.shared.config.poll_interval);
                    continue;
                }
            }
            let mut accept_ready = false;
            let mut woken = false;
            let mut ready_conns: Vec<u64> = Vec::new();
            for event in events.iter() {
                match event.token() {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => woken = true,
                    Token(id) => ready_conns.push(id),
                }
            }
            if woken {
                self.inner.waker.drain();
            }
            // Completions first: they turn Dispatched connections into
            // Writing ones whose replies flush this same round.
            self.drain_completions();
            for id in ready_conns {
                self.conn_event(id);
            }
            if accept_ready {
                self.accept_ready();
            }
            // Timers last, so a byte that arrived this round pushes its
            // connection's deadline before the expiry check sees it.
            expired.clear();
            self.wheel.advance(Instant::now(), &mut expired);
            for entry in expired.drain(..) {
                self.timer_fired(entry);
            }
            if self.shared.shutdown.load(Ordering::Acquire) && !self.shutting_down {
                self.begin_shutdown();
            }
            if self.shutting_down {
                self.shutdown_sweep();
            }
        }
    }

    /// Stop accepting and close every connection that is not owed a
    /// reply (threaded parity: blocked readers see the flag and close;
    /// handlers mid-compute or mid-write finish and deliver).
    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        // Dropping the listener closes its fd, which deregisters it.
        self.listener = None;
    }

    /// During shutdown: reap connections that have drifted back to a
    /// reading state (their owed replies are flushed).
    fn shutdown_sweep(&mut self) {
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, slot)| !slot.conn.is_dispatched() && !slot.conn.is_writing())
            .map(|(id, _)| *id)
            .collect();
        for id in doomed {
            self.close_conn(id);
        }
    }

    /// The listener is readable: accept (and admit or shed) until it
    /// runs dry.
    fn accept_ready(&mut self) {
        loop {
            if self.shutting_down {
                return;
            }
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            self.shared
                .transport
                .accepts
                .fetch_add(1, Ordering::Relaxed);
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // EMFILE and friends: go deaf for one poll interval
                    // instead of spinning on a resource-starved host
                    // (the threaded core sleeps here; the loop must
                    // not, so it parks the listener on the wheel).
                    self.pause_listener();
                    return;
                }
            }
        }
    }

    fn pause_listener(&mut self) {
        if self.listener_paused {
            return;
        }
        if let Some(listener) = self.listener.as_ref() {
            if self
                .poll
                .reregister(listener.as_raw_fd(), TOKEN_LISTENER, Interest::NONE)
                .is_ok()
            {
                self.listener_paused = true;
                self.wheel.insert(
                    Instant::now() + self.shared.config.poll_interval,
                    TimerEntry {
                        id: LISTENER_TIMER_ID,
                        epoch: 0,
                    },
                );
            }
        }
    }

    fn resume_listener(&mut self) {
        if !self.listener_paused {
            return;
        }
        if let Some(listener) = self.listener.as_ref() {
            if self
                .poll
                .reregister(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)
                .is_err()
            {
                // Stay paused: a failed re-arm would otherwise leave
                // the listener permanently deaf. The next close_conn
                // retries through this same path.
                return;
            }
        }
        self.listener_paused = false;
        self.accept_ready();
    }

    /// One accepted socket: admit it as a connection, or shed it with
    /// a BUSY handshake (silently under a connect flood), with the
    /// same counter order as the threaded acceptor.
    fn admit(&mut self, stream: TcpStream) {
        let shared = Arc::clone(&self.shared);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let max = shared.config.max_connections;
        if max > 0 && self.admitted >= max as u64 {
            shared
                .metrics
                .connections_shed
                .fetch_add(1, Ordering::Relaxed);
            if self.shed_live >= super::MAX_SHED_HANDSHAKES {
                // Connect flood: the polite path is saturated; dropping
                // is the only shed that cannot be weaponized.
                return;
            }
            // lint:allow(swallowed-result): TCP_NODELAY is a latency knob; a shed handshake works without it
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let conn = Conn::new_shed(stream, &busy_message(max), Instant::now());
            self.shed_live += 1;
            self.install(conn, fd, true);
            return;
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        // lint:allow(swallowed-result): TCP_NODELAY is a latency knob; the connection is correct without it
        let _ = stream.set_nodelay(shared.config.nodelay);
        let fd = stream.as_raw_fd();
        let conn = Conn::new(stream, Instant::now());
        self.admitted += 1;
        shared
            .metrics
            .active_highwater
            .fetch_max(self.admitted, Ordering::Relaxed);
        self.install(conn, fd, false);
    }

    /// Register a new connection and give it one optimistic pump (its
    /// first bytes may already be buffered; for a shed, the BUSY frame
    /// almost always flushes right here).
    fn install(&mut self, conn: Conn<TcpStream>, fd: RawFd, shed: bool) {
        let id = self.next_id;
        self.next_id += 1;
        let interest = want_interest(conn.want());
        if self.poll.register(fd, Token(id), interest).is_err() {
            // Registration failure: undo the liveness accounting (the
            // `connections`/`connections_shed` counters stand — the
            // connection did arrive) and drop the socket.
            if shed {
                self.shed_live = self.shed_live.saturating_sub(1);
            } else {
                self.admitted = self.admitted.saturating_sub(1);
            }
            return;
        }
        self.conns.insert(
            id,
            Slot {
                conn,
                fd,
                interest,
                armed_until: None,
                shed,
            },
        );
        self.pump(id);
    }

    /// Readiness (or error/hangup) for one connection.
    fn conn_event(&mut self, id: u64) {
        let Some(slot) = self.conns.get(&id) else {
            return; // stale event for an id already closed
        };
        if slot.conn.is_dispatched() {
            // Deliberately ignored: the threaded core also finishes
            // computing before discovering a dead peer, which is what
            // keeps `requests_ok` identical across cores. The write
            // after completion will surface the hangup.
            return;
        }
        self.pump(id);
    }

    /// Drive one connection's state machine as far as it will go
    /// without blocking, then settle its registration and deadline.
    fn pump(&mut self, id: u64) {
        let shared = Arc::clone(&self.shared);
        let env = conn_env(&shared);
        loop {
            let Some(slot) = self.conns.get_mut(&id) else {
                return;
            };
            match slot.conn.want() {
                Want::Read => match slot.conn.on_readable(&env) {
                    Step::Idle => {
                        if matches!(slot.conn.want(), Want::Read) {
                            break;
                        }
                        // An error reply began (bad header / oversize):
                        // keep pumping to flush it.
                    }
                    Step::Close => return self.close_conn(id),
                    Step::Frame { kind } => self.frame_ready(id, kind, &env),
                },
                Want::Write => match slot.conn.on_writable(&env) {
                    Step::Idle => {
                        if slot.conn.is_writing() {
                            break; // socket full; wait for writable
                        }
                        // Flushed into a new state; keep pumping (the
                        // next pipelined request may be buffered).
                    }
                    Step::Close => return self.close_conn(id),
                    Step::Frame { .. } => break,
                },
                Want::None => break,
            }
        }
        self.settle(id, &env);
    }

    /// A complete request frame: decode + validate on the loop, then
    /// either dispatch to the pool or begin the coded error reply.
    fn frame_ready(&mut self, id: u64, kind: u8, env: &ConnEnv<'_>) {
        let shared = Arc::clone(&self.shared);
        let Some(slot) = self.conns.get_mut(&id) else {
            return;
        };
        match prepare_job(
            kind,
            slot.conn.request(),
            &shared.engine,
            shared.config.max_r,
        ) {
            Ok(job) => {
                let mut buf = slot.conn.take_reply_buf();
                slot.conn.begin_dispatch();
                let engine = Arc::clone(&shared.engine);
                let inner = Arc::clone(&self.inner);
                shared.pool.submit(move || {
                    let mut guard = CompletionGuard {
                        inner,
                        conn_id: id,
                        delivered: false,
                    };
                    let result = execute_job(&engine, &job, &mut buf)
                        .and_then(|reply_kind| wire::encode_frame_header(reply_kind, buf.len()))
                        .map(|head| (head, std::mem::take(&mut buf)));
                    guard.deliver(Some(result));
                });
            }
            Err((code, message)) => {
                slot.conn.begin_request_error(env, code, &message);
            }
        }
    }

    /// Apply queued pool completions and flush the replies they carry.
    fn drain_completions(&mut self) {
        loop {
            let completion = lock_recover(&self.inner.completions).pop_front();
            let Some(completion) = completion else {
                return;
            };
            let shared = Arc::clone(&self.shared);
            let env = conn_env(&shared);
            let Some(slot) = self.conns.get_mut(&completion.conn_id) else {
                continue; // connection closed at shutdown; drop the reply
            };
            match slot.conn.on_completion(&env, completion.result) {
                Step::Close => self.close_conn(completion.conn_id),
                _ => self.pump(completion.conn_id),
            }
        }
    }

    /// A wheel entry came due: listener resume, or a connection
    /// deadline candidate (re-armed if the real deadline moved).
    fn timer_fired(&mut self, entry: TimerEntry) {
        if entry.id == LISTENER_TIMER_ID {
            self.resume_listener();
            return;
        }
        let shared = Arc::clone(&self.shared);
        let env = conn_env(&shared);
        let Some(slot) = self.conns.get_mut(&entry.id) else {
            return;
        };
        if entry.epoch != slot.conn.timer_epoch {
            return; // superseded by a newer arming
        }
        slot.armed_until = None;
        match slot.conn.check_deadline(&env, Instant::now()) {
            Step::Close => self.close_conn(entry.id),
            // Either nothing due (deadline moved — settle re-arms) or
            // an eviction reply began (pump flushes it).
            _ => self.pump(entry.id),
        }
    }

    /// Reconcile one connection's epoll interest and wheel entry with
    /// its state machine's current wants.
    fn settle(&mut self, id: u64, env: &ConnEnv<'_>) {
        let Some(slot) = self.conns.get_mut(&id) else {
            return;
        };
        let desired = want_interest(slot.conn.want());
        if desired != slot.interest {
            if self.poll.reregister(slot.fd, Token(id), desired).is_err() {
                return self.close_conn(id);
            }
            slot.interest = desired;
        }
        match slot.conn.deadline(env) {
            None => {
                // No deadline wanted (dispatched); any armed entry goes
                // stale via the epoch check.
                if slot.armed_until.take().is_some() {
                    slot.conn.timer_epoch += 1;
                }
            }
            Some(deadline) => {
                // Keep a later-armed entry: when it fires early the
                // check re-arms. Only arm anew when nothing is armed or
                // the deadline moved *earlier* than the armed entry.
                let needs_arm = match slot.armed_until {
                    None => true,
                    Some(armed) => deadline < armed,
                };
                if needs_arm {
                    slot.conn.timer_epoch += 1;
                    let entry = TimerEntry {
                        id,
                        epoch: slot.conn.timer_epoch,
                    };
                    self.wheel.insert(deadline, entry);
                    slot.armed_until = Some(deadline);
                }
            }
        }
    }

    /// Remove and drop one connection (closing the socket deregisters
    /// it); wheel entries go stale and liveness counters roll back.
    fn close_conn(&mut self, id: u64) {
        if let Some(slot) = self.conns.remove(&id) {
            // lint:allow(swallowed-result): dropping the socket closes the fd, which deregisters it implicitly
            let _ = self.poll.deregister(slot.fd);
            if slot.shed {
                self.shed_live = self.shed_live.saturating_sub(1);
            } else {
                self.admitted = self.admitted.saturating_sub(1);
            }
        }
    }
}

/// Map a state machine's [`Want`] onto an epoll [`Interest`].
fn want_interest(want: Want) -> Interest {
    match want {
        Want::Read => Interest::READABLE,
        Want::Write => Interest::WRITABLE,
        Want::None => Interest::NONE,
    }
}

// Quiet the unused-import lint on ConnStream: the trait is used via
// the Conn<TcpStream> methods' bounds.
#[allow(unused)]
fn _assert_tcp_is_conn_stream<T: ConnStream>() {}
