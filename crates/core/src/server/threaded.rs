//! The thread-per-connection transport core: a background acceptor
//! hands each admitted connection its own OS thread, which owns the
//! socket and does blocking framing I/O with a read-timeout poll tick.
//!
//! This is the portable fallback core (and the semantic reference the
//! reactor core is held byte-identical to): it needs nothing beyond
//! std's blocking sockets, at the cost of one thread — stack,
//! scheduler slot, and a poll-tick wakeup every
//! [`ServerConfig::poll_interval`](super::ServerConfig::poll_interval)
//! — per connection.

use super::{
    busy_message, effective_write_timeout, execute_job, frame_budget, idle_eviction_message,
    oversize_message, prepare_job, unrepresentable, QueryJob, Shared, MAX_REQUEST_PAYLOAD,
    MAX_SHED_HANDSHAKES, WORKER_FAILED,
};
use crate::cache::lock_recover;
use crate::wire;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One live connection's registry slot: the monitoring socket clone
/// (for unblocking reads at shutdown) and the handler thread (for
/// joining; `None` briefly, between registration and spawn).
type ConnEntry = (TcpStream, Option<JoinHandle<()>>);

/// State shared by the acceptor and every connection thread.
struct ThreadedState {
    shared: Arc<Shared>,
    /// Live connections by id. Each handler removes its own entry as
    /// it exits, so an idle server holds no fds or join handles for
    /// past connections — the map's size tracks *live* connections
    /// only.
    connections: Mutex<std::collections::HashMap<u64, ConnEntry>>,
    /// Shed handshakes currently in flight (each owns a short-lived
    /// thread writing the BUSY frame); bounded by
    /// [`MAX_SHED_HANDSHAKES`] so a connect flood cannot turn the
    /// refusal path itself into a thread bomb.
    shedding: AtomicU64,
}

/// Shutdown machinery for the threaded core.
pub(super) struct ThreadedHandle {
    acceptor: Option<JoinHandle<()>>,
    state: Arc<ThreadedState>,
}

/// Spawn the acceptor; the caller has already bound the listener and
/// set the shutdown flag infrastructure up in `shared`.
pub(super) fn start(listener: TcpListener, shared: Arc<Shared>) -> io::Result<ThreadedHandle> {
    // Nonblocking accept is what lets shutdown interrupt the loop; if
    // the flag cannot be set, fail startup loudly rather than running
    // a server whose shutdown can hang.
    listener.set_nonblocking(true)?;
    let state = Arc::new(ThreadedState {
        shared,
        connections: Mutex::new(std::collections::HashMap::new()),
        shedding: AtomicU64::new(0),
    });
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("authsearch-acceptor".into())
            .spawn(move || accept_loop(listener, state))?
    };
    Ok(ThreadedHandle {
        acceptor: Some(acceptor),
        state,
    })
}

impl ThreadedHandle {
    /// Stop accepting, unblock and join every connection thread, join
    /// the acceptor. The caller has already raised the shutdown flag.
    pub(super) fn shutdown(&mut self, addr: SocketAddr) {
        if self.acceptor.is_none() {
            return;
        }
        // Fast-path wakeup for the acceptor; purely an optimization —
        // the nonblocking accept loop re-checks the flag every poll
        // interval regardless, so a failed connect (fd exhaustion)
        // cannot hang shutdown.
        // lint:allow(swallowed-result): wake-up connect is best-effort by design (see comment above)
        let _ = TcpStream::connect(addr);
        if let Some(acceptor) = self.acceptor.take() {
            let joined = acceptor.join();
            debug_assert!(joined.is_ok(), "acceptor thread panicked");
        }
        // Graceful drain: close only the **read** side first. Blocked
        // readers wake with EOF (and the poll ticks observe the flag),
        // but a handler that already consumed a request keeps a working
        // write side, so its in-flight reply is delivered before the
        // join below — shutting down never swallows an answer the
        // server already owed.
        let connections = std::mem::take(&mut *lock_recover(&self.state.connections));
        for (stream, _) in connections.values() {
            // lint:allow(swallowed-result): the peer may already have closed; EOF reaches the handler either way
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, (stream, handle)) in connections {
            if let Some(handle) = handle {
                let joined = handle.join();
                debug_assert!(joined.is_ok(), "connection handler panicked");
            }
            // lint:allow(swallowed-result): final hard close on a socket that may already be gone
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Write `bytes` completely within a **total** budget of `bound`. The
/// socket's own write timeout caps any single stalled `write(2)`; the
/// elapsed check caps the sum, so a trickle-reading peer cannot stretch
/// one reply indefinitely by letting each call make token progress
/// (worst case ≈ `bound` plus one socket write timeout).
fn write_all_bounded(
    mut stream: &TcpStream,
    bytes: &[u8],
    bound: Duration,
    shared: &Shared,
) -> io::Result<()> {
    let start = std::time::Instant::now();
    let mut written = 0;
    while written < bytes.len() {
        if start.elapsed() >= bound {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "peer not draining its replies",
            ));
        }
        shared.transport.writes.fetch_add(1, Ordering::Relaxed);
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0")),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Accept until shutdown; one OS thread per connection. The listener
/// runs **nonblocking** with a poll interval, so shutdown can never
/// hang on a blocked `accept` — the throwaway self-connect in shutdown
/// is only a fast path, not a correctness requirement (it can fail
/// under fd exhaustion, exactly when an operator is most likely to be
/// shutting the server down).
fn accept_loop(listener: TcpListener, state: Arc<ThreadedState>) {
    let shared = Arc::clone(&state.shared);
    let mut next_id = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        shared.transport.accepts.fetch_add(1, Ordering::Relaxed);
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // WouldBlock is the idle tick; any other error (e.g.
                // EMFILE under fd exhaustion) also waits out the poll
                // interval — retrying immediately would spin a full
                // core exactly when the host is resource-starved.
                shared.transport.polls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(shared.config.poll_interval);
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // The listener's nonblocking flag is inherited by accepted
        // sockets on some platforms; connection I/O must block (with a
        // read timeout) instead. A socket stuck nonblocking would spin
        // its handler thread on WouldBlock, so refuse it outright.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // Admission: at the cap, shed this connection with a typed BUSY
        // reply instead of parking another thread on it. The registry
        // holds live connections only (handlers self-prune on exit), so
        // its size *is* the live count.
        let live = lock_recover(&state.connections).len();
        if shared.config.max_connections > 0 && live >= shared.config.max_connections {
            shed_connection(stream, &state);
            continue;
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let monitor = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let id = next_id;
        next_id += 1;
        // Register before spawning: the handler removes its own entry
        // when it exits, and removal of a not-yet-registered entry
        // would leak the monitor fd.
        {
            let mut connections = lock_recover(&state.connections);
            connections.insert(id, (monitor, None));
            shared
                .metrics
                .active_highwater
                .fetch_max(connections.len() as u64, Ordering::Relaxed);
        }
        let spawned = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("authsearch-conn-{id}"))
                .spawn(move || handle_connection(stream, state, id))
        };
        let mut connections = lock_recover(&state.connections);
        match spawned {
            // The handler may already have finished and removed its
            // entry — only fill the slot if it is still present.
            Ok(handle) => {
                if let Some(entry) = connections.get_mut(&id) {
                    entry.1 = Some(handle);
                }
            }
            Err(_) => {
                connections.remove(&id);
            }
        }
    }
}

/// Refuse one over-cap connection: typed BUSY reply, FIN (not RST),
/// bounded drain, close. Runs on a detached short-lived thread so the
/// acceptor never blocks on a slow refused peer.
fn shed_connection(stream: TcpStream, state: &Arc<ThreadedState>) {
    let shared = &state.shared;
    shared
        .metrics
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let inflight = state.shedding.fetch_add(1, Ordering::AcqRel);
    if inflight >= MAX_SHED_HANDSHAKES {
        // Connect flood: the polite path is saturated; dropping is the
        // only shed that cannot be weaponized against the acceptor.
        state.shedding.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let outer = Arc::clone(state);
    let state = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("authsearch-shed".into())
        .spawn(move || {
            let shared = &state.shared;
            let message = busy_message(shared.config.max_connections);
            // lint:allow(swallowed-result): TCP_NODELAY is a latency knob; the BUSY frame is correct without it
            let _ = stream.set_nodelay(true);
            if stream
                .set_write_timeout(Some(Duration::from_millis(500)))
                .is_err()
            {
                // Without a write bound a dead peer could park this
                // shed thread forever; drop silently instead.
                return;
            }
            if let Ok(bytes) = wire::encode_err_reply(wire::errcode::BUSY, &message) {
                shared.transport.writes.fetch_add(1, Ordering::Relaxed);
                if (&stream).write_all(&bytes).is_ok() {
                    shared
                        .metrics
                        .bytes_out
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                }
            }
            // FIN first, then consume whatever request bytes are already
            // in our receive buffer: closing with unread data provokes
            // an RST on many stacks, which can wipe the BUSY frame out
            // of the peer's receive buffer before it is read. The drain
            // is bounded — a peer that keeps talking gets cut off.
            // lint:allow(swallowed-result): half-close on a socket the peer may already have reset
            let _ = stream.shutdown(Shutdown::Write);
            if stream
                .set_read_timeout(Some(Duration::from_millis(100)))
                .is_err()
            {
                // An unbounded drain read could block forever; skip the
                // polite drain (the BUSY frame and FIN are already out).
                return;
            }
            let mut sink = [0u8; 1024];
            for _ in 0..64 {
                match (&stream).read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            state.shedding.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        outer.shedding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Serve one connection, then close the underlying socket explicitly —
/// the acceptor holds a monitoring clone of it (for shutdown
/// unblocking), so dropping our handle alone would leave the peer
/// waiting on a connection that is already dead.
fn handle_connection(stream: TcpStream, state: Arc<ThreadedState>, id: u64) {
    connection_loop(&stream, &state.shared);
    // lint:allow(swallowed-result): explicit close of a socket the peer may already have reset
    let _ = stream.shutdown(Shutdown::Both);
    // Self-prune: drop the monitor clone (and our registry slot) so an
    // idle server holds no resources for finished connections.
    lock_recover(&state.connections).remove(&id);
}

/// Why a [`read_full`] call stopped short of filling its buffer.
enum ReadAbort {
    /// EOF before the first byte: the peer closed cleanly between frames.
    CleanEof,
    /// No byte arrived within the idle deadline — the slow-loris shape
    /// (or a parked connection); the caller owes the peer a typed
    /// TIMEOUT reply before closing.
    IdleExpired,
    /// Server shutdown, mid-frame EOF, or a socket error; just close.
    Fatal,
}

/// Read frames and answer them until the peer hangs up, the bytes stop
/// making sense, the idle deadline expires, or the server shuts down.
/// Never panics on input.
fn connection_loop(stream: &TcpStream, shared: &Arc<Shared>) {
    // Both timeouts are non-optional: the read timeout is the shutdown
    // poll tick and the dribble clock, and a blocked `write` cannot be
    // interrupted, so without the write bound one non-draining peer
    // would hang the graceful shutdown (which waits for in-flight
    // replies). A socket that cannot be bounded is not served at all.
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    // Zero falls back to the default instead of meaning "unbounded".
    let write_timeout = effective_write_timeout(&shared.config);
    if stream.set_write_timeout(Some(write_timeout)).is_err() {
        return;
    }
    // lint:allow(swallowed-result): TCP_NODELAY is a latency knob; the connection is correct without it
    let _ = stream.set_nodelay(shared.config.nodelay);
    // The idle clock restarts at every received byte, so a legitimately
    // slow sender is never evicted mid-frame for link speed — but
    // per-gap resets alone would let a peer *dribble* one byte per
    // almost-deadline and stretch a frame indefinitely, so read_full
    // additionally enforces a total per-buffer budget (frame_budget: a
    // minimum average byte rate). It also restarts at every written
    // reply (below), so server compute time is never charged to the
    // peer's idle budget.
    let mut last_byte = std::time::Instant::now();
    loop {
        // Frame header (tolerating read-timeout ticks between frames).
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        match read_full(stream, &mut header, shared, &mut last_byte) {
            Ok(()) => {}
            Err(ReadAbort::CleanEof | ReadAbort::Fatal) => return,
            Err(ReadAbort::IdleExpired) => return evict_idle(stream, shared),
        }
        // Lenient header parse: magic, version, and payload length must
        // check out (without them the frame boundary is unknowable and
        // the connection must drop), but an *unknown kind* still has a
        // trustworthy length — its payload is consumed below and
        // `answer` turns it into a coded error reply, keeping the
        // connection alive for forward compatibility.
        let (kind, len) = match wire::decode_frame_header_any(&header) {
            Ok(parsed) => parsed,
            Err(e) => {
                // Un-synchronizable: reply if possible, then drop the
                // connection (we can no longer find frame boundaries).
                // lint:allow(swallowed-result): best-effort courtesy reply; the connection is dropped either way
                let _ = send_error_frame(stream, shared, wire::errcode::MALFORMED, &e.to_string());
                return;
            }
        };
        // Server-side request cap, far below the wire format's 64 MiB
        // frame cap (which replies legitimately need): the largest
        // encodable request is ~512 KiB of term pairs, so a bigger
        // declaration is either garbage or an attempt to size our
        // buffer — and consuming it would hand the dribble clock a
        // 64 Mi-byte frame to stretch. Refuse and drop.
        if len > MAX_REQUEST_PAYLOAD {
            // lint:allow(swallowed-result): best-effort courtesy reply; the connection is dropped either way
            let _ = send_error_frame(
                stream,
                shared,
                wire::errcode::MALFORMED,
                &oversize_message(len),
            );
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full(stream, &mut payload, shared, &mut last_byte) {
            Ok(()) => {}
            // Mid-frame EOF: the peer died inside a frame; just close.
            Err(ReadAbort::CleanEof | ReadAbort::Fatal) => return,
            Err(ReadAbort::IdleExpired) => return evict_idle(stream, shared),
        }
        shared
            .metrics
            .bytes_in
            .fetch_add((wire::FRAME_HEADER_LEN + len) as u64, Ordering::Relaxed);
        let bytes = match answer(kind, &payload, shared) {
            Ok(bytes) => bytes,
            Err((code, message)) => {
                if send_error_frame(stream, shared, code, &message).is_err() {
                    return;
                }
                // Serving the (failed) request consumed wall-clock the
                // peer has no control over; don't charge it as idleness.
                last_byte = std::time::Instant::now();
                continue;
            }
        };
        shared
            .metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
        match write_all_bounded(stream, &bytes, write_timeout, shared) {
            Ok(()) => {}
            Err(e) => {
                if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock {
                    // A non-draining peer is the write-side slow loris;
                    // count the eviction (no frame can tell it so — the
                    // pipe is the problem).
                    shared
                        .metrics
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        // Restart the idle clock only after the reply has fully
        // drained: engine compute time AND our own (bounded) write time
        // are the server's wall-clock, not the peer's silence — its
        // next-request budget starts now.
        last_byte = std::time::Instant::now();
    }
}

/// Decode, validate, and execute one request on the persistent pool,
/// returning the encoded reply frame or an error `(code, message)`.
/// Validation, execution, encoding, and error mapping all go through
/// the helpers in [`super`] shared with the reactor core, so the two
/// cores reply byte-identically by construction.
fn answer(kind: u8, payload: &[u8], shared: &Arc<Shared>) -> Result<Vec<u8>, (u8, String)> {
    // Validate before spending engine time.
    let job: QueryJob = prepare_job(kind, payload, &shared.engine, shared.config.max_r)?;
    // Dispatch onto the persistent pool: connection threads do I/O,
    // pool workers do crypto. The channel observes completion; a
    // panicking worker drops the sender, which surfaces as a coded
    // internal error on this connection only.
    let (tx, rx) = mpsc::channel();
    let engine = Arc::clone(&shared.engine);
    shared.pool.submit(move || {
        let mut body = Vec::new();
        let bytes = execute_job(&engine, &job, &mut body).and_then(|reply_kind| {
            let header = wire::encode_frame_header(reply_kind, body.len())?;
            let mut frame = Vec::with_capacity(header.len() + body.len());
            frame.extend_from_slice(&header);
            frame.extend_from_slice(&body);
            Ok(frame)
        });
        // lint:allow(swallowed-result): a send error means the receiver gave up; recv() below reports that path
        let _ = tx.send(bytes);
    });
    match rx.recv() {
        Ok(Ok(bytes)) => Ok(bytes),
        Ok(Err(e)) => Err(unrepresentable(e)),
        Err(_) => Err((wire::errcode::INTERNAL, WORKER_FAILED.to_string())),
    }
}

fn send_error_frame(
    mut stream: &TcpStream,
    shared: &Arc<Shared>,
    code: u8,
    message: &str,
) -> io::Result<()> {
    shared.metrics.requests_err.fetch_add(1, Ordering::Relaxed);
    let bytes = wire::encode_err_reply(code, message)
        .expect("error replies are always representable (message truncated to u16)");
    shared
        .metrics
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    shared.transport.writes.fetch_add(1, Ordering::Relaxed);
    stream.write_all(&bytes)
}

/// Fill `buf` completely, tolerating read-timeout ticks. At every tick
/// the shutdown flag, the per-gap idle deadline, and the total
/// [`frame_budget`] are re-checked — a peer that has sent nothing for
/// [`ServerConfig::idle_deadline`](super::ServerConfig::idle_deadline),
/// or is dribbling below the minimum frame rate, is reported as
/// [`ReadAbort::IdleExpired`] so the caller can answer it with a typed
/// TIMEOUT frame instead of holding the thread forever (the slow-loris
/// fix, both the silent and the trickling variant). `last_byte`
/// restarts at every received byte.
fn read_full(
    mut stream: &TcpStream,
    buf: &mut [u8],
    shared: &Arc<Shared>,
    last_byte: &mut std::time::Instant,
) -> Result<(), ReadAbort> {
    let started = std::time::Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        shared.transport.reads.fetch_add(1, Ordering::Relaxed);
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    ReadAbort::CleanEof
                } else {
                    ReadAbort::Fatal // peer closed mid-frame
                });
            }
            Ok(n) => {
                filled += n;
                *last_byte = std::time::Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                shared.transport.polls.fetch_add(1, Ordering::Relaxed);
                if shared.shutdown.load(Ordering::Acquire) {
                    return Err(ReadAbort::Fatal);
                }
                // A zero deadline disables eviction (0 = unlimited,
                // like `max_connections`), not "evict instantly".
                let deadline = shared.config.idle_deadline;
                if !deadline.is_zero()
                    && (last_byte.elapsed() >= deadline
                        || started.elapsed() >= frame_budget(deadline, buf.len()))
                {
                    return Err(ReadAbort::IdleExpired);
                }
            }
            Err(_) => return Err(ReadAbort::Fatal),
        }
    }
    Ok(())
}

/// Evict a peer that outlived the idle deadline: typed TIMEOUT reply
/// (best effort — the write side has its own timeout), then the caller
/// closes the socket. Shed with an answer, never a silent RST. Counted
/// as a timed-out *connection*, not a request error — no request was
/// ever completed.
fn evict_idle(mut stream: &TcpStream, shared: &Arc<Shared>) {
    shared
        .metrics
        .connections_timed_out
        .fetch_add(1, Ordering::Relaxed);
    let bytes = wire::encode_err_reply(
        wire::errcode::TIMEOUT,
        &idle_eviction_message(shared.config.idle_deadline),
    )
    .expect("error replies are always representable");
    shared.transport.writes.fetch_add(1, Ordering::Relaxed);
    if stream.write_all(&bytes).is_ok() {
        shared
            .metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    }
}
