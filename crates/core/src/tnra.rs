//! TNRA — Threshold with No Random Access (paper Figure 10).
//!
//! Adaptation of Fagin's NRA \[10\]: no random accesses at all — the
//! algorithm maintains, for every polled document, a lower bound `SLB`
//! (sum of the weights actually seen) and an upper bound `SUB` (seen
//! weights plus, for each list the document has not been seen in, that
//! list's current front weight). Like the paper's TRA adaptation, pops
//! favour the list with the highest current term score rather than equal
//! depth.
//!
//! Termination (Figure 10, step 4a) requires all three of:
//!
//! 1. complete ordering among the top r: `SLB(d_j) ≥ SUB(d_k)` ∀ j<k≤r;
//! 2. every other polled document cannot climb in: `SUB(d) ≤ SLB(d_r)`;
//! 3. no unseen document can climb in: `thres ≤ SLB(d_r)`.

use crate::access::{AccessError, ListAccess};
use crate::types::{ProcessingOutcome, Query, QueryResult, ResultEntry};
use authsearch_corpus::DocId;
use std::collections::HashMap;

/// Per-document bound state. Query sizes are ≤ 64 terms (TREC tops out at
/// 20), so the seen-in-list set is a bitmask.
#[derive(Debug, Clone, Copy)]
struct DocState {
    lb: f64,
    seen_mask: u64,
}

/// One iteration record for trace replay (Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct TnraIteration {
    /// Threshold at the top of the iteration.
    pub thres: f64,
    /// `(query term index, doc, weight)` popped; `None` when terminating.
    pub popped: Option<(usize, DocId, f32)>,
    /// `(doc, SLB, SUB)` snapshot, ordered by descending SLB.
    pub bounds: Vec<(DocId, f64, f64)>,
}

/// Run TNRA for the top `r` documents.
pub fn run<L: ListAccess>(
    lists: &L,
    query: &Query,
    r: usize,
) -> Result<ProcessingOutcome, AccessError> {
    run_inner(lists, query, r, None)
}

/// Run TNRA capturing a per-iteration trace (Figure 11 golden tests and
/// the `trace` bench binary).
pub fn run_traced<L: ListAccess>(
    lists: &L,
    query: &Query,
    r: usize,
) -> Result<(ProcessingOutcome, Vec<TnraIteration>), AccessError> {
    let mut trace = Vec::new();
    let outcome = run_inner(lists, query, r, Some(&mut trace))?;
    Ok((outcome, trace))
}

fn run_inner<L: ListAccess>(
    lists: &L,
    query: &Query,
    r: usize,
    mut trace: Option<&mut Vec<TnraIteration>>,
) -> Result<ProcessingOutcome, AccessError> {
    let q = query.terms.len();
    assert!(q <= 64, "query size beyond the 64-term bitmask");

    let mut pos = vec![0usize; q];
    let mut fronts: Vec<Option<(DocId, f32)>> = Vec::with_capacity(q);
    for i in 0..q {
        fronts.push(lists.entry(i, 0)?.map(|e| (e.doc, e.weight)));
    }

    // Candidate list ordered by descending lb (ties: ascending doc id) —
    // the paper's R — plus a side map for O(1) state lookup.
    let mut ranked: Vec<DocId> = Vec::new();
    let mut states: HashMap<DocId, DocState> = HashMap::new();
    let mut encountered: Vec<DocId> = Vec::new();
    let mut iterations = 0usize;

    // Current front term scores c_i (recomputed on change).
    let front_score = |fronts: &[Option<(DocId, f32)>], i: usize| -> f64 {
        fronts[i].map_or(0.0, |(_, w)| query.terms[i].wq * w as f64)
    };

    loop {
        let cs: Vec<f64> = (0..q).map(|i| front_score(&fronts, i)).collect();
        let thres: f64 = cs.iter().sum();

        // Upper bound for one candidate: lb + Σ fronts of unseen lists.
        let sub = |st: &DocState| -> f64 {
            let mut ub = st.lb;
            for (i, &c) in cs.iter().enumerate() {
                if st.seen_mask & (1 << i) == 0 {
                    ub += c;
                }
            }
            ub
        };

        // Step 4(a): the three termination conditions.
        let terminated = r == 0
            || (ranked.len() >= r && {
                let slb_r = states[&ranked[r - 1]].lb;
                // Condition 3 first: cheapest and usually last to hold.
                let cond3 = slb_r >= thres;
                let cond1 = cond3
                    && ranked[..r]
                        .windows(2)
                        .all(|w| states[&w[0]].lb >= sub(&states[&w[1]]));
                // Condition 2 with early exit: ranked is ordered by lb
                // descending and SUB(d) ≤ lb(d) + thres, so once
                // lb(d) + thres ≤ SLB(d_r) every later candidate passes.
                let cond2 = cond1
                    && ranked[r..].iter().all(|d| {
                        let st = &states[d];
                        st.lb + thres <= slb_r || sub(st) <= slb_r
                    });
                cond1 && cond2
            });
        if terminated {
            if let Some(t) = trace.as_deref_mut() {
                t.push(TnraIteration {
                    thres,
                    popped: None,
                    bounds: snapshot(&ranked, &states, &sub),
                });
            }
            break;
        }

        // Step 4(b): pop the highest term score (ties: lowest index).
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in cs.iter().enumerate() {
            if fronts[i].is_some() && best.is_none_or(|(_, bc)| c > bc) {
                best = Some((i, c));
            }
        }
        let Some((i, c)) = best else {
            if let Some(t) = trace.as_deref_mut() {
                t.push(TnraIteration {
                    thres,
                    popped: None,
                    bounds: snapshot(&ranked, &states, &sub),
                });
            }
            break; // all lists exhausted
        };

        let (d, w) = fronts[i].expect("selected list has a front");

        // Step 4(c): create or update the document's bounds.
        let st = states.entry(d).or_insert_with(|| {
            encountered.push(d);
            DocState {
                lb: 0.0,
                seen_mask: 0,
            }
        });
        let was_new = st.seen_mask == 0;
        st.lb += c;
        st.seen_mask |= 1 << i;
        let new_lb = st.lb;

        // Maintain the lb-descending order of `ranked`.
        if !was_new {
            let old = ranked.iter().position(|&x| x == d).expect("ranked doc");
            ranked.remove(old);
        }
        let ins = ranked.partition_point(|&x| {
            let s = states[&x].lb;
            s > new_lb || (s == new_lb && x < d)
        });
        ranked.insert(ins, d);

        // Advance list i.
        pos[i] += 1;
        fronts[i] = lists.entry(i, pos[i])?.map(|e| (e.doc, e.weight));
        iterations += 1;

        if let Some(t) = trace.as_deref_mut() {
            let cs2: Vec<f64> = (0..q).map(|j| front_score(&fronts, j)).collect();
            let sub2 = |st: &DocState| -> f64 {
                let mut ub = st.lb;
                for (j, &cc) in cs2.iter().enumerate() {
                    if st.seen_mask & (1 << j) == 0 {
                        ub += cc;
                    }
                }
                ub
            };
            t.push(TnraIteration {
                thres,
                popped: Some((i, d, w)),
                bounds: snapshot(&ranked, &states, &sub2),
            });
        }
    }

    // Fetched-but-unpopped fronts count as encountered (they are in the
    // VO prefixes).
    for front in fronts.iter().flatten() {
        states.entry(front.0).or_insert_with(|| {
            encountered.push(front.0);
            DocState {
                lb: 0.0,
                seen_mask: 0,
            }
        });
    }

    let prefix_lens: Vec<usize> = (0..q)
        .map(|i| {
            let li = lists.list_len(i);
            if pos[i] < li {
                pos[i] + 1
            } else {
                li
            }
        })
        .collect();

    let entries: Vec<ResultEntry> = ranked
        .iter()
        .take(r)
        .map(|&d| ResultEntry {
            doc: d,
            score: states[&d].lb,
        })
        .collect();

    Ok(ProcessingOutcome {
        result: QueryResult { entries },
        prefix_lens,
        encountered,
        iterations,
    })
}

fn snapshot<F: Fn(&DocState) -> f64>(
    ranked: &[DocId],
    states: &HashMap<DocId, DocState>,
    sub: &F,
) -> Vec<(DocId, f64, f64)> {
    ranked
        .iter()
        .map(|&d| {
            let st = &states[&d];
            (d, st.lb, sub(st))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::IndexLists;
    use crate::pscan;
    use crate::types::DocTable;
    use authsearch_corpus::SyntheticConfig;
    use authsearch_index::{build_index, OkapiParams};

    #[test]
    fn tnra_matches_naive_top_docs() {
        let corpus = SyntheticConfig::tiny(150, 33).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        for (seed, qsize) in [(10u64, 2usize), (11, 3), (12, 4)] {
            let terms =
                authsearch_corpus::workload::synthetic(index.num_terms(), 1, qsize, seed).remove(0);
            let q = crate::types::Query::from_term_ids(&index, &terms);
            let lists = IndexLists::new(&index, &q);
            let out = run(&lists, &q, 10).unwrap();
            let naive = pscan::naive_topk(&table, &q, 10);
            // Document sets must agree up to the shorter of the two (naive
            // drops zero-score docs).
            let k = out.result.entries.len().min(naive.entries.len());
            assert_eq!(
                out.result.docs()[..k],
                naive.docs()[..k],
                "seed={seed} qsize={qsize}"
            );
        }
    }

    #[test]
    fn tnra_scores_are_exact_at_termination() {
        // At termination the top-r documents' SLB must equal their true
        // scores whenever their bounds have fully converged; spot-check
        // against the naive scorer.
        let corpus = SyntheticConfig::tiny(120, 44).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        let terms = authsearch_corpus::workload::synthetic(index.num_terms(), 1, 3, 5).remove(0);
        let q = crate::types::Query::from_term_ids(&index, &terms);
        let lists = IndexLists::new(&index, &q);
        let out = run(&lists, &q, 5).unwrap();
        for e in &out.result.entries {
            let mut truth = 0.0f64;
            for qt in &q.terms {
                truth += qt.wq * table.weight(e.doc, qt.term) as f64;
            }
            assert!(
                e.score <= truth + 1e-9,
                "SLB {} exceeds true score {truth}",
                e.score
            );
        }
    }

    #[test]
    fn tnra_reads_at_least_as_much_as_tra() {
        // §3.4: "TNRA is expected to poll a higher fraction of the
        // inverted lists than TRA."
        let corpus = SyntheticConfig::tiny(250, 55).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        let mut tra_total = 0usize;
        let mut tnra_total = 0usize;
        for seed in 0..10u64 {
            let terms =
                authsearch_corpus::workload::synthetic(index.num_terms(), 1, 3, seed).remove(0);
            let q = crate::types::Query::from_term_ids(&index, &terms);
            let lists = IndexLists::new(&index, &q);
            let freqs = crate::access::TableFreqs::new(&table, &q);
            tra_total += crate::tra::run(&lists, &freqs, &q, 10)
                .unwrap()
                .prefix_lens
                .iter()
                .sum::<usize>();
            tnra_total += run(&lists, &q, 10)
                .unwrap()
                .prefix_lens
                .iter()
                .sum::<usize>();
        }
        assert!(
            tnra_total >= tra_total,
            "TNRA read {tnra_total} < TRA {tra_total}"
        );
    }

    #[test]
    fn traced_matches_untraced() {
        let corpus = SyntheticConfig::tiny(100, 66).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let terms = authsearch_corpus::workload::synthetic(index.num_terms(), 1, 3, 77).remove(0);
        let q = crate::types::Query::from_term_ids(&index, &terms);
        let lists = IndexLists::new(&index, &q);
        let plain = run(&lists, &q, 4).unwrap();
        let (traced, trace) = run_traced(&lists, &q, 4).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(trace.len(), plain.iterations + 1);
    }

    #[test]
    fn bounds_sane_in_trace() {
        let corpus = SyntheticConfig::tiny(100, 88).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let terms = authsearch_corpus::workload::synthetic(index.num_terms(), 1, 2, 99).remove(0);
        let q = crate::types::Query::from_term_ids(&index, &terms);
        let lists = IndexLists::new(&index, &q);
        let (_, trace) = run_traced(&lists, &q, 3).unwrap();
        for it in &trace {
            for &(_, lb, ub) in &it.bounds {
                assert!(lb <= ub + 1e-9, "lb {lb} > ub {ub}");
            }
            // Ordered by descending lb.
            assert!(it.bounds.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn zero_r_terminates_immediately() {
        let corpus = SyntheticConfig::tiny(80, 1).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let terms = authsearch_corpus::workload::synthetic(index.num_terms(), 1, 2, 2).remove(0);
        let q = crate::types::Query::from_term_ids(&index, &terms);
        let lists = IndexLists::new(&index, &q);
        let out = run(&lists, &q, 0).unwrap();
        assert!(out.result.entries.is_empty());
        assert_eq!(out.iterations, 0);
    }
}
