//! The paper's running example: the 8-document, 16-term collection of
//! Figure 1 and the query "sleeps in the dark" of Figures 6 and 11.
//!
//! The published inverted index stores the exact `w_{d,t}` values shown in
//! Figure 1, and the query-side weights of Figure 6 are the exact
//! logarithms `ln 11`, `ln 3`, `ln(8/3)`, `ln 11` (they reproduce every
//! threshold in both traces to the printed precision). Golden tests replay
//! both traces against these inputs iteration by iteration.

use crate::types::Query;
use authsearch_index::{ImpactEntry, InvertedIndex, InvertedList, OkapiParams};

/// Term names of Figure 1 in dictionary order (term id = position).
pub const TOY_TERMS: [&str; 16] = [
    "and", "big", "dark", "did", "gown", "had", "house", "in", "keep", "keeper", "keeps", "light",
    "night", "old", "sleeps", "the",
];

/// Term id of a toy term.
pub fn toy_term_id(term: &str) -> u32 {
    TOY_TERMS
        .iter()
        .position(|&t| t == term)
        // lint:allow(truncating-cast): position indexes the fixed toy dictionary (a handful of entries) — the cast cannot lose bits
        .unwrap_or_else(|| panic!("{term} is not in the toy dictionary")) as u32
}

/// The inverted index of Figure 1. Document ids 1..=8 as printed (the toy
/// collection is sized for 9 ids with id 0 unused).
pub fn toy_index() -> InvertedIndex {
    let lists_data: [&[(u32, f32)]; 16] = [
        // and
        &[(6, 0.159)],
        // big
        &[(2, 0.148), (3, 0.088)],
        // dark
        &[(6, 0.079)],
        // did
        &[(4, 0.125)],
        // gown
        &[(2, 0.074)],
        // had
        &[(3, 0.088)],
        // house
        &[(3, 0.088), (2, 0.074)],
        // in
        &[
            (6, 0.159),
            (2, 0.148),
            (5, 0.142),
            (1, 0.058),
            (7, 0.058),
            (8, 0.053),
        ],
        // keep
        &[(5, 0.088), (1, 0.088), (3, 0.088)],
        // keeper
        &[(4, 0.125), (5, 0.088), (1, 0.088)],
        // keeps
        &[(5, 0.088), (1, 0.088), (6, 0.079)],
        // light
        &[(6, 0.079)],
        // night
        &[(5, 0.177), (4, 0.125), (1, 0.088)],
        // old
        &[(2, 0.148), (4, 0.125), (1, 0.088), (3, 0.088)],
        // sleeps
        &[(6, 0.079)],
        // the
        &[
            (5, 0.265),
            (3, 0.263),
            (6, 0.200),
            (1, 0.159),
            (2, 0.148),
            (4, 0.125),
        ],
    ];

    let lists: Vec<InvertedList> = lists_data
        .iter()
        .map(|entries| {
            InvertedList::from_entries(
                entries
                    .iter()
                    .map(|&(doc, weight)| ImpactEntry { doc, weight })
                    .collect(),
            )
        })
        .collect();
    // lint:allow(truncating-cast): the Figure-1 toy lists hold at most eight postings each
    let ft: Vec<u32> = lists.iter().map(|l| l.len() as u32).collect();
    // 9 document slots (ids 1..=8 used; Okapi parameters are irrelevant —
    // the toy query carries explicit weights).
    InvertedIndex::from_parts(OkapiParams::default(), 9, 5.0, ft, lists)
}

/// The query of Figure 6: "sleeps in the dark" with the paper's exact
/// query-side weights.
pub fn toy_query() -> Query {
    Query::with_weights(&[
        (toy_term_id("sleeps"), 11f64.ln()),     // 2.3979
        (toy_term_id("in"), 3f64.ln()),          // 1.0986
        (toy_term_id("the"), (8f64 / 3.0).ln()), // 0.9808
        (toy_term_id("dark"), 11f64.ln()),       // 2.3979
    ])
}

/// Dummy content bytes for the toy documents (the article texts are not
/// published; contents only feed the document digests, not the traces).
pub fn toy_contents() -> Vec<Vec<u8>> {
    (0..9u32)
        .map(|d| format!("toy document #{d} full text").into_bytes())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_dictionary_matches_figure1() {
        assert_eq!(toy_term_id("and"), 0);
        assert_eq!(toy_term_id("the"), 15);
        assert_eq!(toy_term_id("sleeps"), 14);
    }

    #[test]
    fn toy_lists_are_frequency_ordered() {
        let idx = toy_index();
        for t in 0..16u32 {
            assert!(idx.list(t).is_frequency_ordered(), "term {t}");
        }
    }

    #[test]
    fn toy_ft_matches_list_lengths() {
        let idx = toy_index();
        assert_eq!(idx.ft(toy_term_id("the")), 6);
        assert_eq!(idx.ft(toy_term_id("sleeps")), 1);
        assert_eq!(idx.ft(toy_term_id("keep")), 3);
    }

    #[test]
    fn toy_query_weights_match_figure6() {
        let q = toy_query();
        assert!((q.terms[0].wq - 2.3979).abs() < 1e-4); // sleeps
        assert!((q.terms[1].wq - 1.0986).abs() < 1e-4); // in
        assert!((q.terms[2].wq - 0.9808).abs() < 1e-4); // the
        assert!((q.terms[3].wq - 2.3979).abs() < 1e-4); // dark
    }

    #[test]
    #[should_panic(expected = "not in the toy dictionary")]
    fn unknown_toy_term_panics() {
        toy_term_id("zebra");
    }
}
