//! TRA — Threshold with Random Access (paper Figure 5).
//!
//! Adaptation of Fagin's TA \[10\] to frequency-ordered inverted lists: pops
//! always come from the list with the highest current term score (not
//! equal depth across lists), and the algorithm terminates as soon as the
//! running threshold — the sum of the current front term scores, an upper
//! bound on any unseen document's similarity — drops to or below the
//! r-th best score found so far.
//!
//! On first encounter of a document, *all* its query-term weights are
//! fetched at once (the random access; served by the document-MHTs in the
//! authenticated setting) and its exact score computed.

use crate::access::{AccessError, FreqAccess, ListAccess};
use crate::types::{insert_ranked, ProcessingOutcome, Query, QueryResult, ResultEntry};
use authsearch_corpus::DocId;
use std::collections::HashSet;

/// One iteration record for trace replay (Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct TraIteration {
    /// Threshold at the top of the iteration (before the pop).
    pub thres: f64,
    /// `(query term index, entry doc, entry weight)` popped; `None` on the
    /// terminating iteration.
    pub popped: Option<(usize, DocId, f32)>,
    /// Result list snapshot after the pop (docs with scores, best first).
    pub result: Vec<ResultEntry>,
}

/// Run TRA for the top `r` documents.
pub fn run<L: ListAccess, F: FreqAccess>(
    lists: &L,
    freqs: &F,
    query: &Query,
    r: usize,
) -> Result<ProcessingOutcome, AccessError> {
    run_inner(lists, freqs, query, r, None)
}

/// Run TRA capturing a per-iteration trace (used by the Figure 6 golden
/// tests and the `trace` bench binary).
pub fn run_traced<L: ListAccess, F: FreqAccess>(
    lists: &L,
    freqs: &F,
    query: &Query,
    r: usize,
) -> Result<(ProcessingOutcome, Vec<TraIteration>), AccessError> {
    let mut trace = Vec::new();
    let outcome = run_inner(lists, freqs, query, r, Some(&mut trace))?;
    Ok((outcome, trace))
}

fn run_inner<L: ListAccess, F: FreqAccess>(
    lists: &L,
    freqs: &F,
    query: &Query,
    r: usize,
    mut trace: Option<&mut Vec<TraIteration>>,
) -> Result<ProcessingOutcome, AccessError> {
    let q = query.terms.len();

    // Step 2: fetch the first entry of each list.
    let mut pos = vec![0usize; q]; // popped entries per list
    let mut fronts: Vec<Option<(DocId, f32)>> = Vec::with_capacity(q);
    for i in 0..q {
        fronts.push(lists.entry(i, 0)?.map(|e| (e.doc, e.weight)));
    }

    let mut result: Vec<ResultEntry> = Vec::new();
    let mut seen: HashSet<DocId> = HashSet::new();
    let mut encountered: Vec<DocId> = Vec::new();
    let mut iterations = 0usize;

    loop {
        // Step 3 / 4(d): thres = Σ_i c_i over current fronts.
        let thres: f64 = (0..q)
            .map(|i| fronts[i].map_or(0.0, |(_, w)| query.terms[i].wq * w as f64))
            .sum();

        // Step 4(a): top-r found once R.s_r ≥ thres.
        if r == 0 || (result.len() >= r && result[r - 1].score >= thres) {
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraIteration {
                    thres,
                    popped: None,
                    result: result.clone(),
                });
            }
            break;
        }

        // Step 4(b): pop the entry with the highest term score
        // (ties: lowest query-term index — fixed so engine and verifier
        // replay identically).
        let mut best: Option<(usize, f64)> = None;
        for (i, front) in fronts.iter().enumerate() {
            if let Some((_, w)) = front {
                let c = query.terms[i].wq * *w as f64;
                if best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((i, c));
                }
            }
        }
        let Some((i, _)) = best else {
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraIteration {
                    thres,
                    popped: None,
                    result: result.clone(),
                });
            }
            break; // all lists exhausted
        };

        let (d, w) = fronts[i].expect("selected list has a front");

        // Step 4(c): first encounter → random-access all query-term
        // weights and score the document exactly.
        if seen.insert(d) {
            encountered.push(d);
            let mut s = 0.0f64;
            for (j, qt) in query.terms.iter().enumerate() {
                s += qt.wq * freqs.weight(d, j)? as f64;
            }
            insert_ranked(&mut result, d, s);
        }

        // Advance list i.
        pos[i] += 1;
        fronts[i] = lists.entry(i, pos[i])?.map(|e| (e.doc, e.weight));
        iterations += 1;

        if let Some(t) = trace.as_deref_mut() {
            t.push(TraIteration {
                thres,
                popped: Some((i, d, w)),
                result: result.clone(),
            });
        }
    }

    // Cut-off fronts were fetched; their documents' frequencies are part
    // of the proof obligation even when never popped.
    for front in fronts.iter().flatten() {
        if seen.insert(front.0) {
            encountered.push(front.0);
        }
    }

    let prefix_lens: Vec<usize> = (0..q)
        .map(|i| {
            let li = lists.list_len(i);
            if pos[i] < li {
                pos[i] + 1 // popped plus the fetched cut-off front
            } else {
                li
            }
        })
        .collect();

    let mut entries = result;
    entries.truncate(r);
    Ok(ProcessingOutcome {
        result: QueryResult { entries },
        prefix_lens,
        encountered,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{IndexLists, TableFreqs};
    use crate::pscan;
    use crate::types::DocTable;
    use authsearch_corpus::{CorpusBuilder, SyntheticConfig};
    use authsearch_index::{build_index, OkapiParams};

    fn setup_small() -> (authsearch_corpus::Corpus, authsearch_index::InvertedIndex) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("night keeper keeps house house")
            .add_text("big house big gown")
            .add_text("old night keeper watch")
            .add_text("keeper keeper keeper night")
            .add_text("watch gown night keeps")
            .build();
        let index = build_index(&corpus, OkapiParams::default());
        (corpus, index)
    }

    #[test]
    fn tra_matches_pscan_on_small_corpus() {
        let (corpus, index) = setup_small();
        let table = DocTable::from_index(&index);
        let keeper = corpus.term_id("keeper").unwrap();
        let night = corpus.term_id("night").unwrap();
        let q = Query::from_term_ids(&index, &[keeper, night]);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        for r in 1..=4 {
            let tra = run(&lists, &freqs, &q, r).unwrap();
            let ps = pscan::run(&lists, &q, r).unwrap();
            assert_eq!(tra.result.docs(), ps.result.docs(), "r={r}");
        }
    }

    #[test]
    fn tra_matches_naive_on_synthetic() {
        let corpus = SyntheticConfig::tiny(150, 21).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        // A few deterministic queries over different term ranges.
        for (seed, qsize) in [(1u64, 2usize), (2, 3), (3, 5)] {
            let terms =
                authsearch_corpus::workload::synthetic(index.num_terms(), 1, qsize, seed).remove(0);
            let q = Query::from_term_ids(&index, &terms);
            let lists = IndexLists::new(&index, &q);
            let freqs = TableFreqs::new(&table, &q);
            let tra = run(&lists, &freqs, &q, 10).unwrap();
            let naive = pscan::naive_topk(&table, &q, 10);
            assert_eq!(tra.result.docs(), naive.docs(), "seed={seed} qsize={qsize}");
        }
    }

    #[test]
    fn tra_reads_fewer_entries_than_list_length() {
        let corpus = SyntheticConfig::tiny(300, 5).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        // Pick the longest list plus a short one: early termination should
        // prune the long list.
        let dfs = index.document_frequencies();
        let longest = (0..dfs.len()).max_by_key(|&t| dfs[t]).unwrap() as u32;
        let shortest = (0..dfs.len()).min_by_key(|&t| dfs[t]).unwrap() as u32;
        let q = Query::from_term_ids(&index, &[shortest, longest]);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        let out = run(&lists, &freqs, &q, 3).unwrap();
        let total_read: usize = out.prefix_lens.iter().sum();
        let total_len = index.list(longest).len() + index.list(shortest).len();
        assert!(
            total_read < total_len,
            "read {total_read} of {total_len} entries"
        );
    }

    #[test]
    fn prefix_lens_include_cutoff_front() {
        let (corpus, index) = setup_small();
        let table = DocTable::from_index(&index);
        let night = corpus.term_id("night").unwrap();
        let q = Query::from_term_ids(&index, &[night]);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        let out = run(&lists, &freqs, &q, 1).unwrap();
        // Single list, r=1: pops until front weight can't beat the best.
        assert!(out.prefix_lens[0] >= 1);
        assert!(out.prefix_lens[0] <= index.list(night).len());
    }

    #[test]
    fn encountered_covers_all_prefix_docs() {
        let corpus = SyntheticConfig::tiny(200, 8).generate();
        let index = build_index(&corpus, OkapiParams::default());
        let table = DocTable::from_index(&index);
        let terms = authsearch_corpus::workload::synthetic(index.num_terms(), 1, 3, 9).remove(0);
        let q = Query::from_term_ids(&index, &terms);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        let out = run(&lists, &freqs, &q, 5).unwrap();
        let enc: HashSet<DocId> = out.encountered.iter().copied().collect();
        for (i, &plen) in out.prefix_lens.iter().enumerate() {
            for pos in 0..plen {
                let e = lists.entry(i, pos).unwrap().unwrap();
                assert!(enc.contains(&e.doc), "prefix doc {} missing", e.doc);
            }
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let (corpus, index) = setup_small();
        let table = DocTable::from_index(&index);
        let keeper = corpus.term_id("keeper").unwrap();
        let house = corpus.term_id("house").unwrap();
        let q = Query::from_term_ids(&index, &[keeper, house]);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        let plain = run(&lists, &freqs, &q, 2).unwrap();
        let (traced, trace) = run_traced(&lists, &freqs, &q, 2).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(trace.len(), plain.iterations + 1); // + terminating row
        assert!(trace.last().unwrap().popped.is_none());
    }

    #[test]
    fn zero_r_terminates_immediately() {
        let (corpus, index) = setup_small();
        let table = DocTable::from_index(&index);
        let night = corpus.term_id("night").unwrap();
        let q = Query::from_term_ids(&index, &[night]);
        let lists = IndexLists::new(&index, &q);
        let freqs = TableFreqs::new(&table, &q);
        let out = run(&lists, &freqs, &q, 0).unwrap();
        assert!(out.result.entries.is_empty());
    }
}
