//! Shared types: queries, results, processing outcomes, and the
//! document-side frequency table.

use authsearch_corpus::{Corpus, DocId, TermId};
use authsearch_index::InvertedIndex;
use std::collections::HashMap;

/// How a multi-term query combines its terms.
///
/// The paper's query model is purely disjunctive (top-r by the summed
/// Okapi similarity, §2). Conjunctive mode keeps the identical scoring
/// formula but admits only documents that contain *every* query term,
/// and its VO additionally proves that intersection is exactly right —
/// see [`crate::verify::verify_conjunctive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryMode {
    /// OR-semantics: any document containing at least one query term is
    /// a candidate (the paper's model).
    #[default]
    Disjunctive,
    /// AND-semantics: only documents containing all query terms are
    /// candidates, and absence from the result must be provable.
    Conjunctive,
}

/// One search term of a query with its query-side weight.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTerm {
    /// Dictionary term id.
    pub term: TermId,
    /// `f_{Q,t}` — occurrences of the term in the query.
    pub f_qt: u32,
    /// `w_{Q,t}` — the query-side Okapi weight.
    pub wq: f64,
}

/// A parsed query `Q = {⟨t, f_{Q,t}⟩}` with precomputed `w_{Q,t}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Distinct query terms (order defines the list index used in traces).
    pub terms: Vec<QueryTerm>,
}

impl Query {
    /// Build from distinct term ids with `f_{Q,t} = 1`, taking weights
    /// from the index dictionary (the common case for generated
    /// workloads).
    pub fn from_term_ids(index: &InvertedIndex, terms: &[TermId]) -> Query {
        Query {
            terms: terms
                .iter()
                .map(|&t| QueryTerm {
                    term: t,
                    f_qt: 1,
                    wq: index.query_weight(t, 1),
                })
                .collect(),
        }
    }

    /// Build from explicit `(t, f_{Q,t})` pairs, taking the query-side
    /// weights from the index dictionary — the shape a network client
    /// submits over the wire ([`crate::wire::Request::Terms`]).
    pub fn from_term_pairs(index: &InvertedIndex, pairs: &[(TermId, u32)]) -> Query {
        Query {
            terms: pairs
                .iter()
                .map(|&(term, f_qt)| QueryTerm {
                    term,
                    f_qt,
                    wq: index.query_weight(term, f_qt),
                })
                .collect(),
        }
    }

    /// Parse a natural-language query string against a corpus dictionary:
    /// tokenize, drop out-of-dictionary terms (per the system model), count
    /// duplicates into `f_{Q,t}`.
    pub fn from_text(corpus: &Corpus, index: &InvertedIndex, text: &str) -> Query {
        let mut counts: HashMap<TermId, u32> = HashMap::new();
        for token in authsearch_corpus::tokenizer::tokenize(text) {
            if let Some(t) = corpus.term_id(&token) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(TermId, u32)> = counts.into_iter().collect();
        terms.sort_unstable_by_key(|&(t, _)| t);
        Query {
            terms: terms
                .into_iter()
                .map(|(term, f_qt)| QueryTerm {
                    term,
                    f_qt,
                    wq: index.query_weight(term, f_qt),
                })
                .collect(),
        }
    }

    /// Build with explicit weights (used by the paper's worked example,
    /// whose `w_{Q,t}` values are given rather than derived).
    pub fn with_weights(weights: &[(TermId, f64)]) -> Query {
        Query {
            terms: weights
                .iter()
                .map(|&(term, wq)| QueryTerm { term, f_qt: 1, wq })
                .collect(),
        }
    }

    /// Number of distinct terms `q`.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True for the empty query.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// One result entry `⟨d, s⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultEntry {
    /// Result document.
    pub doc: DocId,
    /// Similarity score `S(d|Q)`.
    pub score: f64,
}

/// The ordered query result `R` (non-increasing scores; ties broken by
/// ascending document id so every component of the system is
/// deterministic).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Result entries, best first.
    pub entries: Vec<ResultEntry>,
}

impl QueryResult {
    /// Checks the ordering half of the paper's correctness criteria.
    pub fn is_ordered(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc < w[1].doc))
    }

    /// Documents only.
    pub fn docs(&self) -> Vec<DocId> {
        self.entries.iter().map(|e| e.doc).collect()
    }
}

/// Everything a query-processing run produces, beyond the result itself:
/// the inputs to VO construction and to the evaluation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingOutcome {
    /// The top-r result.
    pub result: QueryResult,
    /// Per query term: number of entries *fetched* from its inverted list
    /// (popped entries plus the fetched-but-unpopped cut-off front). This
    /// is both Figure 13(a)'s "# entries read" and the per-list VO prefix.
    pub prefix_lens: Vec<usize>,
    /// Every document appearing in some fetched prefix, in first-encounter
    /// order. For TRA these are exactly the documents whose query-term
    /// frequencies the VO must certify.
    pub encountered: Vec<DocId>,
    /// Main-loop iterations executed (pops).
    pub iterations: usize,
}

/// Document-side frequency table: for every document, its `(t, w_{d,t})`
/// pairs in ascending term order — precisely the leaf layer of the
/// document-MHTs (Figure 8), and the engine's random-access source in TRA.
///
/// Built by *transposing the inverted index*, which guarantees the
/// invariant the correctness criteria rely on: the frequency vector
/// `freq(d|Q)` a document-MHT certifies is identical to what the inverted
/// lists contain.
#[derive(Debug, Clone)]
pub struct DocTable {
    per_doc: Vec<Vec<(TermId, f32)>>,
}

impl DocTable {
    /// Transpose an index into its per-document view.
    pub fn from_index(index: &InvertedIndex) -> DocTable {
        let mut per_doc: Vec<Vec<(TermId, f32)>> = vec![Vec::new(); index.num_docs()];
        for t in 0..index.num_terms() as TermId {
            for e in index.list(t).entries() {
                per_doc[e.doc as usize].push((t, e.weight));
            }
        }
        // Lists are walked in ascending term order, so each per-doc vector
        // is already sorted by term id.
        debug_assert!(per_doc
            .iter()
            .all(|v| v.windows(2).all(|w| w[0].0 < w[1].0)));
        DocTable { per_doc }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.per_doc.len()
    }

    /// The `(t, w_{d,t})` leaf layer for document `d`.
    pub fn doc_terms(&self, d: DocId) -> &[(TermId, f32)] {
        &self.per_doc[d as usize]
    }

    /// `w_{d,t}` (0 when `t` does not occur in `d`).
    pub fn weight(&self, d: DocId, t: TermId) -> f32 {
        let v = &self.per_doc[d as usize];
        match v.binary_search_by_key(&t, |&(tt, _)| tt) {
            Ok(i) => v[i].1,
            Err(_) => 0.0,
        }
    }
}

/// Insert `⟨doc, score⟩` into a descending-ordered result vector
/// (ties by ascending doc id). Shared by PSCAN / TRA and the verifier's
/// replay.
pub(crate) fn insert_ranked(entries: &mut Vec<ResultEntry>, doc: DocId, score: f64) {
    let pos = entries.partition_point(|e| e.score > score || (e.score == score && e.doc < doc));
    entries.insert(pos, ResultEntry { doc, score });
}

#[cfg(test)]
mod tests {
    use super::*;
    use authsearch_corpus::CorpusBuilder;
    use authsearch_index::{build_index, OkapiParams};

    fn setup() -> (Corpus, InvertedIndex) {
        let corpus = CorpusBuilder::new()
            .min_df(1)
            .add_text("night keeper keeps house")
            .add_text("big house big gown")
            .add_text("old night watch")
            .build();
        let index = build_index(&corpus, OkapiParams::default());
        (corpus, index)
    }

    #[test]
    fn query_from_text_counts_duplicates() {
        let (corpus, index) = setup();
        let q = Query::from_text(&corpus, &index, "night NIGHT keeper");
        let night = corpus.term_id("night").unwrap();
        let qt = q.terms.iter().find(|t| t.term == night).unwrap();
        assert_eq!(qt.f_qt, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn out_of_dictionary_terms_ignored() {
        let (corpus, index) = setup();
        let q = Query::from_text(&corpus, &index, "zzzunknown house");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn from_term_ids_uses_index_weights() {
        let (corpus, index) = setup();
        let house = corpus.term_id("house").unwrap();
        let q = Query::from_term_ids(&index, &[house]);
        assert_eq!(q.terms[0].wq, index.query_weight(house, 1));
    }

    #[test]
    fn result_ordering_check() {
        let good = QueryResult {
            entries: vec![
                ResultEntry { doc: 2, score: 0.9 },
                ResultEntry { doc: 0, score: 0.9 },
            ],
        };
        assert!(!good.is_ordered()); // tie must order by doc id
        let fixed = QueryResult {
            entries: vec![
                ResultEntry { doc: 0, score: 0.9 },
                ResultEntry { doc: 2, score: 0.9 },
            ],
        };
        assert!(fixed.is_ordered());
    }

    #[test]
    fn insert_ranked_keeps_order() {
        let mut v = Vec::new();
        insert_ranked(&mut v, 5, 0.5);
        insert_ranked(&mut v, 3, 0.9);
        insert_ranked(&mut v, 9, 0.5);
        insert_ranked(&mut v, 1, 0.7);
        let docs: Vec<DocId> = v.iter().map(|e| e.doc).collect();
        assert_eq!(docs, vec![3, 1, 5, 9]);
    }

    #[test]
    fn doc_table_transposes_index() {
        let (corpus, index) = setup();
        let table = DocTable::from_index(&index);
        assert_eq!(table.num_docs(), 3);
        let house = corpus.term_id("house").unwrap();
        // Weight in the table equals the list entry's weight.
        let from_list = index
            .list(house)
            .entries()
            .iter()
            .find(|e| e.doc == 0)
            .unwrap()
            .weight;
        assert_eq!(table.weight(0, house), from_list);
        // Absent term → 0.
        let gown = corpus.term_id("gown").unwrap();
        assert_eq!(table.weight(0, gown), 0.0);
    }

    #[test]
    fn doc_table_terms_sorted() {
        let (_, index) = setup();
        let table = DocTable::from_index(&index);
        for d in 0..table.num_docs() as DocId {
            assert!(table.doc_terms(d).windows(2).all(|w| w[0].0 < w[1].0));
        }
    }
}
