//! Document-MHT proof verification and frequency resolution (TRA).
//!
//! For every encountered document the VO carries a [`crate::vo::DocVo`].
//! This module authenticates each one — reconstructing the document-MHT
//! root from the revealed `(t, w)` leaves and checking the owner's
//! signature, which also binds the digest of the document's content — and
//! then resolves, for every (document, query term) pair, either the
//! certified weight or a *proven absence* (weight 0), established by a
//! revealed pair of position-adjacent leaves whose terms bound the query
//! term (paper §3.3.1), or by a revealed first/last leaf for query terms
//! outside the document's term range.

use super::{FreqMap, VerifierParams, VerifyError};
use crate::auth::serve::QueryResponse;
use crate::auth::{doc_leaf_digest, doc_message, doc_root};
use crate::types::Query;
use crate::vo::DocVo;
use authsearch_corpus::DocId;
use authsearch_crypto::{reconstruct_root, Digest};
use std::collections::HashMap;

/// Authenticated frequencies of the encountered documents, per query term.
#[derive(Debug, Clone, Default)]
pub struct ResolvedFreqs {
    map: FreqMap,
}

impl ResolvedFreqs {
    /// Certified `w_{d, t_i}`; `None` when the VO proves nothing about it.
    pub fn weight_of(&self, d: DocId, i: usize) -> Option<f32> {
        self.map.get(&d).and_then(|v| v.get(i).copied().flatten())
    }

    /// Number of documents with proofs.
    pub fn num_docs(&self) -> usize {
        self.map.len()
    }

    /// True when the VO carried an authenticated proof for document `d`
    /// (even if some query-term weights remained unproven).
    pub fn contains(&self, d: DocId) -> bool {
        self.map.contains_key(&d)
    }
}

/// Verify every document proof in the response and build the frequency
/// map for the replay.
///
/// Signatures are checked in one [`verify_batch`] call over all
/// documents (TRA responses carry one signature per encountered
/// document — the single most signature-heavy spot of the whole
/// scheme): each distinct pair checked exactly once in one shared
/// Montgomery domain, pairs the session `memo` already proved (the
/// same encountered document recurring across a batch of responses)
/// skipped entirely, and a failure pinpointing the offending document.
///
/// [`verify_batch`]: authsearch_crypto::RsaPublicKey::verify_batch
pub(super) fn resolve_doc_proofs(
    params: &VerifierParams,
    query: &Query,
    response: &QueryResponse,
    memo: &mut super::SigMemo,
) -> Result<ResolvedFreqs, VerifyError> {
    // Contents of result documents, for content-digest computation.
    let delivered: HashMap<DocId, &[u8]> = response
        .contents
        .iter()
        .map(|(d, bytes)| (*d, bytes.as_slice()))
        .collect();
    let result_docs: Vec<DocId> = response.result.docs();
    // Every result document must arrive with its content.
    for &d in &result_docs {
        if !delivered.contains_key(&d) {
            return Err(VerifyError::MissingContent { doc: d });
        }
    }

    let mut map: FreqMap = HashMap::with_capacity(response.vo.docs.len());
    let mut messages = Vec::with_capacity(response.vo.docs.len());
    for dv in &response.vo.docs {
        if map.contains_key(&dv.doc) {
            return Err(VerifyError::MalformedProof(format!(
                "duplicate document proof for {}",
                dv.doc
            )));
        }
        let (weights, message) = resolve_one(query, dv, &delivered, &result_docs)?;
        messages.push(message);
        map.insert(dv.doc, weights);
    }
    super::batch_verify_with_memo(
        params,
        memo,
        &messages,
        response.vo.docs.iter().map(|dv| dv.signature.as_slice()),
    )
    .map_err(|culprit| VerifyError::DocSignature {
        doc: response.vo.docs.get(culprit).map_or(0, |dv| dv.doc),
    })?;
    Ok(ResolvedFreqs { map })
}

/// Authenticate one document proof *structurally* — reconstruct the
/// document-MHT root and resolve per-query-term weights — and return the
/// signed message binding it; the caller batch-verifies the signatures.
fn resolve_one(
    query: &Query,
    dv: &DocVo,
    delivered: &HashMap<DocId, &[u8]>,
    result_docs: &[DocId],
) -> Result<(Vec<Option<f32>>, Vec<u8>), VerifyError> {
    let n = dv.num_leaves as usize;

    // Structural checks: positions strictly increasing, in range, terms
    // strictly increasing (the owner sorts document-MHT leaves by term).
    if dv
        .revealed
        .windows(2)
        .any(|pair| matches!(pair, [a, b] if a.0 >= b.0 || a.1 >= b.1))
    {
        return Err(VerifyError::MalformedProof(format!(
            "document {}: revealed leaves not strictly ordered",
            dv.doc
        )));
    }
    if dv.revealed.iter().any(|&(p, _, _)| p as usize >= n) {
        return Err(VerifyError::MalformedProof(format!(
            "document {}: revealed position beyond leaf count",
            dv.doc
        )));
    }

    // Reconstruct the document-MHT root.
    let root = if n == 0 {
        if !dv.revealed.is_empty() || !dv.proof.digests.is_empty() {
            return Err(VerifyError::MalformedProof(format!(
                "document {}: empty MHT with payload",
                dv.doc
            )));
        }
        doc_root(&[])
    } else {
        let pairs: Vec<(usize, Digest)> = dv
            .revealed
            .iter()
            .map(|&(p, t, w)| (p as usize, doc_leaf_digest(t, w)))
            .collect();
        reconstruct_root(n, &pairs, &dv.proof).ok_or_else(|| {
            VerifyError::MalformedProof(format!("document {}: MHT proof shape", dv.doc))
        })?
    };

    // Content digest: hash the delivered document for result entries,
    // take the VO's digest otherwise.
    let content_digest = if result_docs.contains(&dv.doc) {
        let bytes = delivered
            .get(&dv.doc)
            .ok_or(VerifyError::MissingContent { doc: dv.doc })?;
        Digest::hash(bytes)
    } else {
        dv.content_digest
            .ok_or(VerifyError::MissingContent { doc: dv.doc })?
    };

    // The signature binds document id, content digest, and MHT root;
    // checked by the caller's batch pass over all documents.
    let message = doc_message(dv.doc, &content_digest, &root);

    // Resolve each query term: present (revealed leaf), provably absent
    // (bounding leaves), or unproven.
    let mut weights = Vec::with_capacity(query.terms.len());
    for qt in &query.terms {
        let t = qt.term;
        let found = dv.revealed.binary_search_by_key(&t, |&(_, rt, _)| rt);
        let w = match found {
            Ok(i) => dv.revealed.get(i).map(|r| r.2),
            Err(i) => {
                // Candidate bounding pair: revealed[i-1] and revealed[i].
                let lower = i.checked_sub(1).and_then(|j| dv.revealed.get(j).copied());
                let upper = dv.revealed.get(i).copied();
                let absent = match (lower, upper) {
                    // Adjacent positions with terms bracketing t.
                    (Some((pl, tl, _)), Some((pu, tu, _))) => pu == pl + 1 && tl < t && t < tu,
                    // t below the first leaf: position 0 must be revealed.
                    (None, Some((pu, tu, _))) => pu == 0 && t < tu,
                    // t above the last leaf: position n-1 must be revealed.
                    (Some((pl, tl, _)), None) => pl as usize == n - 1 && tl < t,
                    // Empty document: trivially absent.
                    (None, None) => n == 0,
                };
                if absent {
                    Some(0.0)
                } else {
                    None
                }
            }
        };
        weights.push(w);
    }
    Ok((weights, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{AuthConfig, AuthenticatedIndex};
    use crate::toy::{toy_contents, toy_index, toy_query};
    use crate::vo::Mechanism;
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};
    use authsearch_index::BlockLayout;

    fn setup() -> (QueryResponse, VerifierParams) {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraMht)
        };
        let auth = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
        let resp = auth.query(&toy_query(), 2, &toy_contents());
        let params = VerifierParams {
            public_key: key.public_key().clone(),
            layout: BlockLayout::default(),
            mechanism: Mechanism::TraMht,
            num_docs: 9,
            okapi: authsearch_index::OkapiParams::default(),
        };
        (resp, params)
    }

    #[test]
    fn honest_doc_proofs_resolve() {
        let (resp, params) = setup();
        let freqs = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap();
        assert_eq!(freqs.num_docs(), 4); // docs 5, 3, 6, 1
                                         // d6 contains all four query terms (Figure 8).
        for i in 0..4 {
            let w = freqs.weight_of(6, i).unwrap();
            assert!(w > 0.0, "term #{i}");
        }
        // d5 lacks 'sleeps' (term index 0) and 'dark' (index 3): proven 0.
        assert_eq!(freqs.weight_of(5, 0), Some(0.0));
        assert_eq!(freqs.weight_of(5, 3), Some(0.0));
        assert!(freqs.weight_of(5, 1).unwrap() > 0.0); // 'in' = 0.142
    }

    #[test]
    fn tampered_weight_breaks_signature() {
        let (mut resp, params) = setup();
        // Inflate a revealed weight in doc 5's proof.
        let dv = resp.vo.docs.iter_mut().find(|d| d.doc == 5).unwrap();
        let idx = dv.revealed.iter().position(|&(_, _, w)| w > 0.0).unwrap();
        dv.revealed[idx].2 *= 2.0;
        let err = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::DocSignature { doc: 5 });
    }

    #[test]
    fn dropped_leaf_breaks_proof_shape() {
        let (mut resp, params) = setup();
        let dv = &mut resp.vo.docs[0];
        dv.revealed.remove(0);
        let err = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            VerifyError::MalformedProof(_) | VerifyError::DocSignature { .. }
        ));
    }

    #[test]
    fn missing_result_content_rejected() {
        let (mut resp, params) = setup();
        resp.contents.remove(0);
        let err = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::MissingContent { .. }));
    }

    #[test]
    fn tampered_result_content_breaks_signature() {
        let (mut resp, params) = setup();
        resp.contents[0].1 = b"forged document body".to_vec();
        let doc = resp.contents[0].0;
        let err = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::DocSignature { doc });
    }

    #[test]
    fn duplicate_doc_proof_rejected() {
        let (mut resp, params) = setup();
        let dup = resp.vo.docs[0].clone();
        resp.vo.docs.push(dup);
        let err = resolve_doc_proofs(
            &params,
            &toy_query(),
            &resp,
            &mut crate::verify::SigMemo::new(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::MalformedProof(_)));
    }
}
