//! User-side result verification.
//!
//! The verifier receives the query result, the VO, and (for TRA) the
//! result documents themselves, and decides whether the result satisfies
//! the paper's correctness criteria with respect to the owner's signed
//! index. The strategy:
//!
//! 1. **Authenticate the inputs**: reconstruct every term-(chain-)MHT
//!    root from the VO's list prefixes and complementary digests and check
//!    the owner's signature (which binds term, `f_t`, and root); for TRA
//!    likewise authenticate every document-MHT and resolve the query-term
//!    frequency of every encountered document (present value, or a proven
//!    absence via adjacent-leaf bounding).
//! 2. **Replay the deterministic threshold algorithm** over exactly those
//!    authenticated inputs. If the replay ever needs data the VO does not
//!    substantiate, the VO is insufficient and the result is rejected; a
//!    replay that terminates must reproduce the reported result exactly.
//!
//! Authentic prefixes + deterministic replay imply the correctness
//! criteria of §3.1: the threshold logic guarantees no unseen document
//! can outscore the reported ones (completeness), the recomputed scores
//! guarantee correct ranking, and signatures rule out spurious entries.

mod docproof;

use crate::access::{AccessError, FreqAccess, ListAccess};
use crate::auth::serve::QueryResponse;
use crate::auth::{dict_leaf_digest, dict_message, term_message};
use crate::types::{Query, QueryResult};
use crate::vo::{Mechanism, PrefixData, TermProof, TermVo, VerificationObject, VoSize};
use crate::{tnra, tra};
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{reconstruct_head, reconstruct_root, Digest, RsaPublicKey};
use authsearch_index::{BlockLayout, ImpactEntry};
use std::collections::HashMap;
use std::fmt;

pub use docproof::ResolvedFreqs;

/// Why a query result was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// VO does not match the query's shape (missing/mismatched terms).
    QueryShapeMismatch(String),
    /// A term list's signature did not validate.
    TermSignature {
        /// The offending term.
        term: TermId,
    },
    /// A document-MHT signature did not validate.
    DocSignature {
        /// The offending document.
        doc: DocId,
    },
    /// The dictionary-MHT signature did not validate.
    DictSignature,
    /// A Merkle/chain proof had the wrong shape.
    MalformedProof(String),
    /// A TNRA prefix was not in non-increasing weight order.
    PrefixNotOrdered {
        /// The offending term.
        term: TermId,
    },
    /// The replay needed data the VO does not substantiate.
    InsufficientData(String),
    /// A query-term frequency could be neither proven present nor absent.
    FrequencyUnproven {
        /// Document in question.
        doc: DocId,
        /// Query term in question.
        term: TermId,
    },
    /// An encountered document lacks its document-MHT proof.
    MissingDocProof {
        /// The document.
        doc: DocId,
    },
    /// A result document's content was not delivered (or does not match).
    MissingContent {
        /// The document.
        doc: DocId,
    },
    /// The replayed result differs from the reported one.
    ResultMismatch(String),
    /// A conjunctive VO does not reveal enough of a term's list for the
    /// intersection to be complete (the anchor list under TRA, every
    /// list under TNRA, must be revealed up to its signed `f_t`).
    ConjunctIncomplete {
        /// The term whose list is not fully revealed.
        term: TermId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::QueryShapeMismatch(w) => write!(f, "VO/query mismatch: {w}"),
            VerifyError::TermSignature { term } => {
                write!(f, "invalid signature on term {term}'s inverted list")
            }
            VerifyError::DocSignature { doc } => {
                write!(f, "invalid signature on document {doc}'s MHT")
            }
            VerifyError::DictSignature => write!(f, "invalid dictionary-MHT signature"),
            VerifyError::MalformedProof(w) => write!(f, "malformed proof: {w}"),
            VerifyError::PrefixNotOrdered { term } => {
                write!(f, "term {term}'s prefix violates frequency ordering")
            }
            VerifyError::InsufficientData(w) => write!(f, "VO insufficient: {w}"),
            VerifyError::FrequencyUnproven { doc, term } => {
                write!(f, "frequency of term {term} in document {doc} unproven")
            }
            VerifyError::MissingDocProof { doc } => {
                write!(f, "no document-MHT proof for encountered document {doc}")
            }
            VerifyError::MissingContent { doc } => {
                write!(f, "content of result document {doc} missing")
            }
            VerifyError::ResultMismatch(w) => write!(f, "result incorrect: {w}"),
            VerifyError::ConjunctIncomplete { term } => write!(
                f,
                "term {term}'s list not fully revealed: conjunctive completeness unproven"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<AccessError> for VerifyError {
    fn from(e: AccessError) -> Self {
        VerifyError::InsufficientData(e.what)
    }
}

/// A verified result plus bookkeeping for the evaluation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedResult {
    /// The result, now known to satisfy the correctness criteria.
    pub result: QueryResult,
    /// Size breakdown of the VO that was checked.
    pub vo_size: VoSize,
}

/// Public parameters the verifier needs (distributed by the data owner
/// alongside the public key).
#[derive(Debug, Clone)]
pub struct VerifierParams {
    /// The owner's public key.
    pub public_key: RsaPublicKey,
    /// Block layout (for chain-MHT capacities).
    pub layout: BlockLayout,
    /// The mechanism the owner deployed.
    pub mechanism: Mechanism,
    /// Collection size `n` (public metadata; feeds `w_{Q,t}`).
    pub num_docs: usize,
    /// Okapi parameters the index was built with.
    pub okapi: authsearch_index::OkapiParams,
}

impl VerifierParams {
    fn chain_capacity(&self) -> usize {
        let leaf = if self.mechanism.is_tra() { 4 } else { 8 };
        self.layout.chain_capacity(leaf)
    }
}

/// Score comparison tolerance: engine and verifier execute the identical
/// f64 operations in the identical order, so any real discrepancy is a
/// lie; the epsilon only absorbs platform-level FMA contraction.
const SCORE_EPS: f64 = 1e-9;

/// Signatures already proven valid during one batch-verification
/// session: `(message, signature)` byte pairs. Threaded through
/// [`verify_with_memo`] so a hot-term (or dictionary) signature shared
/// by many responses in a batch costs one RSA exponentiation total —
/// the cross-response dedup that motivates
/// [`crate::Client::verify_batch`]. Pairs are inserted only after
/// verification succeeds, and validity of a pair is independent of the
/// response it arrived in, so the memo is sound by construction.
pub(crate) type SigMemo = std::collections::HashSet<(Vec<u8>, Vec<u8>)>;

/// Verify a response against a query whose weights the caller already
/// trusts (`query.wq` computed locally, or the toy example's published
/// weights). `r` is the result size the user requested.
pub fn verify(
    params: &VerifierParams,
    query: &Query,
    r: usize,
    response: &QueryResponse,
) -> Result<VerifiedResult, VerifyError> {
    verify_with_memo(params, query, r, response, &mut SigMemo::new())
}

/// [`verify`] with a cross-response signature memo (see [`SigMemo`]).
pub(crate) fn verify_with_memo(
    params: &VerifierParams,
    query: &Query,
    r: usize,
    response: &QueryResponse,
    memo: &mut SigMemo,
) -> Result<VerifiedResult, VerifyError> {
    let vo = &response.vo;
    check_query_shape(params, query, vo)?;

    // Step 1: authenticate every list prefix.
    let mut term_roots = Vec::with_capacity(vo.terms.len());
    for tv in &vo.terms {
        term_roots.push(verify_term_prefix(params, tv)?);
    }
    verify_term_signatures(params, vo, &term_roots, memo)?;

    // Step 2: mechanism-specific replay.
    let replayed = if params.mechanism.is_tra() {
        let freqs = docproof::resolve_doc_proofs(params, query, response, memo)?;
        let lists = TraVoLists::build(query, vo, &freqs)?;
        tra::run(&lists, &freqs, query, r)?
    } else {
        let lists = TnraVoLists::build(vo)?;
        tnra::run(&lists, query, r)?
    };

    // Step 3: the reported result must equal the replayed one.
    compare_results(&replayed.result, &response.result)?;

    Ok(VerifiedResult {
        result: response.result.clone(),
        vo_size: vo.size(),
    })
}

/// Verify a conjunctive (AND-semantics) response: same inputs as
/// [`verify`], but the result is required to be the *exact* top-`r` of
/// the documents containing **every** query term.
///
/// Beyond authenticating the list prefixes and signatures exactly as
/// the disjunctive verifier does, this enforces *intersection
/// completeness* from the existing signed structures alone:
///
/// * the anchor list (smallest signed `f_t`,
///   `crate::conjunctive::anchor_index` — recomputed here from the
///   signed values, never taken from the server) must be revealed in
///   full, so the candidate set is provably exhaustive;
/// * under **TRA**, every candidate's membership in the other lists is
///   settled by its authenticated document-MHT: a revealed `(t, w)`
///   leaf proves presence, an adjacent bounding pair proves absence —
///   so no conjunct can be silently dropped and no outsider smuggled
///   in;
/// * under **TNRA**, every query term's list must be revealed in full
///   ([`VerifyError::ConjunctIncomplete`] otherwise) and absence is
///   proven by exhaustion against the signed roots.
///
/// The ranking replay is byte-for-byte the engine's own code
/// (`crate::conjunctive`), so any score or ordering deviation is a lie,
/// not a rounding artifact.
pub fn verify_conjunctive(
    params: &VerifierParams,
    query: &Query,
    r: usize,
    response: &QueryResponse,
) -> Result<VerifiedResult, VerifyError> {
    verify_conjunctive_with_memo(params, query, r, response, &mut SigMemo::new())
}

/// [`verify_conjunctive`] with a cross-response signature memo.
pub(crate) fn verify_conjunctive_with_memo(
    params: &VerifierParams,
    query: &Query,
    r: usize,
    response: &QueryResponse,
    memo: &mut SigMemo,
) -> Result<VerifiedResult, VerifyError> {
    let vo = &response.vo;
    check_query_shape(params, query, vo)?;

    // Authenticate every list prefix and its signature, exactly as the
    // disjunctive path does.
    let mut term_roots = Vec::with_capacity(vo.terms.len());
    for tv in &vo.terms {
        term_roots.push(verify_term_prefix(params, tv)?);
    }
    verify_term_signatures(params, vo, &term_roots, memo)?;

    let q = query.terms.len();
    if q == 0 {
        // The empty conjunction: trivially the empty result.
        compare_results(&QueryResult::default(), &response.result)?;
        return Ok(VerifiedResult {
            result: response.result.clone(),
            vo_size: vo.size(),
        });
    }

    // The anchor is derived from the *signed* f_t values: understating
    // one to shrink the reveal obligation breaks a list signature first.
    let fts: Vec<usize> = vo.terms.iter().map(|tv| tv.ft as usize).collect();
    let anchor = crate::conjunctive::anchor_index(&fts);
    let wq: Vec<f64> = query.terms.iter().map(|qt| qt.wq).collect();

    let expected = if params.mechanism.is_tra() {
        let atv = vo.terms.get(anchor).ok_or_else(|| {
            VerifyError::MalformedProof(format!("anchor {anchor} has no VO term"))
        })?;
        if atv.prefix.len() != atv.ft as usize {
            return Err(VerifyError::ConjunctIncomplete { term: atv.term });
        }
        let PrefixData::DocIds(candidates) = &atv.prefix else {
            return Err(VerifyError::MalformedProof(format!(
                "term {}: prefix payload does not match mechanism",
                atv.term
            )));
        };
        // Authenticate the document-MHT proofs; they certify, for every
        // candidate × query term, either the weight or a proven absence.
        let freqs = docproof::resolve_doc_proofs(params, query, response, memo)?;
        crate::conjunctive::rank_intersection(candidates, &wq, |d, i| freqs.weight_of(d, i), r)
            .map_err(|(doc, i)| {
                if freqs.contains(doc) {
                    VerifyError::FrequencyUnproven {
                        doc,
                        term: query.terms.get(i).map_or(0, |qt| qt.term),
                    }
                } else {
                    VerifyError::MissingDocProof { doc }
                }
            })?
    } else {
        // TNRA: every list fully revealed → membership lookups by map,
        // absence by exhaustion.
        let mut maps: Vec<HashMap<DocId, f32>> = Vec::with_capacity(q);
        let mut candidates: Vec<DocId> = Vec::new();
        for (i, tv) in vo.terms.iter().enumerate() {
            let PrefixData::Entries(entries) = &tv.prefix else {
                return Err(VerifyError::MalformedProof(format!(
                    "term {}: prefix payload does not match mechanism",
                    tv.term
                )));
            };
            if entries.len() != tv.ft as usize {
                return Err(VerifyError::ConjunctIncomplete { term: tv.term });
            }
            // Same defense-in-depth screen as the disjunctive replay.
            if entries
                .windows(2)
                .any(|pair| matches!(pair, [a, b] if a.weight < b.weight))
            {
                return Err(VerifyError::PrefixNotOrdered { term: tv.term });
            }
            if i == anchor {
                candidates = entries.iter().map(|e| e.doc).collect();
            }
            maps.push(entries.iter().map(|e| (e.doc, e.weight)).collect());
        }
        crate::conjunctive::rank_intersection(
            &candidates,
            &wq,
            |d, i| Some(maps.get(i).and_then(|m| m.get(&d)).copied().unwrap_or(0.0)),
            r,
        )
        .map_err(|(doc, i)| VerifyError::FrequencyUnproven {
            doc,
            term: query.terms.get(i).map_or(0, |qt| qt.term),
        })?
    };

    compare_results(&expected, &response.result)?;
    Ok(VerifiedResult {
        result: response.result.clone(),
        vo_size: vo.size(),
    })
}

/// The VO must speak for this mechanism and exactly this query's terms.
fn check_query_shape(
    params: &VerifierParams,
    query: &Query,
    vo: &VerificationObject,
) -> Result<(), VerifyError> {
    if vo.mechanism != params.mechanism {
        return Err(VerifyError::QueryShapeMismatch(format!(
            "mechanism {} but owner deployed {}",
            vo.mechanism.name(),
            params.mechanism.name()
        )));
    }
    if vo.terms.len() != query.terms.len() {
        return Err(VerifyError::QueryShapeMismatch(format!(
            "{} term proofs for {} query terms",
            vo.terms.len(),
            query.terms.len()
        )));
    }
    for (tv, qt) in vo.terms.iter().zip(&query.terms) {
        if tv.term != qt.term {
            return Err(VerifyError::QueryShapeMismatch(format!(
                "term proof for {} where query has {}",
                tv.term, qt.term
            )));
        }
    }
    Ok(())
}

/// Reconstruct one term's root/head digest from its prefix + proof.
fn verify_term_prefix(params: &VerifierParams, tv: &TermVo) -> Result<Digest, VerifyError> {
    let li = tv.ft as usize;
    let k = tv.prefix.len();
    if k > li {
        return Err(VerifyError::MalformedProof(format!(
            "term {}: prefix of {k} entries exceeds f_t = {li}",
            tv.term
        )));
    }
    let leaf_digests: Vec<Digest> = match (&tv.prefix, params.mechanism.is_tra()) {
        (PrefixData::DocIds(ids), true) => ids
            .iter()
            .map(|&d| crate::auth::tra_leaf_digest(d))
            .collect(),
        (PrefixData::Entries(entries), false) => {
            entries.iter().map(crate::auth::tnra_leaf_digest).collect()
        }
        _ => {
            return Err(VerifyError::MalformedProof(format!(
                "term {}: prefix payload does not match mechanism",
                tv.term
            )))
        }
    };

    match (&tv.proof, params.mechanism.is_cmht()) {
        (TermProof::Mht(proof), false) => {
            let pairs: Vec<(usize, Digest)> = leaf_digests
                .iter()
                .enumerate()
                .map(|(i, &d)| (i, d))
                .collect();
            reconstruct_root(li, &pairs, proof).ok_or_else(|| {
                VerifyError::MalformedProof(format!("term {}: MHT proof shape", tv.term))
            })
        }
        (TermProof::Cmht(proof), true) => {
            reconstruct_head(li, params.chain_capacity(), &leaf_digests, proof).ok_or_else(|| {
                VerifyError::MalformedProof(format!("term {}: chain proof shape", tv.term))
            })
        }
        _ => Err(VerifyError::MalformedProof(format!(
            "term {}: proof kind does not match mechanism",
            tv.term
        ))),
    }
}

/// Check per-list signatures, or the single dictionary-MHT signature.
///
/// The per-list path hands the response's term signatures to
/// [`RsaPublicKey::verify_batch`] — deterministic, exactly equivalent
/// to per-signature verification, but each distinct pair is checked
/// once in one shared Montgomery domain and a rejection names the
/// exact offending term. Pairs the session `memo` already proved (the
/// same hot-term or dictionary signature recurring across a batch of
/// responses) are skipped entirely.
fn verify_term_signatures(
    params: &VerifierParams,
    vo: &VerificationObject,
    term_roots: &[Digest],
    memo: &mut SigMemo,
) -> Result<(), VerifyError> {
    if let Some(dict) = &vo.dict {
        // §3.4 mode: reconstruct the dictionary root from the terms' leaf
        // digests and the multiproof.
        let mut pairs: Vec<(usize, Digest)> = vo
            .terms
            .iter()
            .zip(term_roots)
            .map(|(tv, root)| (tv.term as usize, dict_leaf_digest(tv.term, tv.ft, root)))
            .collect();
        pairs.sort_unstable_by_key(|&(p, _)| p);
        pairs.dedup_by_key(|&mut (p, _)| p);
        let root = reconstruct_root(dict.num_terms as usize, &pairs, &dict.proof)
            .ok_or_else(|| VerifyError::MalformedProof("dictionary-MHT proof shape".into()))?;
        // One dictionary signature per deployment: across a batch of
        // responses the memo reduces it to one RSA check total.
        let message = dict_message(dict.num_terms, &root);
        let key = (message, dict.signature.clone());
        if !memo.contains(&key) {
            params
                .public_key
                .verify(&key.0, &key.1)
                .map_err(|_| VerifyError::DictSignature)?;
            memo.insert(key);
        }
        return Ok(());
    }
    let mut messages = Vec::with_capacity(vo.terms.len());
    let mut sigs: Vec<&[u8]> = Vec::with_capacity(vo.terms.len());
    for (tv, root) in vo.terms.iter().zip(term_roots) {
        let Some(sig) = tv.signature.as_deref() else {
            return Err(VerifyError::MalformedProof("missing list signature".into()));
        };
        messages.push(term_message(tv.term, tv.ft, root));
        sigs.push(sig);
    }
    batch_verify_with_memo(params, memo, &messages, sigs.iter().copied()).map_err(|culprit| {
        VerifyError::TermSignature {
            term: vo.terms.get(culprit).map_or(0, |tv| tv.term),
        }
    })
}

/// Run [`RsaPublicKey::verify_batch`] over the pairs the `memo` has not
/// already proven, recording successes. Returns the index (into
/// `messages`) of the offending pair on failure.
pub(crate) fn batch_verify_with_memo<'a>(
    params: &VerifierParams,
    memo: &mut crate::verify::SigMemo,
    messages: &[Vec<u8>],
    sigs: impl Iterator<Item = &'a [u8]>,
) -> Result<(), usize> {
    let pairs: Vec<(&[u8], &[u8])> = messages.iter().map(|m| m.as_slice()).zip(sigs).collect();
    // Pairs this session has not yet verified, with the owned memo key
    // built once and reused for the post-verification insert.
    type Keyed = (usize, (Vec<u8>, Vec<u8>));
    let mut fresh: Vec<Keyed> = Vec::new();
    for (i, &(m, s)) in pairs.iter().enumerate() {
        let key = (m.to_vec(), s.to_vec());
        if !memo.contains(&key) {
            fresh.push((i, key));
        }
    }
    let items: Vec<(&[u8], &[u8])> = fresh
        .iter()
        .map(|(_, (m, s))| (m.as_slice(), s.as_slice()))
        .collect();
    params
        .public_key
        .verify_batch(&items)
        .map_err(|e| fresh.get(e.culprit).map_or(0, |f| f.0))?;
    for (_, key) in fresh {
        memo.insert(key);
    }
    Ok(())
}

fn compare_results(replayed: &QueryResult, reported: &QueryResult) -> Result<(), VerifyError> {
    if replayed.entries.len() != reported.entries.len() {
        return Err(VerifyError::ResultMismatch(format!(
            "{} entries reported, replay yields {}",
            reported.entries.len(),
            replayed.entries.len()
        )));
    }
    for (a, b) in replayed.entries.iter().zip(&reported.entries) {
        if a.doc != b.doc {
            return Err(VerifyError::ResultMismatch(format!(
                "rank holds document {} but replay yields {}",
                b.doc, a.doc
            )));
        }
        if (a.score - b.score).abs() > SCORE_EPS {
            return Err(VerifyError::ResultMismatch(format!(
                "document {} reported score {} but replay yields {}",
                b.doc, b.score, a.score
            )));
        }
    }
    Ok(())
}

// ---- VO-backed data sources for the replay --------------------------------

/// TNRA replay lists: the `⟨d, f⟩` prefixes from the VO.
struct TnraVoLists {
    lens: Vec<usize>,
    prefixes: Vec<Vec<ImpactEntry>>,
}

impl TnraVoLists {
    fn build(vo: &VerificationObject) -> Result<TnraVoLists, VerifyError> {
        let mut lens = Vec::with_capacity(vo.terms.len());
        let mut prefixes = Vec::with_capacity(vo.terms.len());
        for tv in &vo.terms {
            let PrefixData::Entries(entries) = &tv.prefix else {
                return Err(VerifyError::MalformedProof(
                    "TNRA VO without impact entries".into(),
                ));
            };
            // Defense in depth: the owner's lists are frequency-ordered;
            // an out-of-order prefix can only be a corrupt artifact.
            if entries
                .windows(2)
                .any(|pair| matches!(pair, [a, b] if a.weight < b.weight))
            {
                return Err(VerifyError::PrefixNotOrdered { term: tv.term });
            }
            lens.push(tv.ft as usize);
            prefixes.push(entries.clone());
        }
        Ok(TnraVoLists { lens, prefixes })
    }
}

impl ListAccess for TnraVoLists {
    fn list_len(&self, i: usize) -> usize {
        self.lens.get(i).copied().unwrap_or(0)
    }

    fn entry(&self, i: usize, pos: usize) -> Result<Option<ImpactEntry>, AccessError> {
        if pos >= self.list_len(i) {
            return Ok(None);
        }
        let prefix = self
            .prefixes
            .get(i)
            .ok_or_else(|| AccessError::new(format!("replay touched unknown query list {i}")))?;
        prefix.get(pos).copied().map(Some).ok_or_else(|| {
            AccessError::new(format!(
                "replay needs entry {pos} of query list {i}, prefix has {}",
                prefix.len()
            ))
        })
    }
}

/// TRA replay lists: doc-id prefixes whose weights are resolved *lazily*
/// through the authenticated document-MHT frequencies. Laziness matters:
/// buddy inclusion pads prefixes with entries beyond the cut-off whose
/// documents were never encountered and thus carry no document proof —
/// the replay never reads them, so they must not trigger a rejection.
struct TraVoLists<'a> {
    lens: Vec<usize>,
    prefixes: Vec<Vec<DocId>>,
    freqs: &'a ResolvedFreqs,
}

impl<'a> TraVoLists<'a> {
    fn build(
        _query: &Query,
        vo: &VerificationObject,
        freqs: &'a ResolvedFreqs,
    ) -> Result<TraVoLists<'a>, VerifyError> {
        let mut lens = Vec::with_capacity(vo.terms.len());
        let mut prefixes = Vec::with_capacity(vo.terms.len());
        for tv in &vo.terms {
            let PrefixData::DocIds(ids) = &tv.prefix else {
                return Err(VerifyError::MalformedProof(
                    "TRA VO without doc-id prefix".into(),
                ));
            };
            lens.push(tv.ft as usize);
            prefixes.push(ids.clone());
        }
        Ok(TraVoLists {
            lens,
            prefixes,
            freqs,
        })
    }
}

impl ListAccess for TraVoLists<'_> {
    fn list_len(&self, i: usize) -> usize {
        self.lens.get(i).copied().unwrap_or(0)
    }

    fn entry(&self, i: usize, pos: usize) -> Result<Option<ImpactEntry>, AccessError> {
        if pos >= self.list_len(i) {
            return Ok(None);
        }
        let prefix = self
            .prefixes
            .get(i)
            .ok_or_else(|| AccessError::new(format!("replay touched unknown query list {i}")))?;
        let Some(&doc) = prefix.get(pos) else {
            return Err(AccessError::new(format!(
                "replay needs entry {pos} of query list {i}, prefix has {}",
                prefix.len()
            )));
        };
        let weight = self.freqs.weight_of(doc, i).ok_or_else(|| {
            AccessError::new(format!(
                "prefix doc {doc} of query list {i} has no certified frequency"
            ))
        })?;
        Ok(Some(ImpactEntry { doc, weight }))
    }
}

impl FreqAccess for ResolvedFreqs {
    fn weight(&self, d: DocId, i: usize) -> Result<f32, AccessError> {
        self.weight_of(d, i).ok_or_else(|| {
            AccessError::new(format!("frequency of doc {d} for query term #{i} unproven"))
        })
    }
}

/// Lookup map `doc → per-query-term weight` produced by document-proof
/// resolution; shared with the replay as its [`FreqAccess`].
pub(crate) type FreqMap = HashMap<DocId, Vec<Option<f32>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{AuthConfig, AuthenticatedIndex};
    use crate::toy::{toy_contents, toy_index, toy_query};
    use authsearch_crypto::keys::{cached_keypair, TEST_KEY_BITS};

    fn setup(mechanism: Mechanism) -> (AuthenticatedIndex, VerifierParams) {
        let key = cached_keypair(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let auth = AuthenticatedIndex::build(toy_index(), &key, config, &toy_contents());
        let params = VerifierParams {
            public_key: key.public_key().clone(),
            layout: config.layout,
            mechanism,
            num_docs: 9,
            okapi: authsearch_index::OkapiParams::default(),
        };
        (auth, params)
    }

    #[test]
    fn missing_term_proof_rejected() {
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        resp.vo.terms.pop();
        assert!(matches!(
            verify(&params, &toy_query(), 2, &resp),
            Err(VerifyError::QueryShapeMismatch(_))
        ));
    }

    #[test]
    fn prefix_longer_than_ft_rejected() {
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        // Claim a tiny ft for a list with a longer prefix.
        resp.vo.terms[2].ft = 1;
        assert!(matches!(
            verify(&params, &toy_query(), 2, &resp),
            Err(VerifyError::MalformedProof(_))
        ));
    }

    #[test]
    fn prefix_kind_mismatch_rejected() {
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        // Swap in a TRA-style doc-id prefix under a TNRA mechanism.
        let ids = match &resp.vo.terms[0].prefix {
            PrefixData::Entries(entries) => entries.iter().map(|e| e.doc).collect(),
            PrefixData::DocIds(ids) => ids.clone(),
        };
        resp.vo.terms[0].prefix = PrefixData::DocIds(ids);
        assert!(matches!(
            verify(&params, &toy_query(), 2, &resp),
            Err(VerifyError::MalformedProof(_))
        ));
    }

    #[test]
    fn proof_kind_mismatch_rejected() {
        let (auth, params) = setup(Mechanism::TnraCmht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        // Replace the chain proof with a plain-MHT proof.
        let digests = match &resp.vo.terms[0].proof {
            TermProof::Cmht(p) => p.tail.digests.clone(),
            TermProof::Mht(p) => p.digests.clone(),
        };
        resp.vo.terms[0].proof = TermProof::Mht(authsearch_crypto::MerkleProof { digests });
        assert!(matches!(
            verify(&params, &toy_query(), 2, &resp),
            Err(VerifyError::MalformedProof(_))
        ));
    }

    #[test]
    fn missing_per_list_signature_rejected() {
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        resp.vo.terms[1].signature = None;
        assert!(matches!(
            verify(&params, &toy_query(), 2, &resp),
            Err(VerifyError::MalformedProof(_))
        ));
    }

    #[test]
    fn unordered_tnra_prefix_rejected() {
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        // Make a prefix weight-increasing; even with a fixed-up proof the
        // ordering screen fires first.
        if let PrefixData::Entries(entries) = &mut resp.vo.terms[2].prefix {
            entries.reverse();
        }
        let err = verify(&params, &toy_query(), 2, &resp).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::PrefixNotOrdered { .. } | VerifyError::TermSignature { .. }
        ));
    }

    #[test]
    fn doc_proof_for_unencountered_doc_is_harmless_but_duplicates_reject() {
        // Adding an unrelated (valid) doc proof is not itself an attack —
        // the result must still match — but duplicates are rejected.
        let (auth, params) = setup(Mechanism::TraMht);
        let resp = auth.query(&toy_query(), 2, &toy_contents());
        let mut dup = resp.clone();
        dup.vo.docs.push(resp.vo.docs[0].clone());
        assert!(matches!(
            verify(&params, &toy_query(), 2, &dup),
            Err(VerifyError::MalformedProof(_))
        ));
    }

    #[test]
    fn extra_unrelated_content_rejected_only_if_results_differ() {
        // Appending extra content for a non-result doc changes nothing
        // the verifier checks (contents are looked up by result doc id).
        let (auth, params) = setup(Mechanism::TraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        resp.contents.push((8, b"irrelevant".to_vec()));
        assert!(verify(&params, &toy_query(), 2, &resp).is_ok());
    }

    #[test]
    fn dict_proof_on_per_list_deployment_rejected() {
        // The owner deployed per-list signatures; a VO claiming a
        // dictionary-MHT signature cannot produce a valid signature for
        // the dict message.
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query(&toy_query(), 2, &toy_contents());
        let digests = vec![authsearch_crypto::Digest::ZERO; 4];
        resp.vo.dict = Some(crate::vo::DictVo {
            num_terms: 16,
            proof: authsearch_crypto::MerkleProof { digests },
            signature: vec![0u8; 64],
        });
        assert!(verify(&params, &toy_query(), 2, &resp).is_err());
    }

    #[test]
    fn empty_query_verifies_trivially() {
        let (auth, params) = setup(Mechanism::TnraCmht);
        let q = Query::default();
        let resp = auth.query(&q, 5, &toy_contents());
        assert!(resp.result.entries.is_empty());
        let verified = verify(&params, &q, 5, &resp).unwrap();
        assert!(verified.result.entries.is_empty());
    }

    #[test]
    fn honest_conjunctive_verifies_under_every_mechanism() {
        for mechanism in Mechanism::ALL {
            let (auth, params) = setup(mechanism);
            let resp = auth.query_conjunctive(&toy_query(), 2, &toy_contents());
            let verified = verify_conjunctive(&params, &toy_query(), 2, &resp)
                .unwrap_or_else(|e| panic!("{mechanism:?}: {e}"));
            assert_eq!(verified.result.docs(), vec![6], "{mechanism:?}");
        }
    }

    #[test]
    fn empty_conjunctive_query_verifies_trivially() {
        let (auth, params) = setup(Mechanism::TraMht);
        let q = Query::default();
        let resp = auth.query_conjunctive(&q, 5, &toy_contents());
        let verified = verify_conjunctive(&params, &q, 5, &resp).unwrap();
        assert!(verified.result.entries.is_empty());
    }

    #[test]
    fn widened_conjunctive_result_rejected() {
        // The engine reports a doc that misses a conjunct (d5 lacks
        // 'sleeps' and 'dark') with plausible score and valid proofs —
        // the replay must narrow the intersection back to [6].
        let (auth, params) = setup(Mechanism::TnraMht);
        let mut resp = auth.query_conjunctive(&toy_query(), 2, &toy_contents());
        let score = resp.result.entries[0].score / 2.0;
        resp.result
            .entries
            .push(crate::types::ResultEntry { doc: 5, score });
        resp.contents.push((5, toy_contents()[5].clone()));
        assert!(matches!(
            verify_conjunctive(&params, &toy_query(), 2, &resp),
            Err(VerifyError::ResultMismatch(_))
        ));
    }

    #[test]
    fn conjunctive_vo_fails_disjunctive_verification_and_vice_versa() {
        // Mode confusion must not slip through: a conjunctive VO's
        // zero-length prefixes cannot substantiate a disjunctive replay
        // (TRA), and a disjunctive VO's short prefixes fail the
        // conjunctive completeness bar. Results differ for the toy
        // query ([6] vs [6, 5]), so the two VOs are never interchangeable.
        let (auth, params) = setup(Mechanism::TraMht);
        let conj = auth.query_conjunctive(&toy_query(), 2, &toy_contents());
        let disj = auth.query(&toy_query(), 2, &toy_contents());
        assert_ne!(conj.result, disj.result);
        assert!(verify(&params, &toy_query(), 2, &conj).is_err());
        assert!(verify_conjunctive(&params, &toy_query(), 2, &disj).is_err());
    }
}
