//! Verification objects: the integrity proofs returned with every query
//! result, and their size accounting (the paper's Figures 13(d), 14(d),
//! 15(d) and Table 2).

use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{ChainPrefixProof, Digest, MerkleProof, DIGEST_LEN};
use authsearch_index::ImpactEntry;

/// The four authentication mechanisms evaluated in the paper (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Threshold with Random Access + plain Merkle-hash-tree lists.
    TraMht,
    /// Threshold with Random Access + chain-MHT lists (with buddy
    /// inclusion by default).
    TraCmht,
    /// Threshold with No Random Access + plain MHT lists.
    TnraMht,
    /// Threshold with No Random Access + chain-MHT lists.
    TnraCmht,
}

impl Mechanism {
    /// All four, in the paper's presentation order.
    pub const ALL: [Mechanism; 4] = [
        Mechanism::TraMht,
        Mechanism::TraCmht,
        Mechanism::TnraMht,
        Mechanism::TnraCmht,
    ];

    /// True for the TRA query-processing variants.
    pub fn is_tra(self) -> bool {
        matches!(self, Mechanism::TraMht | Mechanism::TraCmht)
    }

    /// True for the chain-MHT authentication variants.
    pub fn is_cmht(self) -> bool {
        matches!(self, Mechanism::TraCmht | Mechanism::TnraCmht)
    }

    /// Display name used in benchmark tables ("TRA-MHT" etc.).
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::TraMht => "TRA-MHT",
            Mechanism::TraCmht => "TRA-CMHT",
            Mechanism::TnraMht => "TNRA-MHT",
            Mechanism::TnraCmht => "TNRA-CMHT",
        }
    }
}

/// The authenticated prefix of one query term's inverted list.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefixData {
    /// TRA lists: document identifiers only (4 bytes each); their
    /// frequencies travel in the document-MHTs.
    DocIds(Vec<DocId>),
    /// TNRA lists: full `⟨d, f⟩` impact entries (8 bytes each).
    Entries(Vec<ImpactEntry>),
}

impl PrefixData {
    /// Number of entries in the prefix.
    pub fn len(&self) -> usize {
        match self {
            PrefixData::DocIds(v) => v.len(),
            PrefixData::Entries(v) => v.len(),
        }
    }

    /// True when no entries were read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// VO bytes of the prefix data.
    pub fn data_bytes(&self) -> usize {
        match self {
            PrefixData::DocIds(v) => v.len() * 4,
            PrefixData::Entries(v) => v.len() * ImpactEntry::BYTES,
        }
    }
}

/// Complementary digests for one inverted-list prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum TermProof {
    /// Plain MHT over the whole list (the server reads the entire list to
    /// regenerate these).
    Mht(MerkleProof),
    /// Chain-MHT: digests confined to the last-touched block plus its
    /// successor's digest.
    Cmht(ChainPrefixProof),
}

impl TermProof {
    /// Number of digests carried.
    pub fn num_digests(&self) -> usize {
        match self {
            TermProof::Mht(p) => p.digests.len(),
            TermProof::Cmht(p) => p.num_digests(),
        }
    }
}

/// Per-query-term verification data.
#[derive(Debug, Clone, PartialEq)]
pub struct TermVo {
    /// The query term this list belongs to.
    pub term: TermId,
    /// `f_t` from the dictionary (covered by the list signature).
    pub ft: u32,
    /// Authenticated prefix (processed entries, buddy-padded under CMHT).
    pub prefix: PrefixData,
    /// Complementary digests.
    pub proof: TermProof,
    /// Per-list signature (absent in dictionary-MHT mode).
    pub signature: Option<Vec<u8>>,
}

/// Per-document verification data (TRA only): certifies the query-term
/// frequencies of one encountered document via its document-MHT.
#[derive(Debug, Clone, PartialEq)]
pub struct DocVo {
    /// The document.
    pub doc: DocId,
    /// Total leaves in the document-MHT (distinct terms in the document).
    pub num_leaves: u32,
    /// Revealed leaves as `(position, term, w_{d,t})`, ascending position:
    /// the query terms present in the document, the boundary pairs proving
    /// absent query terms, and any buddies.
    pub revealed: Vec<(u32, TermId, f32)>,
    /// Complementary digests up to the document-MHT root.
    pub proof: MerkleProof,
    /// `h(doc)` for non-result documents; result documents are delivered
    /// in full and the user hashes them itself.
    pub content_digest: Option<Digest>,
    /// Signature over the document-MHT root.
    pub signature: Vec<u8>,
}

/// Proof connecting per-term root digests to the single dictionary-MHT
/// signature (§3.4's space optimization).
#[derive(Debug, Clone, PartialEq)]
pub struct DictVo {
    /// Dictionary size `m` (tree shape parameter).
    pub num_terms: u32,
    /// Multi-proof for the query terms' leaf positions.
    pub proof: MerkleProof,
    /// Signature over the dictionary-MHT root.
    pub signature: Vec<u8>,
}

/// The complete verification object for one query result.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationObject {
    /// Which mechanism produced this VO.
    pub mechanism: Mechanism,
    /// One entry per query term, in query order.
    pub terms: Vec<TermVo>,
    /// Document proofs (TRA mechanisms only), in encounter order.
    pub docs: Vec<DocVo>,
    /// Dictionary-MHT proof when per-list signatures are consolidated.
    pub dict: Option<DictVo>,
}

/// Byte breakdown of a VO — the paper's Table 2 splits VOs into data
/// (leaf) bytes and digest bytes; signatures are reported separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoSize {
    /// Leaf/data bytes: prefix entries, revealed document-MHT leaves,
    /// and fixed per-item headers.
    pub data: usize,
    /// Digest bytes (16 per digest, including content digests).
    pub digest: usize,
    /// Signature bytes.
    pub signature: usize,
}

impl VoSize {
    /// Total VO size in bytes.
    pub fn total(&self) -> usize {
        self.data + self.digest + self.signature
    }

    /// Data share in percent (Table 2's "Data (%)", computed over
    /// data + digest as in the paper).
    pub fn data_pct(&self) -> f64 {
        let base = (self.data + self.digest) as f64;
        if base == 0.0 {
            0.0
        } else {
            100.0 * self.data as f64 / base
        }
    }

    /// Digest share in percent (Table 2's "Digest (%)").
    pub fn digest_pct(&self) -> f64 {
        let base = (self.data + self.digest) as f64;
        if base == 0.0 {
            0.0
        } else {
            100.0 * self.digest as f64 / base
        }
    }
}

impl std::ops::Add for VoSize {
    type Output = VoSize;
    fn add(self, rhs: VoSize) -> VoSize {
        VoSize {
            data: self.data + rhs.data,
            digest: self.digest + rhs.digest,
            signature: self.signature + rhs.signature,
        }
    }
}

impl VerificationObject {
    /// Compute the byte breakdown.
    pub fn size(&self) -> VoSize {
        let mut s = VoSize::default();
        for t in &self.terms {
            s.data += 8; // term id + f_t header
            s.data += t.prefix.data_bytes();
            s.digest += t.proof.num_digests() * DIGEST_LEN;
            if let Some(sig) = &t.signature {
                s.signature += sig.len();
            }
        }
        for d in &self.docs {
            s.data += 8; // doc id + leaf count header
            s.data += d.revealed.len() * 8; // ⟨t, w⟩ leaves
            s.digest += d.proof.digests.len() * DIGEST_LEN;
            if d.content_digest.is_some() {
                s.digest += DIGEST_LEN;
            }
            s.signature += d.signature.len();
        }
        if let Some(dict) = &self.dict {
            s.data += 4;
            s.digest += dict.proof.digests.len() * DIGEST_LEN;
            s.signature += dict.signature.len();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_predicates() {
        assert!(Mechanism::TraMht.is_tra());
        assert!(Mechanism::TraCmht.is_tra() && Mechanism::TraCmht.is_cmht());
        assert!(!Mechanism::TnraMht.is_cmht());
        assert!(Mechanism::TnraCmht.is_cmht() && !Mechanism::TnraCmht.is_tra());
        assert_eq!(Mechanism::ALL.len(), 4);
    }

    #[test]
    fn prefix_data_bytes() {
        assert_eq!(PrefixData::DocIds(vec![1, 2, 3]).data_bytes(), 12);
        let entries = vec![ImpactEntry {
            doc: 1,
            weight: 0.5,
        }];
        assert_eq!(PrefixData::Entries(entries).data_bytes(), 8);
    }

    #[test]
    fn vo_size_accounting() {
        let vo = VerificationObject {
            mechanism: Mechanism::TnraMht,
            terms: vec![TermVo {
                term: 7,
                ft: 10,
                prefix: PrefixData::Entries(vec![
                    ImpactEntry {
                        doc: 1,
                        weight: 0.5,
                    },
                    ImpactEntry {
                        doc: 2,
                        weight: 0.4,
                    },
                ]),
                proof: TermProof::Mht(MerkleProof {
                    digests: vec![Digest::ZERO; 3],
                }),
                signature: Some(vec![0u8; 128]),
            }],
            docs: vec![],
            dict: None,
        };
        let s = vo.size();
        assert_eq!(s.data, 8 + 16);
        assert_eq!(s.digest, 48);
        assert_eq!(s.signature, 128);
        assert_eq!(s.total(), 8 + 16 + 48 + 128);
    }

    #[test]
    fn table2_percentages() {
        let s = VoSize {
            data: 30,
            digest: 70,
            signature: 128,
        };
        assert!((s.data_pct() - 30.0).abs() < 1e-12);
        assert!((s.digest_pct() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vo_pct_is_zero() {
        let s = VoSize::default();
        assert_eq!(s.data_pct(), 0.0);
        assert_eq!(s.digest_pct(), 0.0);
    }
}
