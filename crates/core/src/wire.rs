//! Wire serialization for verification objects.
//!
//! The VO travels from the search engine to the user; this module defines
//! its byte encoding (little-endian, length-prefixed) so transmission
//! sizes are concrete rather than estimated. The encoding is
//! deliberately plain — every field the size model of [`crate::vo`]
//! charges appears exactly once.

use crate::vo::{DictVo, DocVo, Mechanism, PrefixData, TermProof, TermVo, VerificationObject};
use authsearch_crypto::{ChainPrefixProof, Digest, MerkleProof, DIGEST_LEN};
use authsearch_index::ImpactEntry;

const MAGIC: &[u8; 4] = b"AVO1";

/// Wire-format error: a malformed transmission on decode, or a VO whose
/// collections exceed what their length prefixes can represent on
/// encode. The verifier treats either like any other invalid VO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Decoding found bytes that are not a well-formed VO.
    Malformed(String),
    /// Encoding refused a collection longer than its length prefix can
    /// carry. Silently truncating (the old `as u16`/`as u32` casts)
    /// would emit a VO that decodes into something else entirely — a
    /// malformed, unverifiable proof — so oversized inputs are an error
    /// at the source instead.
    TooLong {
        /// Which collection overflowed (e.g. `"term proofs"`).
        field: &'static str,
        /// The collection's actual length.
        len: usize,
        /// The largest length the prefix can represent.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(what) => write!(f, "malformed VO encoding: {what}"),
            WireError::TooLong { field, len, max } => {
                write!(f, "VO not encodable: {field} holds {len} entries, wire format carries at most {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn err(what: &str) -> WireError {
    WireError::Malformed(what.into())
}

// ---- encoding -------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write a u16 length prefix, refusing lengths it cannot represent.
    fn len16(&mut self, n: usize, field: &'static str) -> Result<(), WireError> {
        let v = u16::try_from(n).map_err(|_| WireError::TooLong {
            field,
            len: n,
            max: u16::MAX as usize,
        })?;
        self.u16(v);
        Ok(())
    }
    /// Write a u32 length prefix, refusing lengths it cannot represent.
    fn len32(&mut self, n: usize, field: &'static str) -> Result<(), WireError> {
        let v = u32::try_from(n).map_err(|_| WireError::TooLong {
            field,
            len: n,
            max: u32::MAX as usize,
        })?;
        self.u32(v);
        Ok(())
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }
    fn bytes16(&mut self, b: &[u8], field: &'static str) -> Result<(), WireError> {
        self.len16(b.len(), field)?;
        self.buf.extend_from_slice(b);
        Ok(())
    }
    fn digests16(&mut self, ds: &[Digest], field: &'static str) -> Result<(), WireError> {
        self.len16(ds.len(), field)?;
        for d in ds {
            self.digest(d);
        }
        Ok(())
    }
}

/// Serialize a VO to bytes.
///
/// Fails with [`WireError::TooLong`] when a collection exceeds its
/// length prefix (e.g. ≥ 2¹⁶ term proofs or proof digests) — the VO is
/// simply not representable in this format, and truncating it would
/// produce an unverifiable transmission.
pub fn encode(vo: &VerificationObject) -> Result<Vec<u8>, WireError> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(match vo.mechanism {
        Mechanism::TraMht => 0,
        Mechanism::TraCmht => 1,
        Mechanism::TnraMht => 2,
        Mechanism::TnraCmht => 3,
    });
    w.len16(vo.terms.len(), "term proofs")?;
    for tv in &vo.terms {
        w.u32(tv.term);
        w.u32(tv.ft);
        match &tv.prefix {
            PrefixData::DocIds(ids) => {
                w.u8(0);
                w.len32(ids.len(), "doc-id prefix")?;
                for &d in ids {
                    w.u32(d);
                }
            }
            PrefixData::Entries(entries) => {
                w.u8(1);
                w.len32(entries.len(), "impact-entry prefix")?;
                for e in entries {
                    w.buf.extend_from_slice(&e.encode());
                }
            }
        }
        match &tv.proof {
            TermProof::Mht(p) => {
                w.u8(0);
                w.digests16(&p.digests, "term proof digests")?;
            }
            TermProof::Cmht(p) => {
                w.u8(1);
                w.digests16(&p.tail.digests, "chain proof digests")?;
            }
        }
        match &tv.signature {
            Some(sig) => {
                w.u8(1);
                w.bytes16(sig, "term signature")?;
            }
            None => w.u8(0),
        }
    }
    w.len32(vo.docs.len(), "document proofs")?;
    for dv in &vo.docs {
        w.u32(dv.doc);
        w.u32(dv.num_leaves);
        w.len32(dv.revealed.len(), "revealed leaves")?;
        for &(pos, term, weight) in &dv.revealed {
            w.u32(pos);
            w.u32(term);
            w.u32(weight.to_bits());
        }
        w.digests16(&dv.proof.digests, "document proof digests")?;
        match &dv.content_digest {
            Some(d) => {
                w.u8(1);
                w.digest(d);
            }
            None => w.u8(0),
        }
        w.bytes16(&dv.signature, "document signature")?;
    }
    match &vo.dict {
        Some(dict) => {
            w.u8(1);
            w.u32(dict.num_terms);
            w.digests16(&dict.proof.digests, "dictionary proof digests")?;
            w.bytes16(&dict.signature, "dictionary signature")?;
        }
        None => w.u8(0),
    }
    Ok(w.buf)
}

// ---- decoding -------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(err("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn digest(&mut self) -> Result<Digest, WireError> {
        let b = self.take(DIGEST_LEN)?;
        Digest::from_slice(b).ok_or_else(|| err("digest"))
    }
    fn bytes16(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn digests16(&mut self) -> Result<Vec<Digest>, WireError> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.digest()?);
        }
        Ok(out)
    }
}

/// Deserialize a VO from bytes.
pub fn decode(bytes: &[u8]) -> Result<VerificationObject, WireError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(err("bad magic"));
    }
    let mechanism = match r.u8()? {
        0 => Mechanism::TraMht,
        1 => Mechanism::TraCmht,
        2 => Mechanism::TnraMht,
        3 => Mechanism::TnraCmht,
        _ => return Err(err("unknown mechanism")),
    };
    let num_terms = r.u16()? as usize;
    let mut terms = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let term = r.u32()?;
        let ft = r.u32()?;
        let prefix = match r.u8()? {
            0 => {
                let n = r.u32()? as usize;
                if n > 1 << 26 {
                    return Err(err("prefix too long"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                PrefixData::DocIds(ids)
            }
            1 => {
                let n = r.u32()? as usize;
                if n > 1 << 26 {
                    return Err(err("prefix too long"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let raw = r.take(8)?;
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(raw);
                    entries.push(ImpactEntry::decode(&arr));
                }
                PrefixData::Entries(entries)
            }
            _ => return Err(err("unknown prefix kind")),
        };
        let proof = match r.u8()? {
            0 => TermProof::Mht(MerkleProof {
                digests: r.digests16()?,
            }),
            1 => TermProof::Cmht(ChainPrefixProof {
                tail: MerkleProof {
                    digests: r.digests16()?,
                },
            }),
            _ => return Err(err("unknown proof kind")),
        };
        let signature = match r.u8()? {
            0 => None,
            1 => Some(r.bytes16()?),
            _ => return Err(err("bad signature flag")),
        };
        terms.push(TermVo {
            term,
            ft,
            prefix,
            proof,
            signature,
        });
    }
    let num_docs = r.u32()? as usize;
    if num_docs > 1 << 26 {
        return Err(err("doc proof count implausible"));
    }
    let mut docs = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        let doc = r.u32()?;
        let num_leaves = r.u32()?;
        let n = r.u32()? as usize;
        if n > 1 << 26 {
            return Err(err("revealed count implausible"));
        }
        let mut revealed = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = r.u32()?;
            let term = r.u32()?;
            let weight = f32::from_bits(r.u32()?);
            revealed.push((pos, term, weight));
        }
        let proof = MerkleProof {
            digests: r.digests16()?,
        };
        let content_digest = match r.u8()? {
            0 => None,
            1 => Some(r.digest()?),
            _ => return Err(err("bad content flag")),
        };
        let signature = r.bytes16()?;
        docs.push(DocVo {
            doc,
            num_leaves,
            revealed,
            proof,
            content_digest,
            signature,
        });
    }
    let dict = match r.u8()? {
        0 => None,
        1 => Some(DictVo {
            num_terms: r.u32()?,
            proof: MerkleProof {
                digests: r.digests16()?,
            },
            signature: r.bytes16()?,
        }),
        _ => return Err(err("bad dict flag")),
    };
    if r.pos != bytes.len() {
        return Err(err("trailing bytes"));
    }
    Ok(VerificationObject {
        mechanism,
        terms,
        docs,
        dict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn sample_vo(mechanism: Mechanism, dict: bool) -> VerificationObject {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht: dict,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        publication.auth.query(&toy_query(), 2, &toy_contents()).vo
    }

    #[test]
    fn roundtrip_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let bytes = encode(&vo).unwrap();
            let back = decode(&bytes).unwrap();
            assert_eq!(back, vo, "{}", mechanism.name());
        }
    }

    #[test]
    fn roundtrip_dict_mode() {
        let vo = sample_vo(Mechanism::TnraCmht, true);
        let back = decode(&encode(&vo).unwrap()).unwrap();
        assert_eq!(back, vo);
    }

    #[test]
    fn wire_size_tracks_size_model() {
        // The wire encoding carries the modeled bytes plus only small
        // fixed framing overhead (< 10% for realistic VOs).
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let modeled = vo.size().total();
            let wire = encode(&vo).unwrap().len();
            assert!(
                wire >= modeled,
                "{}: wire {wire} < modeled {modeled}",
                mechanism.name()
            );
            assert!(
                wire <= modeled + 64 + 24 * (vo.terms.len() + vo.docs.len()),
                "{}: framing overhead too large ({wire} vs {modeled})",
                mechanism.name()
            );
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let vo = sample_vo(Mechanism::TraMht, false);
        let bytes = encode(&vo).unwrap();
        // Cut at a sample of offsets; decoding must error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo).unwrap();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo).unwrap();
        bytes[0] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn oversized_digest_list_refused_at_u16_boundary() {
        // Regression for the silent `as u16` truncation: 65_535 proof
        // digests is the last representable length; 65_536 must be a
        // TooLong error, not a VO that decodes into a 0-digest proof.
        let doc_vo = |digests: usize| DocVo {
            doc: 1,
            num_leaves: 4,
            revealed: Vec::new(),
            proof: MerkleProof {
                digests: vec![Digest::ZERO; digests],
            },
            content_digest: None,
            signature: vec![0u8; 4],
        };
        let vo = |digests| VerificationObject {
            mechanism: Mechanism::TraMht,
            terms: Vec::new(),
            docs: vec![doc_vo(digests)],
            dict: None,
        };
        let at_boundary = encode(&vo(u16::MAX as usize)).unwrap();
        let back = decode(&at_boundary).unwrap();
        assert_eq!(back.docs[0].proof.digests.len(), u16::MAX as usize);
        assert_eq!(
            encode(&vo(u16::MAX as usize + 1)).unwrap_err(),
            WireError::TooLong {
                field: "document proof digests",
                len: 65_536,
                max: 65_535,
            }
        );
    }

    #[test]
    fn oversized_term_count_refused_at_u16_boundary() {
        let term_vo = TermVo {
            term: 0,
            ft: 0,
            prefix: PrefixData::DocIds(Vec::new()),
            proof: TermProof::Mht(MerkleProof::default()),
            signature: None,
        };
        let mut vo = VerificationObject {
            mechanism: Mechanism::TraMht,
            terms: vec![term_vo; u16::MAX as usize + 1],
            docs: Vec::new(),
            dict: None,
        };
        assert_eq!(
            encode(&vo).unwrap_err(),
            WireError::TooLong {
                field: "term proofs",
                len: 65_536,
                max: 65_535,
            }
        );
        // One fewer term sits exactly on the boundary and round-trips.
        vo.terms.truncate(u16::MAX as usize);
        let bytes = encode(&vo).unwrap();
        assert_eq!(decode(&bytes).unwrap(), vo);
    }

    #[test]
    fn oversized_signature_refused() {
        let mut vo = sample_vo(Mechanism::TnraMht, false);
        vo.terms[0].signature = Some(vec![0u8; u16::MAX as usize + 1]);
        assert!(matches!(
            encode(&vo),
            Err(WireError::TooLong {
                field: "term signature",
                ..
            })
        ));
    }

    #[test]
    fn decoded_vo_still_verifies() {
        // Serialization must not lose anything the verifier needs.
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraCmht)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        let mut resp = publication.auth.query(&toy_query(), 2, &toy_contents());
        resp.vo = decode(&encode(&resp.vo).unwrap()).unwrap();
        crate::verify::verify(&publication.verifier_params, &toy_query(), 2, &resp).unwrap();
    }
}
