//! Wire serialization: verification objects, and the framed
//! request/reply protocol of the network server.
//!
//! The VO travels from the search engine to the user; this module defines
//! its byte encoding (little-endian, length-prefixed) so transmission
//! sizes are concrete rather than estimated. The encoding is
//! deliberately plain — every field the size model of [`crate::vo`]
//! charges appears exactly once.
//!
//! ## Frame protocol
//!
//! The long-running server ([`crate::server`]) speaks length-prefixed
//! frames over TCP. Every frame is a fixed 10-byte header followed by a
//! payload:
//!
//! ```text
//! "ASRV" (4) | version u8 | kind u8 | payload_len u32 LE | payload
//! ```
//!
//! Requests carry a query (natural-language text, or explicit
//! `(term, f_{Q,t})` pairs) plus the result size `r` and a flags byte
//! ([`Request`]); replies carry either the full [`QueryResponse`] —
//! ranked result, VO bytes, result-document contents, I/O trace —
//! prefixed by the `(term, f_{Q,t})` echo the client verifies against,
//! a **digest-mode** reply ([`Reply::OkDigest`]: same echo, result and
//! VO, but `(doc, h(content))` pairs in place of the contents echo —
//! the TNRA streaming mode, where verification never consumes the
//! contents), or a coded error ([`Reply`]). Every decode path returns a
//! [`WireError`] on malformed input — attacker-controlled bytes can
//! never panic the server or force an implausible allocation (counts
//! are bounded before `Vec::with_capacity`, payload length by
//! [`MAX_FRAME_PAYLOAD`]), and an unknown version or kind is rejected
//! at the header.

use crate::auth::serve::QueryResponse;
use crate::types::{QueryResult, ResultEntry};
use crate::vo::{DictVo, DocVo, Mechanism, PrefixData, TermProof, TermVo, VerificationObject};
use authsearch_corpus::{DocId, TermId};
use authsearch_crypto::{ChainPrefixProof, Digest, MerkleProof, DIGEST_LEN};
use authsearch_index::{ImpactEntry, IoStats};

const MAGIC: &[u8; 4] = b"AVO1";

/// Wire-format error: a malformed transmission on decode, or a VO whose
/// collections exceed what their length prefixes can represent on
/// encode. The verifier treats either like any other invalid VO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Decoding found bytes that are not a well-formed VO.
    Malformed(String),
    /// Encoding refused a collection longer than its length prefix can
    /// carry. Silently truncating (the old `as u16`/`as u32` casts)
    /// would emit a VO that decodes into something else entirely — a
    /// malformed, unverifiable proof — so oversized inputs are an error
    /// at the source instead.
    TooLong {
        /// Which collection overflowed (e.g. `"term proofs"`).
        field: &'static str,
        /// The collection's actual length.
        len: usize,
        /// The largest length the prefix can represent.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(what) => write!(f, "malformed VO encoding: {what}"),
            WireError::TooLong { field, len, max } => {
                write!(f, "VO not encodable: {field} holds {len} entries, wire format carries at most {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn err(what: &str) -> WireError {
    WireError::Malformed(what.into())
}

// ---- encoding -------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write a u16 length prefix, refusing lengths it cannot represent.
    fn len16(&mut self, n: usize, field: &'static str) -> Result<(), WireError> {
        let v = u16::try_from(n).map_err(|_| WireError::TooLong {
            field,
            len: n,
            max: u16::MAX as usize,
        })?;
        self.u16(v);
        Ok(())
    }
    /// Write a u32 length prefix, refusing lengths it cannot represent.
    fn len32(&mut self, n: usize, field: &'static str) -> Result<(), WireError> {
        let v = u32::try_from(n).map_err(|_| WireError::TooLong {
            field,
            len: n,
            max: u32::MAX as usize,
        })?;
        self.u32(v);
        Ok(())
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }
    fn bytes16(&mut self, b: &[u8], field: &'static str) -> Result<(), WireError> {
        self.len16(b.len(), field)?;
        self.buf.extend_from_slice(b);
        Ok(())
    }
    fn digests16(&mut self, ds: &[Digest], field: &'static str) -> Result<(), WireError> {
        self.len16(ds.len(), field)?;
        for d in ds {
            self.digest(d);
        }
        Ok(())
    }
}

/// Serialize a VO to bytes.
///
/// Fails with [`WireError::TooLong`] when a collection exceeds its
/// length prefix (e.g. ≥ 2¹⁶ term proofs or proof digests) — the VO is
/// simply not representable in this format, and truncating it would
/// produce an unverifiable transmission.
pub fn encode(vo: &VerificationObject) -> Result<Vec<u8>, WireError> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(match vo.mechanism {
        Mechanism::TraMht => 0,
        Mechanism::TraCmht => 1,
        Mechanism::TnraMht => 2,
        Mechanism::TnraCmht => 3,
    });
    w.len16(vo.terms.len(), "term proofs")?;
    for tv in &vo.terms {
        w.u32(tv.term);
        w.u32(tv.ft);
        match &tv.prefix {
            PrefixData::DocIds(ids) => {
                w.u8(0);
                w.len32(ids.len(), "doc-id prefix")?;
                for &d in ids {
                    w.u32(d);
                }
            }
            PrefixData::Entries(entries) => {
                w.u8(1);
                w.len32(entries.len(), "impact-entry prefix")?;
                for e in entries {
                    w.buf.extend_from_slice(&e.encode());
                }
            }
        }
        match &tv.proof {
            TermProof::Mht(p) => {
                w.u8(0);
                w.digests16(&p.digests, "term proof digests")?;
            }
            TermProof::Cmht(p) => {
                w.u8(1);
                w.digests16(&p.tail.digests, "chain proof digests")?;
            }
        }
        match &tv.signature {
            Some(sig) => {
                w.u8(1);
                w.bytes16(sig, "term signature")?;
            }
            None => w.u8(0),
        }
    }
    w.len32(vo.docs.len(), "document proofs")?;
    for dv in &vo.docs {
        w.u32(dv.doc);
        w.u32(dv.num_leaves);
        w.len32(dv.revealed.len(), "revealed leaves")?;
        for &(pos, term, weight) in &dv.revealed {
            w.u32(pos);
            w.u32(term);
            w.u32(weight.to_bits());
        }
        w.digests16(&dv.proof.digests, "document proof digests")?;
        match &dv.content_digest {
            Some(d) => {
                w.u8(1);
                w.digest(d);
            }
            None => w.u8(0),
        }
        w.bytes16(&dv.signature, "document signature")?;
    }
    match &vo.dict {
        Some(dict) => {
            w.u8(1);
            w.u32(dict.num_terms);
            w.digests16(&dict.proof.digests, "dictionary proof digests")?;
            w.bytes16(&dict.signature, "dictionary signature")?;
        }
        None => w.u8(0),
    }
    Ok(w.buf)
}

// ---- decoding -------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| err("truncated"))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| err("truncated"))?;
        self.pos = end;
        Ok(out)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| err("truncated"))
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array()?;
        Ok(b)
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn digest(&mut self) -> Result<Digest, WireError> {
        let b = self.take(DIGEST_LEN)?;
        Digest::from_slice(b).ok_or_else(|| err("digest"))
    }
    fn bytes16(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn digests16(&mut self) -> Result<Vec<Digest>, WireError> {
        let n = self.u16()? as usize;
        let n = self.checked_count(n, DIGEST_LEN, "digest list")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.digest()?);
        }
        Ok(out)
    }
    /// A count that claims `n` entries of at least `per` encoded bytes
    /// each, validated against the bytes actually remaining — a tiny
    /// frame advertising 2²⁶ entries is rejected *before* any
    /// `Vec::with_capacity`, so attacker-chosen counts can never size
    /// an allocation beyond the payload they paid to send.
    fn checked_count(&self, n: usize, per: usize, what: &str) -> Result<usize, WireError> {
        let remaining = self.buf.len().saturating_sub(self.pos);
        if n > remaining / per.max(1) {
            return Err(WireError::Malformed(format!(
                "{what} count {n} exceeds what the remaining {remaining} bytes can hold"
            )));
        }
        Ok(n)
    }
}

/// Deserialize a VO from bytes.
pub fn decode(bytes: &[u8]) -> Result<VerificationObject, WireError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(err("bad magic"));
    }
    let mechanism = match r.u8()? {
        0 => Mechanism::TraMht,
        1 => Mechanism::TraCmht,
        2 => Mechanism::TnraMht,
        3 => Mechanism::TnraCmht,
        _ => return Err(err("unknown mechanism")),
    };
    let num_terms = r.u16()? as usize;
    // Minimum encoding per term: term id (4) + ft (4) + prefix tag (1).
    let num_terms = r.checked_count(num_terms, 9, "VO term")?;
    let mut terms = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let term = r.u32()?;
        let ft = r.u32()?;
        let prefix = match r.u8()? {
            0 => {
                let n = r.u32()? as usize;
                let n = r.checked_count(n, 4, "doc-id prefix")?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                PrefixData::DocIds(ids)
            }
            1 => {
                let n = r.u32()? as usize;
                let n = r.checked_count(n, 8, "impact-entry prefix")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let raw = r.take(8)?;
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(raw);
                    entries.push(ImpactEntry::decode(&arr));
                }
                PrefixData::Entries(entries)
            }
            _ => return Err(err("unknown prefix kind")),
        };
        let proof = match r.u8()? {
            0 => TermProof::Mht(MerkleProof {
                digests: r.digests16()?,
            }),
            1 => TermProof::Cmht(ChainPrefixProof {
                tail: MerkleProof {
                    digests: r.digests16()?,
                },
            }),
            _ => return Err(err("unknown proof kind")),
        };
        let signature = match r.u8()? {
            0 => None,
            1 => Some(r.bytes16()?),
            _ => return Err(err("bad signature flag")),
        };
        terms.push(TermVo {
            term,
            ft,
            prefix,
            proof,
            signature,
        });
    }
    let num_docs = r.u32()? as usize;
    // Smallest possible document proof: ids + counts + flags + prefixes.
    let num_docs = r.checked_count(num_docs, 17, "document proof")?;
    let mut docs = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        let doc = r.u32()?;
        let num_leaves = r.u32()?;
        let n = r.u32()? as usize;
        let n = r.checked_count(n, 12, "revealed leaf")?;
        let mut revealed = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = r.u32()?;
            let term = r.u32()?;
            let weight = f32::from_bits(r.u32()?);
            revealed.push((pos, term, weight));
        }
        let proof = MerkleProof {
            digests: r.digests16()?,
        };
        let content_digest = match r.u8()? {
            0 => None,
            1 => Some(r.digest()?),
            _ => return Err(err("bad content flag")),
        };
        let signature = r.bytes16()?;
        docs.push(DocVo {
            doc,
            num_leaves,
            revealed,
            proof,
            content_digest,
            signature,
        });
    }
    let dict = match r.u8()? {
        0 => None,
        1 => Some(DictVo {
            num_terms: r.u32()?,
            proof: MerkleProof {
                digests: r.digests16()?,
            },
            signature: r.bytes16()?,
        }),
        _ => return Err(err("bad dict flag")),
    };
    if r.pos != bytes.len() {
        return Err(err("trailing bytes"));
    }
    Ok(VerificationObject {
        mechanism,
        terms,
        docs,
        dict,
    })
}

// ---- frame protocol -------------------------------------------------------

/// Frame preamble: protocol name, followed by [`WIRE_VERSION`].
pub const FRAME_MAGIC: [u8; 4] = *b"ASRV";

/// Protocol version carried in every frame header. A server or client
/// seeing any other value rejects the frame as
/// [`WireError::Malformed`] — it never guesses at a foreign layout.
///
/// **v2** added a flags byte to every request payload (bit 0 =
/// [`FLAG_DIGEST_VO`], requesting the streaming digest-mode reply) and
/// the [`kind::REPLY_OK_DIGEST`] frame; v1 frames are rejected by the
/// version check, never misparsed.
pub const WIRE_VERSION: u8 = 2;

/// Request flag bit: ask for a [`Reply::OkDigest`] — the VO with
/// per-document content digests instead of the full contents echo.
/// Honored only for TNRA deployments (whose verification never consumes
/// the contents); TRA servers fall back to the full [`Reply::Ok`].
/// Unknown flag bits are rejected at decode, so a client cannot ask for
/// semantics this build would silently ignore.
pub const FLAG_DIGEST_VO: u8 = 0x01;

/// Fixed size of the frame header: magic (4) + version (1) + kind (1) +
/// payload length (4).
pub const FRAME_HEADER_LEN: usize = 10;

/// Upper bound on a frame payload (64 MiB). A header advertising more
/// is rejected before any allocation — the cap is what lets a reader
/// trust the length prefix enough to buffer the payload.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;

/// The query-mode byte of a [`kind::REQ_CONJ_TERMS`] payload. The
/// conjunctive frame carries the mode explicitly (rather than implying
/// it from the kind alone) so a future mode can reuse the frame layout;
/// any value other than this one is rejected at decode as
/// [`WireError::Malformed`] — a server must never guess which semantics
/// a client meant.
pub const MODE_CONJUNCTIVE: u8 = 1;

/// Frame kinds. Requests have the high bit clear, replies set.
pub mod kind {
    /// Natural-language query request.
    pub const REQ_TEXT: u8 = 0x01;
    /// Explicit `(term, f_qt)`-pairs query request.
    pub const REQ_TERMS: u8 = 0x02;
    /// Conjunctive (AND-semantics) `(term, f_qt)`-pairs query request
    /// (**v2**): same pair layout as [`REQ_TERMS`] behind an explicit
    /// mode byte ([`super::MODE_CONJUNCTIVE`]).
    pub const REQ_CONJ_TERMS: u8 = 0x03;
    /// Successful reply: query echo + full `QueryResponse`.
    pub const REPLY_OK: u8 = 0x81;
    /// Error reply: code + message.
    pub const REPLY_ERR: u8 = 0x82;
    /// Successful digest-mode reply: query echo + result + VO +
    /// per-document content digests (no contents echo).
    pub const REPLY_OK_DIGEST: u8 = 0x83;
}

/// Error codes carried by [`kind::REPLY_ERR`] frames.
pub mod errcode {
    /// The request frame did not decode.
    pub const MALFORMED: u8 = 1;
    /// The request decoded but names an unserviceable query (term out
    /// of dictionary, unsorted/duplicate terms, empty query, oversized
    /// `r`).
    pub const BAD_QUERY: u8 = 2;
    /// The engine failed internally (e.g. a worker panicked); the
    /// connection survives.
    pub const INTERNAL: u8 = 3;
    /// The response exists but cannot be represented on the wire.
    pub const UNREPRESENTABLE: u8 = 4;
    /// The server is at its connection cap and shed this connection
    /// instead of serving it. The reply is typed — never a silent RST —
    /// so a client can back off and retry
    /// ([`crate::Connection::query_terms_retrying`]).
    pub const BUSY: u8 = 5;
    /// The connection sat idle (or dribbled a partial frame) past the
    /// server's idle deadline and was evicted to free its thread.
    pub const TIMEOUT: u8 = 6;
}

/// Encode a frame header for `payload_len` bytes of `kind`.
pub fn encode_frame_header(
    kind: u8,
    payload_len: usize,
) -> Result<[u8; FRAME_HEADER_LEN], WireError> {
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(WireError::TooLong {
            field: "frame payload",
            len: payload_len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let len32 = u32::try_from(payload_len).map_err(|_| WireError::TooLong {
        field: "frame payload",
        len: payload_len,
        max: MAX_FRAME_PAYLOAD,
    })?;
    let [m0, m1, m2, m3] = FRAME_MAGIC;
    let [l0, l1, l2, l3] = len32.to_le_bytes();
    Ok([m0, m1, m2, m3, WIRE_VERSION, kind, l0, l1, l2, l3])
}

/// Decode a frame header's transport fields — magic, version, payload
/// length — **without** validating the kind byte.
///
/// These three fields are what establish the frame boundary; a reader
/// that trusts them still knows exactly how many payload bytes an
/// *unknown* kind carries, so it can consume the frame and answer with
/// a coded error instead of tearing the connection down (forward
/// compatibility — see the server's connection loop). Use
/// [`decode_frame_header`] when an unknown kind should be rejected
/// outright.
pub fn decode_frame_header_any(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, usize), WireError> {
    let &[m0, m1, m2, m3, version, kind, l0, l1, l2, l3] = header;
    if [m0, m1, m2, m3] != FRAME_MAGIC {
        return Err(err("bad frame magic"));
    }
    if version != WIRE_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported protocol version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Malformed(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    Ok((kind, len))
}

/// Decode and validate a frame header, returning `(kind, payload_len)`.
///
/// Rejects a bad magic, a foreign version, an unknown kind, and a
/// payload length above [`MAX_FRAME_PAYLOAD`] — all as [`WireError`],
/// never a panic, because the header is the first attacker-controlled
/// thing a server reads.
pub fn decode_frame_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, usize), WireError> {
    let (kind, len) = decode_frame_header_any(header)?;
    match kind {
        kind::REQ_TEXT
        | kind::REQ_TERMS
        | kind::REQ_CONJ_TERMS
        | kind::REPLY_OK
        | kind::REPLY_ERR
        | kind::REPLY_OK_DIGEST => Ok((kind, len)),
        _ => Err(WireError::Malformed(format!(
            "unknown frame kind {kind:#04x}"
        ))),
    }
}

/// A query request, as it travels client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Natural-language query; the server parses it against its
    /// dictionary and echoes the parse back in the reply.
    Text {
        /// The query text (parsed server-side; out-of-dictionary words
        /// are dropped per the system model).
        text: String,
        /// Requested result size.
        r: u32,
        /// Ask for a digest-mode reply ([`FLAG_DIGEST_VO`]); the server
        /// honors it only for TNRA deployments.
        want_digests: bool,
    },
    /// Explicit `(term id, f_{Q,t})` pairs, strictly ascending by term —
    /// the paper's user-posed query shape, verified end to end.
    Terms {
        /// Distinct query terms with their query-side frequencies.
        terms: Vec<(TermId, u32)>,
        /// Requested result size.
        r: u32,
        /// Ask for a digest-mode reply ([`FLAG_DIGEST_VO`]); the server
        /// honors it only for TNRA deployments.
        want_digests: bool,
    },
    /// Conjunctive (AND-semantics) query over explicit `(term, f_{Q,t})`
    /// pairs: only documents containing **every** term qualify, and the
    /// server's VO proves the intersection is exact. Same validation
    /// rules as [`Request::Terms`]; the payload carries an explicit
    /// [`MODE_CONJUNCTIVE`] byte that decode enforces.
    ConjunctiveTerms {
        /// Distinct query terms with their query-side frequencies.
        terms: Vec<(TermId, u32)>,
        /// Requested result size.
        r: u32,
        /// Ask for a digest-mode reply ([`FLAG_DIGEST_VO`]); the server
        /// honors it only for TNRA deployments.
        want_digests: bool,
    },
}

/// Encode a request's flags byte.
fn request_flags(want_digests: bool) -> u8 {
    if want_digests {
        FLAG_DIGEST_VO
    } else {
        0
    }
}

/// Decode a request's flags byte, rejecting bits this build does not
/// understand (a server cannot honor semantics it does not know, and
/// silently dropping them would let a lying middlebox downgrade the
/// request unnoticed).
fn parse_request_flags(flags: u8) -> Result<bool, WireError> {
    if flags & !FLAG_DIGEST_VO != 0 {
        return Err(WireError::Malformed(format!(
            "unknown request flags {flags:#04x} (this build understands {FLAG_DIGEST_VO:#04x})"
        )));
    }
    Ok(flags & FLAG_DIGEST_VO != 0)
}

impl Request {
    /// Serialize to a complete frame (header + payload).
    pub fn encode_frame(&self) -> Result<Vec<u8>, WireError> {
        let mut w = Writer { buf: Vec::new() };
        let kind = match self {
            Request::Text {
                text,
                r,
                want_digests,
            } => {
                w.u8(request_flags(*want_digests));
                w.u32(*r);
                w.bytes16(text.as_bytes(), "query text")?;
                kind::REQ_TEXT
            }
            Request::Terms {
                terms,
                r,
                want_digests,
            } => {
                w.u8(request_flags(*want_digests));
                w.u32(*r);
                w.len16(terms.len(), "query terms")?;
                for &(t, f_qt) in terms {
                    w.u32(t);
                    w.u32(f_qt);
                }
                kind::REQ_TERMS
            }
            Request::ConjunctiveTerms {
                terms,
                r,
                want_digests,
            } => {
                w.u8(request_flags(*want_digests));
                w.u8(MODE_CONJUNCTIVE);
                w.u32(*r);
                w.len16(terms.len(), "query terms")?;
                for &(t, f_qt) in terms {
                    w.u32(t);
                    w.u32(f_qt);
                }
                kind::REQ_CONJ_TERMS
            }
        };
        frame(kind, w.buf)
    }

    /// Deserialize a request payload of the given frame kind.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let request = match kind {
            kind::REQ_TEXT => {
                let want_digests = parse_request_flags(r.u8()?)?;
                let top_r = r.u32()?;
                let text =
                    String::from_utf8(r.bytes16()?).map_err(|_| err("query text is not UTF-8"))?;
                Request::Text {
                    text,
                    r: top_r,
                    want_digests,
                }
            }
            kind::REQ_TERMS => {
                let want_digests = parse_request_flags(r.u8()?)?;
                let top_r = r.u32()?;
                let n = r.u16()? as usize;
                let n = r.checked_count(n, 8, "query term")?;
                let mut terms = Vec::with_capacity(n);
                for _ in 0..n {
                    terms.push((r.u32()?, r.u32()?));
                }
                Request::Terms {
                    terms,
                    r: top_r,
                    want_digests,
                }
            }
            kind::REQ_CONJ_TERMS => {
                let want_digests = parse_request_flags(r.u8()?)?;
                let mode = r.u8()?;
                if mode != MODE_CONJUNCTIVE {
                    return Err(WireError::Malformed(format!(
                        "unknown query mode {mode} (this build understands mode {MODE_CONJUNCTIVE})"
                    )));
                }
                let top_r = r.u32()?;
                let n = r.u16()? as usize;
                let n = r.checked_count(n, 8, "conjunctive query term")?;
                let mut terms = Vec::with_capacity(n);
                for _ in 0..n {
                    terms.push((r.u32()?, r.u32()?));
                }
                Request::ConjunctiveTerms {
                    terms,
                    r: top_r,
                    want_digests,
                }
            }
            _ => return Err(err("not a request frame")),
        };
        if r.pos != payload.len() {
            return Err(err("trailing bytes in request"));
        }
        Ok(request)
    }
}

/// A server reply, as it travels server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The query was served.
    Ok {
        /// The `(term, f_{Q,t})` pairs the response answers — the echo
        /// of a [`Request::Terms`] query, or the server-side parse of a
        /// [`Request::Text`] one. The client verifies against these.
        terms: Vec<(TermId, u32)>,
        /// The full response: ranked result, VO, result-document
        /// contents, and the engine's simulated I/O trace.
        response: QueryResponse,
    },
    /// The query was served in digest mode ([`FLAG_DIGEST_VO`]): the
    /// full result, VO, and I/O trace travel as usual, but the
    /// result-document contents are replaced by `(doc, h(content))`
    /// pairs. TNRA verification never consumes the contents — the
    /// verifier authenticates list prefixes and replays the threshold
    /// algorithm — so the accept/reject verdict is **identical** to the
    /// full-echo path (regression-tested against the attack suite); the
    /// digests let a client fetch the documents out of band and check
    /// it received what the engine served.
    OkDigest {
        /// The `(term, f_{Q,t})` echo, exactly as in [`Reply::Ok`].
        terms: Vec<(TermId, u32)>,
        /// The response with `contents` empty (nothing travelled).
        response: QueryResponse,
        /// `(doc, h(content))` per result document, in result order.
        digests: Vec<(DocId, Digest)>,
    },
    /// The query was not served; the connection stays up.
    Err {
        /// An [`errcode`] constant.
        code: u8,
        /// Human-readable cause.
        message: String,
    },
}

/// Write the sections shared by both OK reply shapes: the
/// `(term, f_qt)` echo, the ranked result, and the nested VO.
fn write_ok_head(
    w: &mut Writer,
    terms: &[(TermId, u32)],
    response: &QueryResponse,
) -> Result<(), WireError> {
    w.len16(terms.len(), "reply term echo")?;
    for &(t, f_qt) in terms {
        w.u32(t);
        w.u32(f_qt);
    }
    // Ranked result.
    w.len32(response.result.entries.len(), "result entries")?;
    for e in &response.result.entries {
        w.u32(e.doc);
        w.u64(e.score.to_bits());
    }
    // Nested VO (its own magic + encoding).
    let vo = encode(&response.vo)?;
    w.len32(vo.len(), "VO bytes")?;
    w.buf.extend_from_slice(&vo);
    Ok(())
}

/// Write the trailing engine-side accounting shared by both OK shapes.
fn write_ok_tail(w: &mut Writer, response: &QueryResponse) -> Result<(), WireError> {
    w.u64(response.io.seeks);
    w.u64(response.io.blocks);
    w.len16(response.entries_read.len(), "entries-read counts")?;
    for &n in &response.entries_read {
        w.len32(n, "entries-read value")?;
    }
    Ok(())
}

/// Serialize a successful reply to a complete frame.
pub fn encode_ok_reply(
    terms: &[(TermId, u32)],
    response: &QueryResponse,
) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    let kind = encode_ok_reply_payload(terms, response, &mut payload)?;
    frame(kind, payload)
}

/// Serialize a successful reply **payload only** into a caller-owned
/// buffer (cleared first), returning the frame kind to put in the
/// header. This is the zero-copy path the reactor core uses: the
/// 10-byte header lives on the caller's stack and goes out through a
/// vectored write alongside this buffer, so a reply costs no staging
/// copy and — once the connection's buffer has grown to its working
/// size — no allocation. [`encode_ok_reply`] is this plus
/// framing.
pub fn encode_ok_reply_payload(
    terms: &[(TermId, u32)],
    response: &QueryResponse,
    payload: &mut Vec<u8>,
) -> Result<u8, WireError> {
    payload.clear();
    let mut w = Writer {
        buf: std::mem::take(payload),
    };
    write_ok_head(&mut w, terms, response)?;
    // Result-document contents.
    w.len32(response.contents.len(), "result contents")?;
    for (d, bytes) in &response.contents {
        w.u32(*d);
        w.len32(bytes.len(), "document content")?;
        w.buf.extend_from_slice(bytes);
    }
    write_ok_tail(&mut w, response)?;
    *payload = w.buf;
    Ok(kind::REPLY_OK)
}

/// Serialize a digest-mode reply ([`Reply::OkDigest`]): identical to
/// [`encode_ok_reply`] except the contents section is replaced by
/// `(doc, h(content))` pairs — the TNRA streaming mode that saves the
/// dominant share of bytes on the wire for content-heavy results.
pub fn encode_ok_digest_reply(
    terms: &[(TermId, u32)],
    response: &QueryResponse,
) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    let kind = encode_ok_digest_reply_payload(terms, response, &mut payload)?;
    frame(kind, payload)
}

/// Payload-only variant of [`encode_ok_digest_reply`]; see
/// [`encode_ok_reply_payload`] for the reuse contract.
pub fn encode_ok_digest_reply_payload(
    terms: &[(TermId, u32)],
    response: &QueryResponse,
    payload: &mut Vec<u8>,
) -> Result<u8, WireError> {
    payload.clear();
    let mut w = Writer {
        buf: std::mem::take(payload),
    };
    write_ok_head(&mut w, terms, response)?;
    let digests = response.content_digests();
    w.len32(digests.len(), "content digests")?;
    for (d, digest) in &digests {
        w.u32(*d);
        w.digest(digest);
    }
    write_ok_tail(&mut w, response)?;
    *payload = w.buf;
    Ok(kind::REPLY_OK_DIGEST)
}

/// Serialize an error reply to a complete frame.
pub fn encode_err_reply(code: u8, message: &str) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    let kind = encode_err_reply_payload(code, message, &mut payload)?;
    frame(kind, payload)
}

/// Payload-only variant of [`encode_err_reply`]; see
/// [`encode_ok_reply_payload`] for the reuse contract. Like the framed
/// form it truncates rather than fails — an error reply must always be
/// representable — and truncates on a char boundary, so the peer's
/// UTF-8 validation accepts what we send.
pub fn encode_err_reply_payload(
    code: u8,
    message: &str,
    payload: &mut Vec<u8>,
) -> Result<u8, WireError> {
    payload.clear();
    let mut w = Writer {
        buf: std::mem::take(payload),
    };
    w.u8(code);
    let mut end = message.len().min(u16::MAX as usize);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    w.bytes16(
        message.as_bytes().get(..end).unwrap_or_default(),
        "error message",
    )?;
    *payload = w.buf;
    Ok(kind::REPLY_ERR)
}

/// Deserialize a reply payload of the given frame kind.
pub fn decode_reply_payload(kind: u8, payload: &[u8]) -> Result<Reply, WireError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let reply = match kind {
        kind::REPLY_OK | kind::REPLY_OK_DIGEST => {
            let nt = r.u16()? as usize;
            let nt = r.checked_count(nt, 8, "reply term")?;
            let mut terms = Vec::with_capacity(nt);
            for _ in 0..nt {
                terms.push((r.u32()?, r.u32()?));
            }
            let ne = r.u32()? as usize;
            let ne = r.checked_count(ne, 12, "result entry")?;
            let mut entries = Vec::with_capacity(ne);
            for _ in 0..ne {
                let doc = r.u32()?;
                let score = f64::from_bits(r.u64()?);
                entries.push(ResultEntry { doc, score });
            }
            let vo_len = r.u32()? as usize;
            let vo = decode(r.take(vo_len)?)?;
            // The one structural difference between the two OK shapes:
            // delivered contents (full echo) vs `(doc, digest)` pairs.
            let mut contents = Vec::new();
            let mut digests = Vec::new();
            if kind == kind::REPLY_OK {
                let nc = r.u32()? as usize;
                let nc = r.checked_count(nc, 8, "result content")?;
                contents.reserve_exact(nc);
                for _ in 0..nc {
                    let doc = r.u32()?;
                    let len = r.u32()? as usize;
                    contents.push((doc, r.take(len)?.to_vec()));
                }
            } else {
                let nd = r.u32()? as usize;
                let nd = r.checked_count(nd, 4 + DIGEST_LEN, "content digest")?;
                digests.reserve_exact(nd);
                for _ in 0..nd {
                    let doc = r.u32()?;
                    digests.push((doc, r.digest()?));
                }
            }
            let io = IoStats {
                seeks: r.u64()?,
                blocks: r.u64()?,
            };
            let nr = r.u16()? as usize;
            let nr = r.checked_count(nr, 4, "entries-read list")?;
            let mut entries_read = Vec::with_capacity(nr);
            for _ in 0..nr {
                entries_read.push(r.u32()? as usize);
            }
            let response = QueryResponse {
                result: QueryResult { entries },
                vo,
                contents,
                io,
                entries_read,
            };
            if kind == kind::REPLY_OK {
                Reply::Ok { terms, response }
            } else {
                Reply::OkDigest {
                    terms,
                    response,
                    digests,
                }
            }
        }
        kind::REPLY_ERR => {
            let code = r.u8()?;
            let message =
                String::from_utf8(r.bytes16()?).map_err(|_| err("error message is not UTF-8"))?;
            Reply::Err { code, message }
        }
        _ => return Err(err("not a reply frame")),
    };
    if r.pos != payload.len() {
        return Err(err("trailing bytes in reply"));
    }
    Ok(reply)
}

/// Prepend the frame header to a finished payload.
fn frame(kind: u8, payload: Vec<u8>) -> Result<Vec<u8>, WireError> {
    let header = encode_frame_header(kind, payload.len())?;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Split a complete frame into `(kind, payload)`, validating the header
/// and that the payload length matches exactly. Convenience for callers
/// that already hold whole frames (tests, fuzzing); the streaming
/// server and client read the header and payload separately.
pub fn split_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let header: [u8; FRAME_HEADER_LEN] = bytes
        .get(..FRAME_HEADER_LEN)
        .and_then(|h| h.try_into().ok())
        .ok_or_else(|| err("truncated frame header"))?;
    let (kind, len) = decode_frame_header(&header)?;
    let payload = bytes.get(FRAME_HEADER_LEN..).unwrap_or_default();
    if payload.len() != len {
        return Err(err("frame length mismatch"));
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn sample_vo(mechanism: Mechanism, dict: bool) -> VerificationObject {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht: dict,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        publication.auth.query(&toy_query(), 2, &toy_contents()).vo
    }

    #[test]
    fn roundtrip_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let bytes = encode(&vo).unwrap();
            let back = decode(&bytes).unwrap();
            assert_eq!(back, vo, "{}", mechanism.name());
        }
    }

    #[test]
    fn roundtrip_dict_mode() {
        let vo = sample_vo(Mechanism::TnraCmht, true);
        let back = decode(&encode(&vo).unwrap()).unwrap();
        assert_eq!(back, vo);
    }

    #[test]
    fn wire_size_tracks_size_model() {
        // The wire encoding carries the modeled bytes plus only small
        // fixed framing overhead (< 10% for realistic VOs).
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let modeled = vo.size().total();
            let wire = encode(&vo).unwrap().len();
            assert!(
                wire >= modeled,
                "{}: wire {wire} < modeled {modeled}",
                mechanism.name()
            );
            assert!(
                wire <= modeled + 64 + 24 * (vo.terms.len() + vo.docs.len()),
                "{}: framing overhead too large ({wire} vs {modeled})",
                mechanism.name()
            );
        }
    }

    #[test]
    fn forged_counts_cannot_size_allocations() {
        // A 9-byte frame advertising 65,535 VO terms: `checked_count`
        // must reject the count against the bytes actually present,
        // before any `Vec::with_capacity` sees it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(0); // mechanism TRA-MHT
        bytes.extend_from_slice(&u16::MAX.to_le_bytes()); // forged num_terms
        bytes.extend_from_slice(&[0, 0]); // far too little payload
        let err = decode(&bytes).expect_err("forged count must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("65535") && msg.contains("count"),
            "error should name the forged count: {msg}"
        );

        // Same property on a well-formed VO whose count field is bumped
        // after encoding: every inflated count dies in validation.
        let vo = sample_vo(Mechanism::TraMht, false);
        let mut bytes = encode(&vo).unwrap();
        bytes[5..7].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let vo = sample_vo(Mechanism::TraMht, false);
        let bytes = encode(&vo).unwrap();
        // Cut at a sample of offsets; decoding must error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo).unwrap();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo).unwrap();
        bytes[0] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn oversized_digest_list_refused_at_u16_boundary() {
        // Regression for the silent `as u16` truncation: 65_535 proof
        // digests is the last representable length; 65_536 must be a
        // TooLong error, not a VO that decodes into a 0-digest proof.
        let doc_vo = |digests: usize| DocVo {
            doc: 1,
            num_leaves: 4,
            revealed: Vec::new(),
            proof: MerkleProof {
                digests: vec![Digest::ZERO; digests],
            },
            content_digest: None,
            signature: vec![0u8; 4],
        };
        let vo = |digests| VerificationObject {
            mechanism: Mechanism::TraMht,
            terms: Vec::new(),
            docs: vec![doc_vo(digests)],
            dict: None,
        };
        let at_boundary = encode(&vo(u16::MAX as usize)).unwrap();
        let back = decode(&at_boundary).unwrap();
        assert_eq!(back.docs[0].proof.digests.len(), u16::MAX as usize);
        assert_eq!(
            encode(&vo(u16::MAX as usize + 1)).unwrap_err(),
            WireError::TooLong {
                field: "document proof digests",
                len: 65_536,
                max: 65_535,
            }
        );
    }

    #[test]
    fn oversized_term_count_refused_at_u16_boundary() {
        let term_vo = TermVo {
            term: 0,
            ft: 0,
            prefix: PrefixData::DocIds(Vec::new()),
            proof: TermProof::Mht(MerkleProof::default()),
            signature: None,
        };
        let mut vo = VerificationObject {
            mechanism: Mechanism::TraMht,
            terms: vec![term_vo; u16::MAX as usize + 1],
            docs: Vec::new(),
            dict: None,
        };
        assert_eq!(
            encode(&vo).unwrap_err(),
            WireError::TooLong {
                field: "term proofs",
                len: 65_536,
                max: 65_535,
            }
        );
        // One fewer term sits exactly on the boundary and round-trips.
        vo.terms.truncate(u16::MAX as usize);
        let bytes = encode(&vo).unwrap();
        assert_eq!(decode(&bytes).unwrap(), vo);
    }

    #[test]
    fn oversized_signature_refused() {
        let mut vo = sample_vo(Mechanism::TnraMht, false);
        vo.terms[0].signature = Some(vec![0u8; u16::MAX as usize + 1]);
        assert!(matches!(
            encode(&vo),
            Err(WireError::TooLong {
                field: "term signature",
                ..
            })
        ));
    }

    fn sample_response(mechanism: Mechanism) -> QueryResponse {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        publication.auth.query(&toy_query(), 2, &toy_contents())
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            Request::Text {
                text: "night keeper keep".into(),
                r: 5,
                want_digests: false,
            },
            Request::Text {
                text: String::new(),
                r: 0,
                want_digests: true,
            },
            Request::Terms {
                terms: vec![(1, 1), (7, 2), (15, 1)],
                r: 10,
                want_digests: true,
            },
            Request::Terms {
                terms: Vec::new(),
                r: 1,
                want_digests: false,
            },
            Request::ConjunctiveTerms {
                terms: vec![(2, 1), (9, 3)],
                r: 4,
                want_digests: false,
            },
            Request::ConjunctiveTerms {
                terms: Vec::new(),
                r: 1,
                want_digests: true,
            },
        ];
        for request in requests {
            let bytes = request.encode_frame().unwrap();
            let (kind, payload) = split_frame(&bytes).unwrap();
            assert_eq!(Request::decode_payload(kind, payload).unwrap(), request);
        }
    }

    #[test]
    fn unknown_request_flag_bits_rejected() {
        // A request advertising semantics this build does not implement
        // must be refused, not silently downgraded.
        let good = Request::Terms {
            terms: vec![(1, 1)],
            r: 3,
            want_digests: true,
        }
        .encode_frame()
        .unwrap();
        let (kind, payload) = split_frame(&good).unwrap();
        let mut bad = payload.to_vec();
        bad[0] |= 0x80; // an unknown flag bit
        let err = Request::decode_payload(kind, &bad).unwrap_err();
        assert!(err.to_string().contains("flags"), "{err}");
    }

    #[test]
    fn conjunctive_request_rejects_unknown_mode_byte() {
        let good = Request::ConjunctiveTerms {
            terms: vec![(1, 1), (4, 2)],
            r: 3,
            want_digests: false,
        }
        .encode_frame()
        .unwrap();
        let (kind, payload) = split_frame(&good).unwrap();
        assert_eq!(kind, kind::REQ_CONJ_TERMS);
        assert_eq!(payload[1], MODE_CONJUNCTIVE);
        for bad_mode in [0u8, 2, 0x7f, 0xff] {
            let mut bad = payload.to_vec();
            bad[1] = bad_mode;
            let err = Request::decode_payload(kind, &bad).unwrap_err();
            assert!(err.to_string().contains("mode"), "mode {bad_mode}: {err}");
        }
    }

    #[test]
    fn conjunctive_request_rejects_oversized_term_count() {
        // A tiny payload claiming 2¹⁶−1 term pairs must be refused
        // before any allocation sized by the claim.
        let good = Request::ConjunctiveTerms {
            terms: vec![(1, 1)],
            r: 3,
            want_digests: false,
        }
        .encode_frame()
        .unwrap();
        let (kind, payload) = split_frame(&good).unwrap();
        let mut bad = payload.to_vec();
        // flags(1) + mode(1) + r(4) then the u16 count at offset 6.
        bad[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
        let err = Request::decode_payload(kind, &bad).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn ok_reply_round_trips_full_response() {
        for mechanism in Mechanism::ALL {
            let response = sample_response(mechanism);
            let terms: Vec<(TermId, u32)> = response.vo.terms.iter().map(|t| (t.term, 1)).collect();
            let bytes = encode_ok_reply(&terms, &response).unwrap();
            let (kind, payload) = split_frame(&bytes).unwrap();
            match decode_reply_payload(kind, payload).unwrap() {
                Reply::Ok {
                    terms: back_terms,
                    response: back,
                } => {
                    assert_eq!(back_terms, terms, "{}", mechanism.name());
                    assert_eq!(back.vo, response.vo);
                    assert_eq!(back.result, response.result);
                    assert_eq!(back.contents, response.contents);
                    assert_eq!(back.io, response.io);
                    assert_eq!(back.entries_read, response.entries_read);
                }
                other => panic!("expected Ok reply, got {other:?}"),
            }
        }
    }

    #[test]
    fn ok_digest_reply_round_trips_and_sheds_content_bytes() {
        for mechanism in Mechanism::ALL {
            let response = sample_response(mechanism);
            let terms: Vec<(TermId, u32)> = response.vo.terms.iter().map(|t| (t.term, 1)).collect();
            let full = encode_ok_reply(&terms, &response).unwrap();
            let slim = encode_ok_digest_reply(&terms, &response).unwrap();
            // Digest mode drops each content body and its u32 length
            // prefix, shipping a 16-byte digest instead.
            let content_bytes: usize = response.contents.iter().map(|(_, b)| b.len()).sum();
            assert_eq!(
                full.len() - content_bytes + 12 * response.contents.len(),
                slim.len(),
                "{}",
                mechanism.name()
            );
            let (kind, payload) = split_frame(&slim).unwrap();
            assert_eq!(kind, kind::REPLY_OK_DIGEST);
            match decode_reply_payload(kind, payload).unwrap() {
                Reply::OkDigest {
                    terms: back_terms,
                    response: back,
                    digests,
                } => {
                    assert_eq!(back_terms, terms);
                    assert_eq!(back.vo, response.vo);
                    assert_eq!(back.result, response.result);
                    assert_eq!(back.io, response.io);
                    assert_eq!(back.entries_read, response.entries_read);
                    assert!(back.contents.is_empty(), "nothing travelled");
                    assert_eq!(digests, response.content_digests());
                }
                other => panic!("expected OkDigest, got {other:?}"),
            }
        }
    }

    #[test]
    fn ok_digest_truncations_rejected() {
        let response = sample_response(Mechanism::TnraCmht);
        let terms: Vec<(TermId, u32)> = response.vo.terms.iter().map(|t| (t.term, 1)).collect();
        let bytes = encode_ok_digest_reply(&terms, &response).unwrap();
        for cut in (0..bytes.len()).step_by(9) {
            let truncated = &bytes[..cut];
            let rejected = match split_frame(truncated) {
                Err(_) => true,
                Ok((kind, payload)) => decode_reply_payload(kind, payload).is_err(),
            };
            assert!(rejected, "cut={cut}");
        }
    }

    #[test]
    fn err_reply_round_trips_and_truncates_long_messages() {
        let bytes = encode_err_reply(errcode::BAD_QUERY, "term 99 out of dictionary").unwrap();
        let (kind, payload) = split_frame(&bytes).unwrap();
        assert_eq!(
            decode_reply_payload(kind, payload).unwrap(),
            Reply::Err {
                code: errcode::BAD_QUERY,
                message: "term 99 out of dictionary".into()
            }
        );
        // A pathological message cannot make the error reply unencodable.
        let long = "x".repeat(u16::MAX as usize + 500);
        let bytes = encode_err_reply(errcode::INTERNAL, &long).unwrap();
        let (kind, payload) = split_frame(&bytes).unwrap();
        match decode_reply_payload(kind, payload).unwrap() {
            Reply::Err { code, message } => {
                assert_eq!(code, errcode::INTERNAL);
                assert_eq!(message.len(), u16::MAX as usize);
            }
            other => panic!("{other:?}"),
        }
        // Truncation must land on a char boundary: a multi-byte char
        // straddling the 65535 limit may not yield a reply the peer's
        // UTF-8 validation rejects.
        let multibyte = "é".repeat(u16::MAX as usize); // 2 bytes each
        let bytes = encode_err_reply(errcode::INTERNAL, &multibyte).unwrap();
        let (kind, payload) = split_frame(&bytes).unwrap();
        match decode_reply_payload(kind, payload).unwrap() {
            Reply::Err { message, .. } => {
                assert_eq!(message.len(), u16::MAX as usize - 1);
                assert!(message.chars().all(|c| c == 'é'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_header_rejects_bad_magic_version_kind_and_length() {
        let good = encode_frame_header(kind::REQ_TEXT, 8).unwrap();
        let parse = |h: [u8; FRAME_HEADER_LEN]| decode_frame_header(&h);
        assert_eq!(parse(good).unwrap(), (kind::REQ_TEXT, 8));
        let mut bad_magic = good;
        bad_magic[0] ^= 0xff;
        assert!(parse(bad_magic).is_err());
        let mut bad_version = good;
        bad_version[4] = WIRE_VERSION + 1;
        let msg = parse(bad_version).unwrap_err().to_string();
        assert!(msg.contains("version"), "{msg}");
        let mut bad_kind = good;
        bad_kind[5] = 0x7f;
        assert!(parse(bad_kind).is_err());
        let mut bad_len = good;
        bad_len[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let msg = parse(bad_len).unwrap_err().to_string();
        assert!(msg.contains("cap"), "{msg}");
        // Oversized payloads are refused at encode time, too.
        assert!(matches!(
            encode_frame_header(kind::REPLY_OK, MAX_FRAME_PAYLOAD + 1),
            Err(WireError::TooLong { .. })
        ));
    }

    #[test]
    fn truncated_frames_and_payloads_rejected() {
        let response = sample_response(Mechanism::TraCmht);
        let terms: Vec<(TermId, u32)> = response.vo.terms.iter().map(|t| (t.term, 1)).collect();
        let bytes = encode_ok_reply(&terms, &response).unwrap();
        // Any truncation must error cleanly (header-level or payload-level).
        for cut in (0..bytes.len()).step_by(11) {
            let truncated = &bytes[..cut];
            let rejected = match split_frame(truncated) {
                Err(_) => true, // rejected at the frame layer
                Ok((kind, payload)) => decode_reply_payload(kind, payload).is_err(),
            };
            assert!(rejected, "cut={cut}");
        }
        // Trailing garbage in the payload is rejected as well.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(split_frame(&padded).is_err());
    }

    #[test]
    fn request_decode_rejects_non_utf8_and_trailing_bytes() {
        let good = Request::Text {
            text: "abc".into(),
            r: 3,
            want_digests: false,
        }
        .encode_frame()
        .unwrap();
        let (kind, payload) = split_frame(&good).unwrap();
        let mut bad = payload.to_vec();
        *bad.last_mut().unwrap() = 0xff; // invalid UTF-8 continuation
        assert!(Request::decode_payload(kind, &bad).is_err());
        let mut long = payload.to_vec();
        long.push(7);
        assert!(Request::decode_payload(kind, &long).is_err());
        // Reply kinds are not requests and vice versa.
        assert!(Request::decode_payload(kind::REPLY_OK, payload).is_err());
        assert!(decode_reply_payload(kind::REQ_TEXT, payload).is_err());
    }

    #[test]
    fn decoded_vo_still_verifies() {
        // Serialization must not lose anything the verifier needs.
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraCmht)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        let mut resp = publication.auth.query(&toy_query(), 2, &toy_contents());
        resp.vo = decode(&encode(&resp.vo).unwrap()).unwrap();
        crate::verify::verify(&publication.verifier_params, &toy_query(), 2, &resp).unwrap();
    }
}
