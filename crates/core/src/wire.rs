//! Wire serialization for verification objects.
//!
//! The VO travels from the search engine to the user; this module defines
//! its byte encoding (little-endian, length-prefixed) so transmission
//! sizes are concrete rather than estimated. The encoding is
//! deliberately plain — every field the size model of [`crate::vo`]
//! charges appears exactly once.

use crate::vo::{DictVo, DocVo, Mechanism, PrefixData, TermProof, TermVo, VerificationObject};
use authsearch_crypto::{ChainPrefixProof, Digest, MerkleProof, DIGEST_LEN};
use authsearch_index::ImpactEntry;

const MAGIC: &[u8; 4] = b"AVO1";

/// Deserialization error (a malformed transmission; the verifier treats
/// it like any other invalid VO).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed VO encoding: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(what: &str) -> WireError {
    WireError(what.into())
}

// ---- encoding -------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }
    fn bytes16(&mut self, b: &[u8]) {
        self.u16(b.len() as u16);
        self.buf.extend_from_slice(b);
    }
    fn digests16(&mut self, ds: &[Digest]) {
        self.u16(ds.len() as u16);
        for d in ds {
            self.digest(d);
        }
    }
}

/// Serialize a VO to bytes.
pub fn encode(vo: &VerificationObject) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(match vo.mechanism {
        Mechanism::TraMht => 0,
        Mechanism::TraCmht => 1,
        Mechanism::TnraMht => 2,
        Mechanism::TnraCmht => 3,
    });
    w.u16(vo.terms.len() as u16);
    for tv in &vo.terms {
        w.u32(tv.term);
        w.u32(tv.ft);
        match &tv.prefix {
            PrefixData::DocIds(ids) => {
                w.u8(0);
                w.u32(ids.len() as u32);
                for &d in ids {
                    w.u32(d);
                }
            }
            PrefixData::Entries(entries) => {
                w.u8(1);
                w.u32(entries.len() as u32);
                for e in entries {
                    w.buf.extend_from_slice(&e.encode());
                }
            }
        }
        match &tv.proof {
            TermProof::Mht(p) => {
                w.u8(0);
                w.digests16(&p.digests);
            }
            TermProof::Cmht(p) => {
                w.u8(1);
                w.digests16(&p.tail.digests);
            }
        }
        match &tv.signature {
            Some(sig) => {
                w.u8(1);
                w.bytes16(sig);
            }
            None => w.u8(0),
        }
    }
    w.u32(vo.docs.len() as u32);
    for dv in &vo.docs {
        w.u32(dv.doc);
        w.u32(dv.num_leaves);
        w.u32(dv.revealed.len() as u32);
        for &(pos, term, weight) in &dv.revealed {
            w.u32(pos);
            w.u32(term);
            w.u32(weight.to_bits());
        }
        w.digests16(&dv.proof.digests);
        match &dv.content_digest {
            Some(d) => {
                w.u8(1);
                w.digest(d);
            }
            None => w.u8(0),
        }
        w.bytes16(&dv.signature);
    }
    match &vo.dict {
        Some(dict) => {
            w.u8(1);
            w.u32(dict.num_terms);
            w.digests16(&dict.proof.digests);
            w.bytes16(&dict.signature);
        }
        None => w.u8(0),
    }
    w.buf
}

// ---- decoding -------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(err("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn digest(&mut self) -> Result<Digest, WireError> {
        let b = self.take(DIGEST_LEN)?;
        Digest::from_slice(b).ok_or_else(|| err("digest"))
    }
    fn bytes16(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn digests16(&mut self) -> Result<Vec<Digest>, WireError> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.digest()?);
        }
        Ok(out)
    }
}

/// Deserialize a VO from bytes.
pub fn decode(bytes: &[u8]) -> Result<VerificationObject, WireError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(err("bad magic"));
    }
    let mechanism = match r.u8()? {
        0 => Mechanism::TraMht,
        1 => Mechanism::TraCmht,
        2 => Mechanism::TnraMht,
        3 => Mechanism::TnraCmht,
        _ => return Err(err("unknown mechanism")),
    };
    let num_terms = r.u16()? as usize;
    let mut terms = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let term = r.u32()?;
        let ft = r.u32()?;
        let prefix = match r.u8()? {
            0 => {
                let n = r.u32()? as usize;
                if n > 1 << 26 {
                    return Err(err("prefix too long"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                PrefixData::DocIds(ids)
            }
            1 => {
                let n = r.u32()? as usize;
                if n > 1 << 26 {
                    return Err(err("prefix too long"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let raw = r.take(8)?;
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(raw);
                    entries.push(ImpactEntry::decode(&arr));
                }
                PrefixData::Entries(entries)
            }
            _ => return Err(err("unknown prefix kind")),
        };
        let proof = match r.u8()? {
            0 => TermProof::Mht(MerkleProof {
                digests: r.digests16()?,
            }),
            1 => TermProof::Cmht(ChainPrefixProof {
                tail: MerkleProof {
                    digests: r.digests16()?,
                },
            }),
            _ => return Err(err("unknown proof kind")),
        };
        let signature = match r.u8()? {
            0 => None,
            1 => Some(r.bytes16()?),
            _ => return Err(err("bad signature flag")),
        };
        terms.push(TermVo {
            term,
            ft,
            prefix,
            proof,
            signature,
        });
    }
    let num_docs = r.u32()? as usize;
    if num_docs > 1 << 26 {
        return Err(err("doc proof count implausible"));
    }
    let mut docs = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        let doc = r.u32()?;
        let num_leaves = r.u32()?;
        let n = r.u32()? as usize;
        if n > 1 << 26 {
            return Err(err("revealed count implausible"));
        }
        let mut revealed = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = r.u32()?;
            let term = r.u32()?;
            let weight = f32::from_bits(r.u32()?);
            revealed.push((pos, term, weight));
        }
        let proof = MerkleProof {
            digests: r.digests16()?,
        };
        let content_digest = match r.u8()? {
            0 => None,
            1 => Some(r.digest()?),
            _ => return Err(err("bad content flag")),
        };
        let signature = r.bytes16()?;
        docs.push(DocVo {
            doc,
            num_leaves,
            revealed,
            proof,
            content_digest,
            signature,
        });
    }
    let dict = match r.u8()? {
        0 => None,
        1 => Some(DictVo {
            num_terms: r.u32()?,
            proof: MerkleProof {
                digests: r.digests16()?,
            },
            signature: r.bytes16()?,
        }),
        _ => return Err(err("bad dict flag")),
    };
    if r.pos != bytes.len() {
        return Err(err("trailing bytes"));
    }
    Ok(VerificationObject {
        mechanism,
        terms,
        docs,
        dict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::owner::DataOwner;
    use crate::toy::{toy_contents, toy_index, toy_query};
    use authsearch_crypto::keys::TEST_KEY_BITS;

    fn sample_vo(mechanism: Mechanism, dict: bool) -> VerificationObject {
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            dict_mht: dict,
            ..AuthConfig::new(mechanism)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        publication.auth.query(&toy_query(), 2, &toy_contents()).vo
    }

    #[test]
    fn roundtrip_all_mechanisms() {
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let bytes = encode(&vo);
            let back = decode(&bytes).unwrap();
            assert_eq!(back, vo, "{}", mechanism.name());
        }
    }

    #[test]
    fn roundtrip_dict_mode() {
        let vo = sample_vo(Mechanism::TnraCmht, true);
        let back = decode(&encode(&vo)).unwrap();
        assert_eq!(back, vo);
    }

    #[test]
    fn wire_size_tracks_size_model() {
        // The wire encoding carries the modeled bytes plus only small
        // fixed framing overhead (< 10% for realistic VOs).
        for mechanism in Mechanism::ALL {
            let vo = sample_vo(mechanism, false);
            let modeled = vo.size().total();
            let wire = encode(&vo).len();
            assert!(
                wire >= modeled,
                "{}: wire {wire} < modeled {modeled}",
                mechanism.name()
            );
            assert!(
                wire <= modeled + 64 + 24 * (vo.terms.len() + vo.docs.len()),
                "{}: framing overhead too large ({wire} vs {modeled})",
                mechanism.name()
            );
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let vo = sample_vo(Mechanism::TraMht, false);
        let bytes = encode(&vo);
        // Cut at a sample of offsets; decoding must error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo);
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let vo = sample_vo(Mechanism::TnraMht, false);
        let mut bytes = encode(&vo);
        bytes[0] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decoded_vo_still_verifies() {
        // Serialization must not lose anything the verifier needs.
        let owner = DataOwner::with_cached_key(TEST_KEY_BITS);
        let config = AuthConfig {
            key_bits: TEST_KEY_BITS,
            ..AuthConfig::new(Mechanism::TraCmht)
        };
        let publication = owner.publish_index(toy_index(), config, &toy_contents());
        let mut resp = publication.auth.query(&toy_query(), 2, &toy_contents());
        resp.vo = decode(&encode(&resp.vo)).unwrap();
        crate::verify::verify(&publication.verifier_params, &toy_query(), 2, &resp).unwrap();
    }
}
