//! Document collections: the data owner's collection `D` of the paper's
//! system model, in term-frequency form.

use crate::tokenizer::tokenize;
use std::collections::HashMap;

/// Document identifier (4 bytes, as the paper assumes when sizing VOs).
pub type DocId = u32;

/// Term identifier (4 bytes, ditto).
pub type TermId = u32;

/// One document after tokenization: its term-frequency vector and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizedDoc {
    /// Identifier of this document within the collection.
    pub id: DocId,
    /// `(t, f_{d,t})` pairs, sorted by term id ascending. This ordering is
    /// load-bearing: document-MHT leaves are laid out in ascending term-id
    /// order so that term-absence proofs can use adjacent-leaf bounding
    /// (paper §3.3.1).
    pub counts: Vec<(TermId, u32)>,
    /// Document length `W_d` in tokens (after stopword removal), used by
    /// the Okapi normalization.
    pub token_len: u32,
}

impl TokenizedDoc {
    /// Frequency of `term` in this document (0 when absent).
    pub fn freq(&self, term: TermId) -> u32 {
        match self.counts.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.counts[i].1,
            Err(_) => 0,
        }
    }

    /// Number of distinct terms.
    pub fn num_distinct_terms(&self) -> usize {
        self.counts.len()
    }
}

/// A tokenized document collection plus its dictionary `T`.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Lexicographically sorted term strings; index = [`TermId`].
    dictionary: Vec<String>,
    docs: Vec<TokenizedDoc>,
    /// Raw document texts when built from real text (None for synthetic
    /// collections, whose canonical content is the term-frequency vector).
    texts: Option<Vec<String>>,
}

impl Corpus {
    /// Assemble a corpus from parts. `dictionary` must be sorted and each
    /// document's counts sorted by term id; checked in debug builds.
    pub fn from_parts(
        dictionary: Vec<String>,
        docs: Vec<TokenizedDoc>,
        texts: Option<Vec<String>>,
    ) -> Corpus {
        debug_assert!(dictionary.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(docs
            .iter()
            .all(|d| d.counts.windows(2).all(|w| w[0].0 < w[1].0)));
        if let Some(t) = &texts {
            assert_eq!(t.len(), docs.len());
        }
        Corpus {
            dictionary,
            docs,
            texts,
        }
    }

    /// Number of documents `n`.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of dictionary terms `m`.
    pub fn num_terms(&self) -> usize {
        self.dictionary.len()
    }

    /// All documents.
    pub fn docs(&self) -> &[TokenizedDoc] {
        &self.docs
    }

    /// One document by id.
    pub fn doc(&self, id: DocId) -> &TokenizedDoc {
        &self.docs[id as usize]
    }

    /// Term string for an id.
    pub fn term(&self, id: TermId) -> &str {
        &self.dictionary[id as usize]
    }

    /// Dictionary lookup; `None` when the term is outside the dictionary
    /// (such query terms are ignored, per the system model).
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dictionary
            .binary_search_by(|t| t.as_str().cmp(term))
            .ok()
            .map(|i| i as TermId)
    }

    /// The full dictionary.
    pub fn dictionary(&self) -> &[String] {
        &self.dictionary
    }

    /// Average document length `W_A` (Okapi).
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().map(|d| d.token_len as f64).sum::<f64>() / self.docs.len() as f64
    }

    /// Canonical content bytes of a document — what the owner hashes into
    /// `h(doc)` (paper Figure 8's `h(doc6)`). Raw text when available,
    /// otherwise a canonical little-endian encoding of the term-frequency
    /// vector.
    pub fn content_bytes(&self, id: DocId) -> Vec<u8> {
        if let Some(texts) = &self.texts {
            return texts[id as usize].clone().into_bytes();
        }
        let doc = self.doc(id);
        let mut out = Vec::with_capacity(8 + doc.counts.len() * 8);
        out.extend_from_slice(&doc.id.to_le_bytes());
        out.extend_from_slice(&doc.token_len.to_le_bytes());
        for &(t, c) in &doc.counts {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Raw text of a document (None for synthetic corpora).
    pub fn text(&self, id: DocId) -> Option<&str> {
        self.texts.as_ref().map(|t| t[id as usize].as_str())
    }
}

/// Builds a [`Corpus`] from raw document texts, applying the paper's
/// indexing pipeline: tokenize, lowercase, remove stopwords, and drop terms
/// that appear in fewer than `min_df` documents (the paper removes "words
/// that appear in only one document", i.e. `min_df = 2`).
pub struct CorpusBuilder {
    texts: Vec<String>,
    min_df: u32,
}

impl Default for CorpusBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CorpusBuilder {
    /// Fresh builder with the paper's `min_df = 2`.
    pub fn new() -> CorpusBuilder {
        CorpusBuilder {
            texts: Vec::new(),
            min_df: 2,
        }
    }

    /// Override the minimum document frequency a term needs to enter the
    /// dictionary. `min_df = 1` keeps every non-stopword (useful for toy
    /// examples where every term matters).
    pub fn min_df(mut self, min_df: u32) -> CorpusBuilder {
        self.min_df = min_df.max(1);
        self
    }

    /// Add one document's text.
    pub fn add_text(mut self, text: impl Into<String>) -> CorpusBuilder {
        self.texts.push(text.into());
        self
    }

    /// Add many documents.
    pub fn add_texts<I, S>(mut self, texts: I) -> CorpusBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.texts.extend(texts.into_iter().map(Into::into));
        self
    }

    /// Tokenize everything and produce the corpus.
    pub fn build(self) -> Corpus {
        // Pass 1: per-document term counts on strings, plus global df.
        let mut per_doc: Vec<HashMap<String, u32>> = Vec::with_capacity(self.texts.len());
        let mut token_lens: Vec<u32> = Vec::with_capacity(self.texts.len());
        let mut df: HashMap<String, u32> = HashMap::new();
        for text in &self.texts {
            let mut counts: HashMap<String, u32> = HashMap::new();
            let mut len = 0u32;
            for token in tokenize(text) {
                *counts.entry(token).or_insert(0) += 1;
                len += 1;
            }
            for term in counts.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
            per_doc.push(counts);
            token_lens.push(len);
        }

        // Dictionary: terms meeting the df floor, lexicographically sorted.
        let mut dictionary: Vec<String> = df
            .iter()
            .filter(|&(_, &d)| d >= self.min_df)
            .map(|(t, _)| t.clone())
            .collect();
        dictionary.sort_unstable();

        // Pass 2: remap documents onto term ids.
        let docs: Vec<TokenizedDoc> = per_doc
            .into_iter()
            .enumerate()
            .map(|(i, counts)| {
                let mut mapped: Vec<(TermId, u32)> = counts
                    .into_iter()
                    .filter_map(|(term, c)| {
                        dictionary
                            .binary_search(&term)
                            .ok()
                            .map(|id| (id as TermId, c))
                    })
                    .collect();
                mapped.sort_unstable_by_key(|&(t, _)| t);
                TokenizedDoc {
                    id: i as DocId,
                    counts: mapped,
                    token_len: token_lens[i],
                }
            })
            .collect();

        Corpus::from_parts(dictionary, docs, Some(self.texts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        CorpusBuilder::new()
            .min_df(1)
            .add_text("the keeper keeps the old house")
            .add_text("big house in a big gown")
            .add_text("the old house had big keep")
            .build()
    }

    #[test]
    fn dictionary_is_sorted_and_stopword_free() {
        let c = tiny();
        assert!(c.dictionary().windows(2).all(|w| w[0] < w[1]));
        assert!(c.term_id("the").is_none());
        assert!(c.term_id("a").is_none());
        assert!(c.term_id("house").is_some());
    }

    #[test]
    fn frequencies_counted() {
        let c = tiny();
        let big = c.term_id("big").unwrap();
        assert_eq!(c.doc(1).freq(big), 2);
        assert_eq!(c.doc(0).freq(big), 0);
    }

    #[test]
    fn token_len_includes_stopword_filtered_stream() {
        let c = tiny();
        // "the keeper keeps the old house" → keeper keeps old house = 4.
        assert_eq!(c.doc(0).token_len, 4);
    }

    #[test]
    fn min_df_prunes_rare_terms() {
        let c = CorpusBuilder::new()
            .min_df(2)
            .add_text("shared unique1")
            .add_text("shared unique2")
            .build();
        assert!(c.term_id("shared").is_some());
        assert!(c.term_id("unique1").is_none());
        assert_eq!(c.num_terms(), 1);
    }

    #[test]
    fn counts_sorted_by_term_id() {
        let c = tiny();
        for d in c.docs() {
            assert!(d.counts.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn content_bytes_uses_text_when_available() {
        let c = tiny();
        assert_eq!(
            c.content_bytes(0),
            b"the keeper keeps the old house".to_vec()
        );
    }

    #[test]
    fn content_bytes_canonical_for_synthetic() {
        let doc = TokenizedDoc {
            id: 3,
            counts: vec![(1, 2), (5, 1)],
            token_len: 3,
        };
        let c = Corpus::from_parts(
            vec![
                "a1".into(),
                "b2".into(),
                "c3".into(),
                "d4".into(),
                "e5".into(),
                "f6".into(),
            ],
            vec![
                TokenizedDoc {
                    id: 0,
                    counts: vec![],
                    token_len: 0,
                },
                TokenizedDoc {
                    id: 1,
                    counts: vec![],
                    token_len: 0,
                },
                TokenizedDoc {
                    id: 2,
                    counts: vec![],
                    token_len: 0,
                },
                doc,
            ],
            None,
        );
        let bytes = c.content_bytes(3);
        assert_eq!(bytes.len(), 8 + 2 * 8);
        assert_eq!(&bytes[0..4], &3u32.to_le_bytes());
    }

    #[test]
    fn avg_doc_len() {
        let c = tiny();
        // All three docs tokenize to 4 content words ('had' is a stopword).
        let expect = (4.0 + 4.0 + 4.0) / 3.0;
        assert!((c.avg_doc_len() - expect).abs() < 1e-9);
    }

    #[test]
    fn term_id_roundtrip() {
        let c = tiny();
        for (i, t) in c.dictionary().iter().enumerate() {
            assert_eq!(c.term_id(t), Some(i as TermId));
            assert_eq!(c.term(i as TermId), t);
        }
        assert_eq!(c.term_id("notaword"), None);
    }
}
