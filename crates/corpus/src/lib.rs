//! # authsearch-corpus
//!
//! Text substrate for the authenticated search framework: everything the
//! paper obtained from Lucene and the (licensed) TREC data, built from
//! scratch:
//!
//! * [`tokenizer`] — lowercase alphanumeric tokenization, no stemming;
//! * [`stopwords`] — the standard stopword screen of §4.1;
//! * [`document`] — tokenized documents, dictionaries, and a
//!   [`document::CorpusBuilder`] for raw text;
//! * [`synthetic`] — the WSJ-calibrated synthetic corpus generator
//!   (substitute for the licensed TREC WSJ collection; see DESIGN.md);
//! * [`workload`] — synthetic and TREC-like query workload generators;
//! * [`stats`] — the inverted-list length distribution of Figure 4;
//! * [`loader`] — filesystem ingestion for users holding real
//!   collections (e.g. the licensed TREC WSJ data).

#![warn(missing_docs)]

pub mod document;
pub mod loader;
pub mod stats;
pub mod stopwords;
pub mod synthetic;
pub mod tokenizer;
pub mod workload;
pub mod zipf;

pub use document::{Corpus, CorpusBuilder, DocId, TermId, TokenizedDoc};
pub use stats::{list_length_stats, ListLengthStats};
pub use synthetic::SyntheticConfig;
