//! Loading document collections from the filesystem.
//!
//! For users who hold the real TREC WSJ data (or any other collection),
//! this module ingests a directory of plain-text files — one document per
//! file — through the same tokenization pipeline as the synthetic
//! generator, producing a [`Corpus`] the rest of the stack consumes
//! unchanged.

use crate::document::{Corpus, CorpusBuilder};
use std::fs;
use std::io;
use std::path::Path;

/// Load every `*.txt` file under `dir` (non-recursive) as one document,
/// in lexicographic filename order (so document ids are stable across
/// runs). `min_df` follows the paper's indexing pipeline (2 drops terms
/// appearing in a single document).
pub fn load_text_dir(dir: &Path, min_df: u32) -> io::Result<Corpus> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().and_then(|e| e.to_str()) == Some("txt")).then_some(path)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .txt files under {}", dir.display()),
        ));
    }
    let mut builder = CorpusBuilder::new().min_df(min_df);
    for path in paths {
        builder = builder.add_text(fs::read_to_string(&path)?);
    }
    Ok(builder.build())
}

/// Load one file with multiple documents separated by blank lines
/// (a common interchange format for small corpora).
pub fn load_blank_separated(path: &Path, min_df: u32) -> io::Result<Corpus> {
    let content = fs::read_to_string(path)?;
    let docs: Vec<&str> = content
        .split("\n\n")
        .map(str::trim)
        .filter(|d| !d.is_empty())
        .collect();
    if docs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no documents in {}", path.display()),
        ));
    }
    Ok(CorpusBuilder::new().min_df(min_df).add_texts(docs).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("authsearch-loader-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_directory_in_name_order() {
        let dir = tempdir("dir");
        fs::write(dir.join("b.txt"), "banana orange").unwrap();
        fs::write(dir.join("a.txt"), "apple orange").unwrap();
        fs::write(dir.join("ignore.md"), "not loaded").unwrap();
        let corpus = load_text_dir(&dir, 1).unwrap();
        assert_eq!(corpus.num_docs(), 2);
        // a.txt sorts first → doc 0.
        assert_eq!(corpus.text(0), Some("apple orange"));
        assert!(corpus.term_id("orange").is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_errors() {
        let dir = tempdir("empty");
        assert!(load_text_dir(&dir, 1).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blank_separated_documents() {
        let dir = tempdir("blank");
        let path = dir.join("docs.txt");
        fs::write(&path, "first document here\n\nsecond document here\n\n\n").unwrap();
        let corpus = load_blank_separated(&path, 1).unwrap();
        assert_eq!(corpus.num_docs(), 2);
        assert_eq!(corpus.text(1), Some("second document here"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn min_df_applies() {
        let dir = tempdir("mindf");
        fs::write(dir.join("a.txt"), "shared unique1").unwrap();
        fs::write(dir.join("b.txt"), "shared unique2").unwrap();
        let corpus = load_text_dir(&dir, 2).unwrap();
        assert!(corpus.term_id("shared").is_some());
        assert!(corpus.term_id("unique1").is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
