//! Corpus statistics: the inverted-list length distribution of Figure 4.

use crate::document::Corpus;

/// Summary of the inverted-list (document-frequency) length distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ListLengthStats {
    /// Document frequency of every dictionary term, ascending.
    pub sorted_lengths: Vec<u32>,
    /// Longest inverted list (paper: 127,848 for WSJ).
    pub max_len: u32,
    /// Fraction of terms whose list holds 2–5 entries (paper: > 50 %).
    pub frac_in_2_to_5: f64,
    /// Mean list length.
    pub mean_len: f64,
}

/// Compute document frequencies and the Figure 4 summary for a corpus.
pub fn list_length_stats(corpus: &Corpus) -> ListLengthStats {
    let mut df = vec![0u32; corpus.num_terms()];
    for doc in corpus.docs() {
        for &(t, _) in &doc.counts {
            df[t as usize] += 1;
        }
    }
    df.sort_unstable();
    let max_len = df.last().copied().unwrap_or(0);
    let in_2_to_5 = df.iter().filter(|&&d| (2..=5).contains(&d)).count();
    let frac = if df.is_empty() {
        0.0
    } else {
        in_2_to_5 as f64 / df.len() as f64
    };
    let mean = if df.is_empty() {
        0.0
    } else {
        df.iter().map(|&d| d as f64).sum::<f64>() / df.len() as f64
    };
    ListLengthStats {
        sorted_lengths: df,
        max_len,
        frac_in_2_to_5: frac,
        mean_len: mean,
    }
}

impl ListLengthStats {
    /// Cumulative frequency (%) of terms with list length ≤ `len` —
    /// one point of Figure 4's CDF.
    pub fn cumulative_pct(&self, len: u32) -> f64 {
        if self.sorted_lengths.is_empty() {
            return 0.0;
        }
        let below = self.sorted_lengths.partition_point(|&d| d <= len);
        100.0 * below as f64 / self.sorted_lengths.len() as f64
    }

    /// CDF sampled at logarithmically spaced lengths (Figure 4's x-axis
    /// spans 10^1..10^5).
    pub fn log_cdf(&self, points_per_decade: usize) -> Vec<(u32, f64)> {
        let max = self.max_len.max(1);
        let decades = (max as f64).log10().ceil() as usize + 1;
        let mut out = Vec::new();
        let mut last_len = 0u32;
        for i in 0..=decades * points_per_decade {
            let len = 10f64.powf(i as f64 / points_per_decade as f64).round() as u32;
            if len == last_len || len > max {
                continue;
            }
            last_len = len;
            out.push((len, self.cumulative_pct(len)));
        }
        if last_len != max {
            out.push((max, 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::CorpusBuilder;

    fn corpus() -> Corpus {
        // df: shared=3, pair=2, x/y appear once (pruned by min_df=2).
        CorpusBuilder::new()
            .min_df(2)
            .add_text("shared pair x")
            .add_text("shared pair y")
            .add_text("shared solo1 solo2")
            .build()
    }

    #[test]
    fn df_computed() {
        let c = corpus();
        let s = list_length_stats(&c);
        assert_eq!(s.sorted_lengths, vec![2, 3]);
        assert_eq!(s.max_len, 3);
    }

    #[test]
    fn frac_counts_short_lists() {
        let s = list_length_stats(&corpus());
        assert!((s.frac_in_2_to_5 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_pct_monotone() {
        let s = list_length_stats(&corpus());
        assert_eq!(s.cumulative_pct(0), 0.0);
        assert_eq!(s.cumulative_pct(1), 0.0);
        assert_eq!(s.cumulative_pct(2), 50.0);
        assert_eq!(s.cumulative_pct(3), 100.0);
        assert_eq!(s.cumulative_pct(100), 100.0);
    }

    #[test]
    fn log_cdf_ends_at_max() {
        let s = list_length_stats(&corpus());
        let cdf = s.log_cdf(4);
        assert_eq!(cdf.last(), Some(&(3, 100.0)));
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().build();
        let s = list_length_stats(&c);
        assert_eq!(s.max_len, 0);
        assert_eq!(s.mean_len, 0.0);
    }
}
