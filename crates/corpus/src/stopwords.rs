//! English stopword list.
//!
//! The paper removes "common words like 'the' and 'a' that are not useful
//! for differentiating between documents" (§4.1, citing \[1\]). This list is
//! the classic Fox/SMART-style core — function words, auxiliaries,
//! pronouns — comparable in coverage to what Lucene's StandardAnalyzer plus
//! a conventional extended list would drop.

/// Sorted list of stopwords (binary-searchable).
pub static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// True when `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn classic_stopwords_detected() {
        for w in ["the", "a", "of", "and", "to", "in"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_kept() {
        for w in ["patent", "elderly", "abuse", "mistreatment", "keeper"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn case_sensitive_as_documented() {
        // Callers must lowercase first; "The" is not matched.
        assert!(!is_stopword("The"));
    }
}
